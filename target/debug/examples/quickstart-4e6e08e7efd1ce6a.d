/root/repo/target/debug/examples/quickstart-4e6e08e7efd1ce6a.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4e6e08e7efd1ce6a: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
