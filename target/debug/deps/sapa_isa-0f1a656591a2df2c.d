/root/repo/target/debug/deps/sapa_isa-0f1a656591a2df2c.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/libsapa_isa-0f1a656591a2df2c.rlib: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/libsapa_isa-0f1a656591a2df2c.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/stats.rs:
crates/isa/src/trace.rs:
crates/isa/src/validate.rs:
