/root/repo/target/release/deps/sapa_repro-882fdb96b126b2d4.d: crates/repro/src/main.rs

/root/repo/target/release/deps/sapa_repro-882fdb96b126b2d4: crates/repro/src/main.rs

crates/repro/src/main.rs:
