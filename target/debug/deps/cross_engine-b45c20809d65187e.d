/root/repo/target/debug/deps/cross_engine-b45c20809d65187e.d: crates/core/../../tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-b45c20809d65187e: crates/core/../../tests/cross_engine.rs

crates/core/../../tests/cross_engine.rs:
