//! Every workload's trace must satisfy the structural invariants of
//! the virtual ISA (PCs in code, addresses in data, loads with
//! destinations, …) — regression protection against emission bugs
//! that would silently skew the microarchitecture studies.

use sapa_isa::validate::validate;
use sapa_workloads::{StandardInputs, Workload};

#[test]
fn all_workload_traces_are_well_formed() {
    let inputs = StandardInputs::small();
    for w in Workload::ALL {
        let bundle = w.trace(&inputs);
        let violations = validate(&bundle.trace, 5);
        assert!(
            violations.is_empty(),
            "{w}: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn branch_fraction_sane_for_all_workloads() {
    // Defense against emission drift: branch fraction must stay in the
    // band each workload's characterization depends on.
    use sapa_isa::OpClass;
    let inputs = StandardInputs::small();
    for w in Workload::ALL {
        let stats = w.trace(&inputs).trace.stats();
        let ctrl = stats.fraction(OpClass::Branch);
        if w.is_simd() {
            assert!(ctrl < 0.06, "{w} ctrl {ctrl}");
        } else {
            assert!((0.10..0.40).contains(&ctrl), "{w} ctrl {ctrl}");
        }
    }
}

#[test]
fn loads_dominate_stores_everywhere() {
    use sapa_isa::OpClass;
    let inputs = StandardInputs::small();
    for w in Workload::ALL {
        let s = w.trace(&inputs).trace.stats();
        let loads = s.count(OpClass::ILoad) + s.count(OpClass::VLoad);
        let stores = s.count(OpClass::IStore) + s.count(OpClass::VStore);
        assert!(loads > stores, "{w}: loads {loads} !> stores {stores}");
    }
}
