/root/repo/target/debug/deps/sensitivity-cb95955fd1e8fc8b.d: crates/core/../../tests/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-cb95955fd1e8fc8b.rmeta: crates/core/../../tests/sensitivity.rs Cargo.toml

crates/core/../../tests/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
