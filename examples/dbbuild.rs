//! Database preprocessing CLI: build a searchable on-disk index
//! (packed residues, length-sorted shards, k-mer seed index) from a
//! FASTA file or from the suite's synthetic SwissProt-like generator,
//! or inspect an existing index.
//!
//! ```text
//! # Build from a FASTA file:
//! cargo run --release --example dbbuild -- --fasta proteins.fa --out proteins.sapadb
//!
//! # Build a synthetic corpus (deterministic in --seed):
//! cargo run --release --example dbbuild -- --seqs 4000 --seed 7 --out big.sapadb
//!
//! # Inspect an index:
//! cargo run --release --example dbbuild -- --info big.sapadb
//! ```
//!
//! The produced file is what `protein_search --db <path>` and
//! `Engine::search_indexed` consume.

use std::time::Instant;

use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::fasta::read_fasta;
use sapa_core::bioseq::index::{IndexBuilder, IndexReader, DEFAULT_WORD_LEN};
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::Sequence;

struct Args {
    out: Option<String>,
    info: Option<String>,
    fasta: Option<String>,
    seqs: usize,
    seed: u64,
    homolog_fraction: f64,
    word_len: usize,
    shard_residues: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: None,
        info: None,
        fasta: None,
        seqs: 4000,
        seed: 7,
        homolog_fraction: 0.02,
        word_len: DEFAULT_WORD_LEN,
        shard_residues: 64 * 1024,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--out" => args.out = Some(value("--out")),
            "--info" => args.info = Some(value("--info")),
            "--fasta" => args.fasta = Some(value("--fasta")),
            "--seqs" => {
                args.seqs = value("--seqs")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage("bad --seqs"))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--homolog-fraction" => {
                args.homolog_fraction = value("--homolog-fraction")
                    .parse()
                    .ok()
                    .filter(|f: &f64| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| usage("bad --homolog-fraction"))
            }
            "--word-len" => {
                args.word_len = value("--word-len")
                    .parse()
                    .ok()
                    .filter(|k: &usize| (1..=7).contains(k))
                    .unwrap_or_else(|| usage("bad --word-len (must be 1..=7)"))
            }
            "--shard-residues" => {
                args.shard_residues = value("--shard-residues")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage("bad --shard-residues"))
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if args.info.is_none() && args.out.is_none() {
        usage("need --out <path> (build) or --info <path> (inspect)");
    }
    args
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}\n");
    eprintln!(
        "usage: dbbuild --out <path> [--fasta <path> | --seqs N --seed S --homolog-fraction F]"
    );
    eprintln!("               [--word-len K] [--shard-residues N]");
    eprintln!("       dbbuild --info <path>");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.info {
        info(path);
        return;
    }

    let out = args.out.as_deref().expect("checked in parse_args");
    let (sequences, source): (Vec<Sequence>, String) = match &args.fasta {
        Some(path) => {
            let seqs = std::fs::File::open(path)
                .map_err(sapa_core::bioseq::Error::from)
                .and_then(|f| read_fasta(std::io::BufReader::new(f)))
                .unwrap_or_else(|e| {
                    eprintln!("error: reading {path}: {e}");
                    std::process::exit(1);
                });
            (seqs, format!("FASTA {path}"))
        }
        None => {
            let query = QuerySet::paper().default_query().clone();
            let db = DatabaseBuilder::new()
                .seed(args.seed)
                .sequences(args.seqs)
                .homolog_template(query)
                .homolog_fraction(args.homolog_fraction)
                .build();
            (
                db.sequences().to_vec(),
                format!("synthetic (seed {}, {} seqs)", args.seed, args.seqs),
            )
        }
    };

    let t0 = Instant::now();
    let report = IndexBuilder::new()
        .word_len(args.word_len)
        .shard_residues(args.shard_residues)
        .write_file(&sequences, out)
        .unwrap_or_else(|e| {
            eprintln!("error: writing {out}: {e}");
            std::process::exit(1);
        });
    let built = t0.elapsed();

    println!("built {out} from {source} in {built:.1?}");
    println!(
        "  {} sequences, {} residues, {} shards",
        report.seq_count, report.total_residues, report.shard_count
    );
    println!(
        "  seed index: word length {}, {} distinct words, {} postings",
        args.word_len, report.unique_words, report.postings
    );
    println!(
        "  {} bytes on disk ({:.2} bytes/residue incl. index)",
        report.bytes_written,
        report.bytes_written as f64 / report.total_residues.max(1) as f64
    );
}

fn info(path: &str) {
    let t0 = Instant::now();
    let reader = IndexReader::open(path).unwrap_or_else(|e| {
        eprintln!("error: opening {path}: {e}");
        std::process::exit(1);
    });
    let opened = t0.elapsed();

    println!("{path}: SAPA database, opened in {opened:.1?} (metadata only)");
    println!(
        "  {} sequences, {} residues, word length {}",
        reader.seq_count(),
        reader.total_residues(),
        reader.word_len()
    );
    println!(
        "  seed index: {} distinct words, {} postings",
        reader.seed_index().unique_words(),
        reader.seed_index().posting_count()
    );
    println!("  shards ({}):", reader.shards().len());
    for (i, s) in reader.shards().iter().enumerate() {
        println!(
            "    [{i:>3}] seqs {:>6}..{:<6} len {:>5}..{:<5} {:>9} residues {:>9} packed bytes",
            s.seq_start,
            s.seq_start + s.seq_count,
            s.min_len,
            s.max_len,
            s.residues,
            s.data_len
        );
    }
    let freqs = reader.background_frequencies();
    let mut top: Vec<(usize, f64)> = freqs.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    let line: Vec<String> = top
        .iter()
        .take(5)
        .map(|&(i, f)| {
            format!(
                "{}={:.1}%",
                sapa_core::bioseq::AminoAcid::from_index(i)
                    .unwrap()
                    .to_char(),
                100.0 * f
            )
        })
        .collect();
    println!("  background composition (top 5): {}", line.join(" "));
}
