/root/repo/target/debug/deps/sapa_cpu-8178e35b3f2f49ea.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_cpu-8178e35b3f2f49ea.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/cache.rs:
crates/cpu/src/config.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/stats.rs:
crates/cpu/src/trauma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
