//! Streaming FASTA reading and writing.
//!
//! ```
//! use sapa_bioseq::fasta::{read_fasta, write_fasta};
//! use sapa_bioseq::Sequence;
//!
//! # fn main() -> sapa_bioseq::Result<()> {
//! let input = ">sp|P1|TEST first test protein\nMKVL\nAAGG\n>sp|P2|OTHER\nWYV\n";
//! let seqs = read_fasta(input.as_bytes())?;
//! assert_eq!(seqs.len(), 2);
//! assert_eq!(seqs[0].id(), "sp|P1|TEST");
//! assert_eq!(seqs[0].to_string(), "MKVLAAGG");
//!
//! let mut out = Vec::new();
//! write_fasta(&mut out, &seqs)?;
//! let again = read_fasta(&out[..])?;
//! assert_eq!(again, seqs);
//! # Ok(())
//! # }
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use crate::alphabet::AminoAcid;
use crate::seq::Sequence;
use crate::{Error, Result};

/// Reads all records from a FASTA stream.
///
/// Accepts `\n` and `\r\n` line endings; blank lines are ignored; the
/// header is split at the first whitespace into id and description.
///
/// A `&mut R` can be passed for readers you want to keep using afterwards.
///
/// # Errors
///
/// [`Error::MalformedFasta`] if the stream does not begin with a `>`
/// header or a record has an empty id; [`Error::InvalidResidue`] for
/// non-amino-acid sequence bytes; [`Error::Io`] for underlying I/O
/// failures.
pub fn read_fasta<R: Read>(reader: R) -> Result<Vec<Sequence>> {
    let mut out = Vec::new();
    let mut current: Option<(String, String, Vec<AminoAcid>)> = None;

    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some((id, desc, residues)) = current.take() {
                out.push(Sequence::new(id, desc, residues));
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(Error::MalformedFasta {
                    reason: "record header has an empty id".into(),
                    line: Some(line_no + 1),
                });
            }
            let desc = parts.next().unwrap_or("").trim().to_string();
            current = Some((id, desc, Vec::new()));
        } else {
            let Some((_, _, residues)) = current.as_mut() else {
                return Err(Error::MalformedFasta {
                    reason: "sequence data before any '>' header".into(),
                    line: Some(line_no + 1),
                });
            };
            for (col, b) in line.bytes().enumerate() {
                if b.is_ascii_whitespace() {
                    continue;
                }
                match AminoAcid::from_byte(b) {
                    Some(aa) => residues.push(aa),
                    None => {
                        return Err(Error::InvalidResidue {
                            byte: b,
                            position: col,
                        })
                    }
                }
            }
        }
    }
    if let Some((id, desc, residues)) = current.take() {
        out.push(Sequence::new(id, desc, residues));
    }
    Ok(out)
}

/// Line width used by [`write_fasta`].
pub const FASTA_LINE_WIDTH: usize = 60;

/// Writes records in FASTA format, wrapping sequence lines at
/// [`FASTA_LINE_WIDTH`] columns.
///
/// A `&mut W` can be passed for writers you want to keep using
/// afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fasta<'a, W, I>(mut writer: W, sequences: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a Sequence>,
{
    for seq in sequences {
        if seq.description().is_empty() {
            writeln!(writer, ">{}", seq.id())?;
        } else {
            writeln!(writer, ">{} {}", seq.id(), seq.description())?;
        }
        let text = seq.to_string();
        let bytes = text.as_bytes();
        for chunk in bytes.chunks(FASTA_LINE_WIDTH) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_records() {
        assert_eq!(read_fasta("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn crlf_and_blank_lines() {
        let input = ">a one\r\nMK\r\n\r\nVL\r\n";
        let seqs = read_fasta(input.as_bytes()).unwrap();
        assert_eq!(seqs[0].to_string(), "MKVL");
        assert_eq!(seqs[0].description(), "one");
    }

    #[test]
    fn lowercase_residues_normalize_to_uppercase() {
        // Tools like segmasker emit soft-masked (lowercase) regions;
        // the reader folds them back into the 24-letter alphabet.
        let seqs = read_fasta(">a\nmkvl\n".as_bytes()).unwrap();
        assert_eq!(seqs[0].to_string(), "MKVL");
        assert_eq!(
            read_fasta(">a\nMkVl\n".as_bytes()).unwrap()[0],
            seqs[0],
            "mixed case must parse identically"
        );
    }

    #[test]
    fn crlf_with_lowercase_and_trailing_spaces() {
        let input = ">a desc here\r\nmk vl\r\nwy \r\n";
        let seqs = read_fasta(input.as_bytes()).unwrap();
        assert_eq!(seqs[0].to_string(), "MKVLWY");
        assert_eq!(seqs[0].description(), "desc here");
    }

    #[test]
    fn record_with_no_residues_is_kept() {
        let seqs = read_fasta(">a\n>b\nMK\n".as_bytes()).unwrap();
        assert_eq!(seqs.len(), 2);
        assert!(seqs[0].is_empty());
        assert_eq!(seqs[1].to_string(), "MK");
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = read_fasta("MKVL\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::MalformedFasta { .. }));
    }

    #[test]
    fn empty_id_is_an_error() {
        let err = read_fasta("> description only\nMK\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::MalformedFasta { .. }));
    }

    #[test]
    fn invalid_residue_is_reported() {
        let err = read_fasta(">a\nMK9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::InvalidResidue { byte: b'9', .. }));
    }

    #[test]
    fn long_sequences_wrap_on_write() {
        let long = "A".repeat(150);
        let seq = Sequence::from_str("long", &long).unwrap();
        let mut out = Vec::new();
        write_fasta(&mut out, [&seq]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3); // header + ceil(150/60)
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[3].len(), 30);
    }

    #[test]
    fn round_trip_preserves_everything() {
        let seqs = vec![
            Sequence::new(
                "sp|Q1",
                "alpha beta",
                "MKWYV*XBZ"
                    .bytes()
                    .map(|b| AminoAcid::from_byte(b).unwrap())
                    .collect(),
            ),
            Sequence::from_str("plain", "ACDEFG").unwrap(),
        ];
        let mut out = Vec::new();
        write_fasta(&mut out, &seqs).unwrap();
        assert_eq!(read_fasta(&out[..]).unwrap(), seqs);
    }
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::db::DatabaseBuilder;

    #[test]
    fn database_round_trips_through_a_real_file() {
        let db = DatabaseBuilder::new().seed(77).sequences(25).build();
        let dir = std::env::temp_dir().join("sapa_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.fasta");

        let f = std::fs::File::create(&path).unwrap();
        write_fasta(std::io::BufWriter::new(f), db.sequences()).unwrap();

        let f = std::fs::File::open(&path).unwrap();
        let back = read_fasta(std::io::BufReader::new(f)).unwrap();
        assert_eq!(back, db.sequences());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_record_survives_wrapping() {
        let long = Sequence::new(
            "big",
            "one very long protein",
            std::iter::repeat_n(crate::AminoAcid::Leu, 10_000).collect(),
        );
        let mut buf = Vec::new();
        write_fasta(&mut buf, [&long]).unwrap();
        // Every sequence line must respect the wrap width.
        let text = String::from_utf8(buf.clone()).unwrap();
        for line in text.lines().skip(1) {
            assert!(line.len() <= FASTA_LINE_WIDTH);
        }
        assert_eq!(read_fasta(&buf[..]).unwrap()[0], long);
    }
}
