/root/repo/target/release/libsapa_vsimd.rlib: /root/repo/crates/vsimd/src/lib.rs
