//! Tables IV, V and VI: the evaluated processor, memory and branch
//! predictor configurations, pretty-printed from the live presets (so
//! the documentation can never drift from the code).

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_cpu::config::{BranchConfig, CpuConfig, MemConfig, UnitClass};

fn size_label(s: Option<u64>) -> String {
    match s {
        None => "Inf".into(),
        Some(b) if b >= 1 << 20 => format!("{}M", b >> 20),
        Some(b) => format!("{}K", b >> 10),
    }
}

/// Renders Tables IV–VI.
pub fn run(_ctx: &mut Context) -> String {
    let mut out = heading("Table IV — evaluated processor configurations");
    let cfgs = [
        CpuConfig::four_way(),
        CpuConfig::eight_way(),
        CpuConfig::sixteen_way(),
    ];
    let mut t = Table::new(&["Parameter", "4-way", "8-way", "16-way"]);
    let row = |t: &mut Table, name: &str, f: &dyn Fn(&CpuConfig) -> String| {
        t.row_owned(vec![
            name.to_string(),
            f(&cfgs[0]),
            f(&cfgs[1]),
            f(&cfgs[2]),
        ]);
    };
    row(&mut t, "Fetch", &|c| c.fetch_width.to_string());
    row(&mut t, "Rename", &|c| c.rename_width.to_string());
    row(&mut t, "Dispatch", &|c| c.dispatch_width.to_string());
    row(&mut t, "Retire", &|c| c.retire_width.to_string());
    row(&mut t, "Inflight instrs", &|c| c.inflight.to_string());
    row(&mut t, "GPR", &|c| c.gpr.to_string());
    row(&mut t, "VPR", &|c| c.vpr.to_string());
    row(&mut t, "FPR", &|c| c.fpr.to_string());
    for u in UnitClass::ALL {
        let label = format!("{} units", u.label());
        t.row_owned(vec![
            label,
            cfgs[0].units[u.index()].to_string(),
            cfgs[1].units[u.index()].to_string(),
            cfgs[2].units[u.index()].to_string(),
        ]);
    }
    row(&mut t, "Issue queue (each)", &|c| {
        c.issue_queue[0].to_string()
    });
    row(&mut t, "Ibuffer", &|c| c.ibuffer.to_string());
    row(&mut t, "Retire queue", &|c| c.retire_queue.to_string());
    row(&mut t, "Max outstanding misses", &|c| {
        c.max_outstanding_misses.to_string()
    });
    out.push_str(&t.render());

    out.push_str(&heading("Table V — evaluated memory configurations"));
    let mut t = Table::new(&["Parameter", "me1", "me2", "me3", "me4", "meinf"]);
    let mems = MemConfig::table_v();
    let mrow = |t: &mut Table, name: &str, f: &dyn Fn(&MemConfig) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(mems.iter().map(f));
        t.row_owned(cells);
    };
    mrow(&mut t, "I-L1 size", &|m| size_label(m.il1.size));
    mrow(&mut t, "I-L1 assoc", &|m| m.il1.assoc.to_string());
    mrow(&mut t, "D-L1 size", &|m| size_label(m.dl1.size));
    mrow(&mut t, "D-L1 assoc", &|m| m.dl1.assoc.to_string());
    mrow(&mut t, "Line [B]", &|m| m.dl1.line.to_string());
    mrow(&mut t, "L1 latency", &|m| m.dl1.latency.to_string());
    mrow(&mut t, "L2 size", &|m| size_label(m.l2.size));
    mrow(&mut t, "L2 assoc", &|m| m.l2.assoc.to_string());
    mrow(&mut t, "L2 latency", &|m| m.l2.latency.to_string());
    mrow(&mut t, "Memory latency", &|m| m.mem_latency.to_string());
    out.push_str(&t.render());

    out.push_str(&heading("Table VI — branch predictor configuration"));
    let b = BranchConfig::table_vi();
    let mut t = Table::new(&["Parameter", "Value"]);
    t.row_owned(vec![
        "Strategy".into(),
        format!("{:?} (combined gshare + bimodal)", b.kind),
    ]);
    t.row_owned(vec![
        "Predictor table size".into(),
        b.table_size.to_string(),
    ]);
    t.row_owned(vec!["NFA table size".into(), b.nfa_size.to_string()]);
    t.row_owned(vec!["NFA associativity".into(), b.nfa_assoc.to_string()]);
    t.row_owned(vec![
        "NFA miss penalty".into(),
        format!("{} cycles", b.nfa_miss_penalty),
    ]);
    t.row_owned(vec![
        "Max predicted conditional branches".into(),
        b.max_pred_branches.to_string(),
    ]);
    t.row_owned(vec![
        "Mispredict recovery".into(),
        format!("{} cycles", b.mispredict_recovery),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, Scale};

    #[test]
    fn tables_render_paper_values() {
        let out = run(&mut Context::new(Scale::Tiny));
        assert!(out.contains("16K") || out.contains("16384"));
        assert!(out.contains("meinf"));
        assert!(out.contains("300"));
        assert!(out.contains("VPER"));
    }
}
