//! Small deterministic PRNGs used by the synthetic data generators.
//!
//! We keep generation independent of the `rand` crate's algorithm choices
//! so that a given seed produces the *same* database and queries forever;
//! the experiment tables in `EXPERIMENTS.md` depend on that stability.

/// SplitMix64 — used for seeding and for cheap one-shot streams.
///
/// ```
/// use sapa_bioseq::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for database synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding `seed` through SplitMix64 as the
    /// xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening-multiply method; bias negligible for our bounds but we
        // reject to stay exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal variate (Box–Muller, one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                let v = self.next_f64();
                return (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
            }
        }
    }
}

/// Samples an index from a cumulative distribution table.
///
/// `cdf` must be non-decreasing with `cdf.last() ≈ 1.0`. Returns the
/// smallest `i` with `u < cdf[i]`, clamped to the final index.
pub fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    // total_cmp gives NaN a defined order instead of panicking, so a
    // degenerate table yields a (deterministic) biased sample rather
    // than taking down a worker mid-scan.
    match cdf.binary_search_by(|p| p.total_cmp(&u)) {
        Ok(i) => (i + 1).min(cdf.len().saturating_sub(1)),
        Err(i) => i.min(cdf.len().saturating_sub(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut r = Xoshiro256::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = r.next_gaussian();
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_cdf_boundaries() {
        let cdf = [0.25, 0.5, 0.75, 1.0];
        assert_eq!(sample_cdf(&cdf, 0.0), 0);
        assert_eq!(sample_cdf(&cdf, 0.3), 1);
        assert_eq!(sample_cdf(&cdf, 0.74), 2);
        assert_eq!(sample_cdf(&cdf, 0.99), 3);
        // u exactly on a boundary steps to the next bucket
        assert_eq!(sample_cdf(&cdf, 0.25), 1);
        // pathological u ≥ 1 clamps to the last index
        assert_eq!(sample_cdf(&cdf, 1.5), 3);
    }
}
