/root/repo/target/release/examples/protein_search-1d6b1153254ca880.d: crates/core/../../examples/protein_search.rs

/root/repo/target/release/examples/protein_search-1d6b1153254ca880: crates/core/../../examples/protein_search.rs

crates/core/../../examples/protein_search.rs:
