/root/repo/target/release/deps/sapa_cpu-190ee664cf9f12df.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/release/deps/sapa_cpu-190ee664cf9f12df: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/cache.rs:
crates/cpu/src/config.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/stats.rs:
crates/cpu/src/trauma.rs:
