/root/repo/target/debug/deps/sapa_bioseq-e083a4a5aa33b85a.d: crates/bioseq/src/lib.rs crates/bioseq/src/alphabet.rs crates/bioseq/src/compose.rs crates/bioseq/src/db.rs crates/bioseq/src/dna.rs crates/bioseq/src/fasta.rs crates/bioseq/src/matrix.rs crates/bioseq/src/profile.rs crates/bioseq/src/queries.rs crates/bioseq/src/rng.rs crates/bioseq/src/seq.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_bioseq-e083a4a5aa33b85a.rmeta: crates/bioseq/src/lib.rs crates/bioseq/src/alphabet.rs crates/bioseq/src/compose.rs crates/bioseq/src/db.rs crates/bioseq/src/dna.rs crates/bioseq/src/fasta.rs crates/bioseq/src/matrix.rs crates/bioseq/src/profile.rs crates/bioseq/src/queries.rs crates/bioseq/src/rng.rs crates/bioseq/src/seq.rs Cargo.toml

crates/bioseq/src/lib.rs:
crates/bioseq/src/alphabet.rs:
crates/bioseq/src/compose.rs:
crates/bioseq/src/db.rs:
crates/bioseq/src/dna.rs:
crates/bioseq/src/fasta.rs:
crates/bioseq/src/matrix.rs:
crates/bioseq/src/profile.rs:
crates/bioseq/src/queries.rs:
crates/bioseq/src/rng.rs:
crates/bioseq/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
