//! Virtual address space layout for instrumented workloads.
//!
//! Each workload lays its data structures (database residues, query
//! profile, H/E row buffers, BLAST word index, …) out in a simulated
//! 32-bit virtual address space. Loads and stores in the trace then
//! carry effective addresses with the same locality structure as the
//! original application's heap, which is what makes the cache studies
//! (Figs. 5–7) meaningful.

use crate::{Error, Result};

/// Base of the data segment. The low 1 MiB is reserved for the code
/// segment (PCs), mirroring a classic text-below-heap layout.
pub const DATA_BASE: u32 = 0x1000_0000;

/// A named region of the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    name: String,
    base: u32,
    size: u32,
}

impl Region {
    /// Region name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First byte address of the region.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Address of byte `offset` within the region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= size` (regions are meant to
    /// be addressed within bounds; the release build trades the check
    /// for trace-generation speed).
    #[inline]
    pub fn addr(&self, offset: u32) -> u32 {
        debug_assert!(
            offset < self.size,
            "offset {offset} out of bounds for region {} (size {})",
            self.name,
            self.size
        );
        self.base + offset
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }
}

/// Bump allocator over the simulated data segment.
///
/// ```
/// use sapa_isa::mem::AddressSpace;
///
/// # fn main() -> sapa_isa::Result<()> {
/// let mut space = AddressSpace::new();
/// let db = space.alloc("db_residues", 70_000, 128)?;
/// let profile = space.alloc("query_profile", 222 * 24, 128)?;
/// assert!(profile.base() >= db.base() + db.size());
/// assert_eq!(db.base() % 128, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u32,
    regions: Vec<Region>,
}

impl AddressSpace {
    /// Creates an empty address space starting at [`DATA_BASE`].
    pub fn new() -> Self {
        AddressSpace {
            next: DATA_BASE,
            regions: Vec::new(),
        }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two), with a
    /// small guard gap after each region so distinct structures never
    /// share a cache line by accident.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfAddressSpace`] if the 32-bit space is
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, name: impl Into<String>, size: u64, align: u32) -> Result<Region> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if size > u32::MAX as u64 {
            return Err(Error::OutOfAddressSpace { requested: size });
        }
        let size = (size as u32).max(1);
        let base = self
            .next
            .checked_add(align - 1)
            .map(|v| v & !(align - 1))
            .ok_or(Error::OutOfAddressSpace {
                requested: size as u64,
            })?;
        const GUARD: u32 = 256;
        let end = base
            .checked_add(size)
            .and_then(|v| v.checked_add(GUARD))
            .ok_or(Error::OutOfAddressSpace {
                requested: size as u64,
            })?;
        self.next = end;
        let region = Region {
            name: name.into(),
            base,
            size,
        };
        self.regions.push(region.clone());
        Ok(region)
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes allocated (excluding guard gaps and alignment).
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size as u64).sum()
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 100, 64).unwrap();
        let b = s.alloc("b", 1000, 128).unwrap();
        let c = s.alloc("c", 1, 1).unwrap();
        assert_eq!(a.base() % 64, 0);
        assert_eq!(b.base() % 128, 0);
        assert!(b.base() >= a.base() + a.size());
        assert!(c.base() >= b.base() + b.size());
    }

    #[test]
    fn contains_and_addr() {
        let mut s = AddressSpace::new();
        let r = s.alloc("r", 10, 1).unwrap();
        assert!(r.contains(r.addr(0)));
        assert!(r.contains(r.addr(9)));
        assert!(!r.contains(r.base() + 10));
    }

    #[test]
    fn zero_sized_alloc_rounds_up() {
        let mut s = AddressSpace::new();
        let r = s.alloc("z", 0, 1).unwrap();
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut s = AddressSpace::new();
        let big = u32::MAX as u64 - DATA_BASE as u64 - 1024;
        let _ = s.alloc("big", big, 1).unwrap();
        assert!(matches!(
            s.alloc("more", 1 << 20, 1),
            Err(Error::OutOfAddressSpace { .. })
        ));
    }

    #[test]
    fn oversized_request_rejected() {
        let mut s = AddressSpace::new();
        assert!(matches!(
            s.alloc("huge", u64::MAX, 1),
            Err(Error::OutOfAddressSpace { .. })
        ));
    }

    #[test]
    fn allocated_bytes_accumulates() {
        let mut s = AddressSpace::new();
        s.alloc("a", 10, 1).unwrap();
        s.alloc("b", 20, 1).unwrap();
        assert_eq!(s.allocated_bytes(), 30);
    }
}
