/root/repo/target/debug/deps/properties-c529b595ad5f0355.d: crates/align/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c529b595ad5f0355.rmeta: crates/align/tests/properties.rs Cargo.toml

crates/align/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
