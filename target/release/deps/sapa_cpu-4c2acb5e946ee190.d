/root/repo/target/release/deps/sapa_cpu-4c2acb5e946ee190.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/release/deps/libsapa_cpu-4c2acb5e946ee190.rlib: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/release/deps/libsapa_cpu-4c2acb5e946ee190.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/cache.rs:
crates/cpu/src/config.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/stats.rs:
crates/cpu/src/trauma.rs:
