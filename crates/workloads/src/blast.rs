//! `BLAST` (blastp): the traced heuristic word search.
//!
//! The instrumented pipeline follows NCBI blastp's hot path (the
//! `BlastWordFinder` stage the paper profiles at ~75% of runtime):
//! a streaming scan of the database computes a packed 3-mer per
//! position and looks it up in the query's neighborhood word index —
//! a CSR structure (`starts[]` + `positions[]`) of tens to hundreds of
//! kilobytes whose effectively random indexing is what makes BLAST
//! memory-bound in the paper. Two-hit detection walks per-diagonal
//! arrays; seeds grow through ungapped X-drop extension, and strong
//! seeds are rescored with banded Smith-Waterman.
//!
//! Scores equal [`sapa_align::blast::search`]'s — the same code paths
//! run here, with instruction emission alongside.

use sapa_align::banded;
use sapa_align::blast::{pack_word, BlastParams, WordIndex, WORD_LEN};
use sapa_align::result::{Hit, TopK};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, Sequence, SubstitutionMatrix};
use sapa_isa::mem::AddressSpace;
use sapa_isa::reg::{self, Reg};
use sapa_isa::trace::{Trace, Tracer};

use crate::layout::DbImage;

/// Result of a traced BLAST run.
#[derive(Debug, Clone)]
pub struct BlastRun {
    /// The instruction trace of the whole search.
    pub trace: Trace,
    /// Reported score per subject (0 when below the report threshold).
    pub scores: Vec<i32>,
    /// Ranked hit list.
    pub hits: Vec<Hit>,
}

mod site {
    pub const LD_DB: u32 = 0; // next database residue
    pub const WORD_SHIFT: u32 = 1; // word = word*20 + res (mul/add)
    pub const WORD_MOD: u32 = 2; // keep word in range
    pub const CMP_STD: u32 = 3;
    pub const B_STD: u32 = 4; // non-standard residue?
    pub const LD_START: u32 = 5; // starts[word] — the big random access
    pub const LD_END: u32 = 6; // starts[word+1]
    pub const CMP_EMPTY: u32 = 7;
    pub const B_EMPTY: u32 = 8; // empty bucket?
    pub const LD_POS: u32 = 9; // positions[k] — random access
    pub const DIAG: u32 = 10; // diag = j - i + m
    pub const LD_LASTHIT: u32 = 11; // last_hit[diag]
    pub const CMP_OVL: u32 = 12;
    pub const B_OVL: u32 = 13; // overlapping hit?
    pub const ST_LASTHIT: u32 = 14;
    pub const CMP_WIN: u32 = 15;
    pub const B_WIN: u32 = 16; // within two-hit window?
    pub const LD_EXTEND_Q: u32 = 17; // extension: query residue
    pub const LD_EXTEND_S: u32 = 18; // extension: subject residue
    pub const EXT_ADD: u32 = 19;
    pub const EXT_MAX: u32 = 20;
    pub const CMP_XDROP: u32 = 21;
    pub const B_XDROP: u32 = 22;
    pub const LD_EXTEND_SC: u32 = 23; // matrix score load
    pub const ST_EXTEND: u32 = 25;
    pub const GAP_LD_P: u32 = 26; // banded rescoring profile load
    pub const GAP_LD_SS: u32 = 27;
    pub const GAP_ADD: u32 = 28;
    pub const GAP_MAX1: u32 = 29;
    pub const GAP_MAX2: u32 = 30;
    pub const GAP_CMP: u32 = 31;
    pub const GAP_B: u32 = 32;
    pub const GAP_ST: u32 = 33;
    pub const GAP_LOOP: u32 = 34;
    pub const INC: u32 = 35;
    pub const B_SCAN: u32 = 36; // scan-loop backedge
    pub const ADDR_A: u32 = 37; // scan address arithmetic
    pub const ADDR_B: u32 = 38;
    pub const BOUND: u32 = 39;
    pub const TOP: u32 = 0;
}

const R_DB: Reg = reg::gpr(3);
const R_WORD: Reg = reg::gpr(4);
const R_START: Reg = reg::gpr(5);
const R_END: Reg = reg::gpr(6);
const R_POS: Reg = reg::gpr(7);
const R_DIAG: Reg = reg::gpr(8);
const R_LAST: Reg = reg::gpr(9);
const R_SCORE: Reg = reg::gpr(10);
const R_BESTX: Reg = reg::gpr(11);
const R_CMP: Reg = reg::gpr(12);
const R_PTR: Reg = reg::gpr(13);
const R_Q: Reg = reg::gpr(14);
const R_S: Reg = reg::gpr(15);

/// Runs the traced BLAST search of `query` against `db`.
pub fn run(
    query: &[AminoAcid],
    db: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &BlastParams,
    keep: usize,
) -> BlastRun {
    let m = query.len();
    let index = WordIndex::build(query, matrix, params.threshold);

    let mut space = AddressSpace::new();
    let img = DbImage::build(&mut space, db);
    // The lookup table models NCBI's thick-backbone layout: an
    // 8-byte slot per word (~64 KB) — the randomly-indexed structure
    // that makes BLAST memory-bound — plus the CSR positions overflow.
    let starts_region = space
        .alloc("word_backbone", 8 * (8000 + 1), 128)
        .expect("backbone fits");
    let pos_region = space
        .alloc("word_positions", 4 * index.entry_count().max(1) as u64, 128)
        .expect("positions fit");
    // Per-diagonal arrays, reused across subjects (sized for the worst).
    let max_n: usize = db.iter().map(Sequence::len).max().unwrap_or(0);
    let diag_region = space
        .alloc("diag_last_hit", 4 * (m + max_n).max(1) as u64, 128)
        .expect("diag arrays fit");
    // Query residues + banded-DP row, for the rescoring loops.
    let band_region = space
        .alloc(
            "band_rows",
            8 * (2 * params.band_width + 1).max(1) as u64,
            128,
        )
        .expect("band rows fit");
    // Query residues and the substitution matrix, read by the
    // extension loops.
    let query_region = space
        .alloc("query_residues", m.max(1) as u64, 128)
        .expect("query fits");
    let matrix_region = space.alloc("matrix", 24 * 24, 128).expect("matrix fits");

    let mut t = Tracer::with_capacity(1024);
    let mut scores = Vec::with_capacity(db.len());
    let mut results = TopK::new(keep.max(1));

    for si in 0..img.len() {
        let subject = img.subject(si);
        let n = subject.len();
        if n < WORD_LEN || m < WORD_LEN {
            scores.push(0);
            continue;
        }
        let ndiag = m + n;
        let mut last_hit = vec![i32::MIN / 2; ndiag];
        let mut ext_end = vec![i32::MIN / 2; ndiag];
        let mut best_score = 0i32;
        // Diagonals already covered by a gapped (banded) extension;
        // real BLAST suppresses re-extension of the same region.
        let mut gapped_diags: Vec<usize> = Vec::new();

        let mut pos_cursor = 0u32; // rolling pseudo-offset into positions[]

        for j in 0..=(n - WORD_LEN) {
            // --- Scan: incremental word computation.
            t.ialu(site::ADDR_A, R_PTR, &[R_PTR]);
            t.iload(
                site::LD_DB,
                R_DB,
                img.residue_addr(si, j + WORD_LEN - 1),
                1,
                &[R_PTR],
            );
            t.ialu(site::WORD_SHIFT, R_WORD, &[R_WORD, R_DB]);
            t.ialu(site::WORD_MOD, R_WORD, &[R_WORD]);
            t.ialu(site::ADDR_B, R_CMP, &[R_WORD]);
            t.ialu(site::BOUND, R_CMP, &[R_CMP, R_WORD]);
            let word = pack_word(subject, j);
            t.ialu(site::CMP_STD, R_CMP, &[R_DB]);
            t.branch(site::B_STD, word.is_none(), site::TOP, &[R_CMP]);
            let Some(word) = word else {
                t.ialu(site::INC, R_PTR, &[R_PTR]);
                t.branch(site::B_SCAN, j + WORD_LEN < n, site::TOP, &[R_PTR]);
                continue;
            };

            // --- Index lookup: the randomly-indexed big structure.
            t.iload(
                site::LD_START,
                R_START,
                starts_region.addr(8 * word as u32),
                4,
                &[R_WORD],
            );
            t.iload(
                site::LD_END,
                R_END,
                starts_region.addr(8 * word as u32 + 4),
                4,
                &[R_WORD],
            );
            let bucket = index.lookup(word);
            t.ialu(site::CMP_EMPTY, R_CMP, &[R_START, R_END]);
            t.branch(site::B_EMPTY, bucket.is_empty(), site::TOP, &[R_CMP]);

            for (k, &qi) in bucket.iter().enumerate() {
                let i = qi as usize;
                let diag = j + m - i;
                let jj = j as i32;

                t.iload(
                    site::LD_POS,
                    R_POS,
                    pos_region.addr((pos_cursor + k as u32) % pos_region.size().max(1)),
                    4,
                    &[R_START],
                );
                t.ialu(site::DIAG, R_DIAG, &[R_POS]);
                t.iload(
                    site::LD_LASTHIT,
                    R_LAST,
                    diag_region.addr(4 * diag as u32),
                    4,
                    &[R_DIAG],
                );

                let skip_extended = jj <= ext_end[diag];
                let prev = last_hit[diag];
                t.ialu(site::CMP_OVL, R_CMP, &[R_LAST, R_POS]);
                t.branch(
                    site::B_OVL,
                    skip_extended || jj - prev < WORD_LEN as i32,
                    site::TOP,
                    &[R_CMP],
                );
                if skip_extended {
                    continue;
                }
                if jj - prev < WORD_LEN as i32 {
                    continue;
                }
                last_hit[diag] = jj;
                t.istore(
                    site::ST_LASTHIT,
                    diag_region.addr(4 * diag as u32),
                    4,
                    &[R_POS, R_DIAG],
                );

                let in_window = params.one_hit || jj - prev <= params.two_hit_window as i32;
                t.ialu(site::CMP_WIN, R_CMP, &[R_LAST]);
                t.branch(site::B_WIN, in_window, site::TOP, &[R_CMP]);
                if !in_window {
                    continue;
                }

                // --- Ungapped X-drop extension (traced per residue).
                let ungapped = traced_ungapped_extend(
                    &mut t,
                    &img,
                    (&query_region, &matrix_region),
                    si,
                    query,
                    subject,
                    matrix,
                    i,
                    j,
                    params.xdrop_ungapped,
                );
                ext_end[diag] = jj + WORD_LEN as i32;

                let near_gapped = gapped_diags
                    .iter()
                    .any(|&g| g.abs_diff(diag) <= params.band_width);
                let score = if ungapped >= params.gapped_trigger && !near_gapped {
                    gapped_diags.push(diag);
                    traced_banded(
                        &mut t,
                        &band_region,
                        &matrix_region,
                        query,
                        subject,
                        matrix,
                        gaps,
                        j as isize - i as isize,
                        params.band_width,
                    )
                } else {
                    ungapped
                };
                if score > best_score {
                    best_score = score;
                }
            }
            pos_cursor = pos_cursor.wrapping_add(bucket.len() as u32 * 4);

            t.ialu(site::INC, R_PTR, &[R_PTR]);
            t.branch(site::B_SCAN, j + WORD_LEN < n, site::TOP, &[R_PTR]);
        }

        scores.push(if best_score >= params.min_report_score {
            best_score
        } else {
            0
        });
        if best_score >= params.min_report_score {
            results.push(Hit {
                seq_index: si,
                score: best_score,
            });
        }
    }

    let hits = results.finish().into_hits();
    BlastRun {
        trace: t.finish(),
        scores,
        hits,
    }
}

/// Ungapped X-drop extension with instruction emission; the math is a
/// re-run of [`sapa_align::blast::ungapped_extend`] with per-residue
/// loads/compares traced.
#[allow(clippy::too_many_arguments)]
fn traced_ungapped_extend(
    t: &mut Tracer,
    img: &DbImage,
    regions: (&sapa_isa::mem::Region, &sapa_isa::mem::Region),
    si: usize,
    query: &[AminoAcid],
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    qi: usize,
    sj: usize,
    xdrop: i32,
) -> i32 {
    // Emit the per-residue loop instructions by simulating the same
    // walk the reference implementation makes.
    let mut score: i32 = (0..WORD_LEN)
        .map(|k| matrix.score(query[qi + k], subject[sj + k]))
        .sum();
    let mut best = score;

    let (query_region, matrix_region) = regions;
    let emit_step = |t: &mut Tracer, i: usize, j: usize, stop: bool| {
        t.iload(
            site::LD_EXTEND_Q,
            R_Q,
            query_region.addr(i as u32),
            1,
            &[R_PTR],
        );
        t.iload(site::LD_EXTEND_S, R_S, img.residue_addr(si, j), 1, &[R_PTR]);
        t.iload(
            site::LD_EXTEND_SC,
            R_SCORE,
            matrix_region.addr(((i * 24 + j) % 576) as u32),
            1,
            &[R_Q, R_S],
        );
        t.ialu(site::EXT_ADD, R_SCORE, &[R_SCORE, R_BESTX]);
        t.ialu(site::EXT_MAX, R_BESTX, &[R_BESTX, R_SCORE]);
        t.ialu(site::CMP_XDROP, R_CMP, &[R_BESTX, R_SCORE]);
        t.branch(site::B_XDROP, stop, site::TOP, &[R_CMP]);
    };

    let (mut i, mut j) = (qi + WORD_LEN, sj + WORD_LEN);
    while i < query.len() && j < subject.len() {
        score += matrix.score(query[i], subject[j]);
        if score > best {
            best = score;
        }
        let stop = best - score > xdrop;
        emit_step(t, i, j, stop);
        if stop {
            break;
        }
        i += 1;
        j += 1;
    }
    let mut score = best;
    let (mut i, mut j) = (qi, sj);
    while i > 0 && j > 0 {
        i -= 1;
        j -= 1;
        score += matrix.score(query[i], subject[j]);
        if score > best {
            best = score;
        }
        let stop = best - score > xdrop;
        emit_step(t, i, j, stop);
        if stop {
            break;
        }
    }
    t.istore(site::ST_EXTEND, query_region.addr(0), 4, &[R_BESTX]);
    best
}

/// Banded gapped rescoring with instruction emission (one compact DP
/// step per band cell), delegating the arithmetic to
/// [`sapa_align::banded::score`].
#[allow(clippy::too_many_arguments)]
fn traced_banded(
    t: &mut Tracer,
    band_region: &sapa_isa::mem::Region,
    matrix_region: &sapa_isa::mem::Region,
    query: &[AminoAcid],
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    diag: isize,
    width: usize,
) -> i32 {
    let band = 2 * width + 1;
    for i in 0..query.len() {
        for off in 0..band {
            let j = i as isize + diag - width as isize + off as isize;
            if j < 0 || j >= subject.len() as isize {
                continue;
            }
            let cell = band_region.addr((8 * off as u32) % band_region.size().max(8));
            t.iload(site::GAP_LD_SS, R_S, cell, 8, &[R_PTR]);
            t.iload(
                site::GAP_LD_P,
                R_SCORE,
                matrix_region.addr(((i * 24) % 576) as u32),
                1,
                &[R_PTR],
            );
            t.ialu(site::GAP_ADD, R_Q, &[R_S, R_SCORE]);
            t.ialu(site::GAP_MAX1, R_Q, &[R_Q, R_S]);
            t.ialu(site::GAP_MAX2, R_Q, &[R_Q, R_CMP]);
            // Data-dependent path selection of the DP max, a real
            // branch in the scalar rescoring loop.
            let positive = matrix.score(query[i], subject[j as usize]) > 0;
            t.branch(site::GAP_B, positive, site::GAP_LD_SS, &[R_Q]);
            t.istore(site::GAP_ST, cell, 8, &[R_Q]);
        }
        t.ialu(site::GAP_CMP, R_CMP, &[R_Q]);
        t.branch(
            site::GAP_LOOP,
            i + 1 < query.len(),
            site::GAP_LD_SS,
            &[R_CMP],
        );
    }
    banded::score(query, subject, matrix, gaps, diag, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_align::blast as ref_blast;
    use sapa_isa::OpClass;

    fn seq(id: &str, s: &str) -> Sequence {
        Sequence::from_str(id, s).unwrap()
    }

    fn inputs() -> (Vec<AminoAcid>, Vec<Sequence>) {
        let q = seq("q", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK")
            .residues()
            .to_vec();
        let db = vec![
            seq("s0", "GGPGGNDNDNPPGGAAGGPGGNDNDNPPGGAA"),
            seq("s1", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK"),
            seq("s2", "AAWWYYHHEEKKRRDDAAWWYYHHEEKKRRDD"),
        ];
        (q, db)
    }

    #[test]
    fn hits_match_reference_blast() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let p = BlastParams::default();
        let run = run(&q, &db, &m, g, &p, 10);

        let idx = ref_blast::WordIndex::build(&q, &m, p.threshold);
        let slices: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let expect = ref_blast::search(&idx, slices, &m, g, &p, 10);
        assert_eq!(run.hits, expect.hits().to_vec());
    }

    #[test]
    fn instruction_mix_matches_figure_1_shape() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let run = run(
            &q,
            &db,
            &m,
            GapPenalties::paper(),
            &BlastParams::default(),
            10,
        );
        let stats = run.trace.stats();
        let ialu = stats.fraction(OpClass::IAlu);
        let iload = stats.fraction(OpClass::ILoad);
        let ctrl = stats.fraction(OpClass::Branch);
        // Paper Fig. 1 BLAST: ~54% ialu, ~21% iload, ~16% ctrl.
        assert!((0.40..0.65).contains(&ialu), "ialu {ialu}");
        assert!((0.14..0.32).contains(&iload), "iload {iload}");
        assert!((0.08..0.26).contains(&ctrl), "ctrl {ctrl}");
        assert_eq!(stats.vector_ops(), 0);
    }

    #[test]
    fn trace_is_much_smaller_than_ssearch() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let blast = run(&q, &db, &m, g, &BlastParams::default(), 10);
        let ss = crate::ssearch::run(&q, &db, &m, g, 10);
        assert!(
            ss.trace.len() > 3 * blast.trace.len(),
            "ssearch {} vs blast {}",
            ss.trace.len(),
            blast.trace.len()
        );
    }

    #[test]
    fn short_subjects_are_skipped() {
        let q = seq("q", "MKWVTFISLL").residues().to_vec();
        let m = SubstitutionMatrix::blosum62();
        let run = run(
            &q,
            &[seq("s", "MK")],
            &m,
            GapPenalties::paper(),
            &BlastParams::default(),
            5,
        );
        assert_eq!(run.scores, vec![0]);
    }
}
