/root/repo/target/debug/deps/trace_validity-3e42a34d0457b677.d: crates/workloads/tests/trace_validity.rs

/root/repo/target/debug/deps/trace_validity-3e42a34d0457b677: crates/workloads/tests/trace_validity.rs

crates/workloads/tests/trace_validity.rs:
