/root/repo/target/debug/examples/microarch_study-a342467f9d11942f.d: crates/core/../../examples/microarch_study.rs Cargo.toml

/root/repo/target/debug/examples/libmicroarch_study-a342467f9d11942f.rmeta: crates/core/../../examples/microarch_study.rs Cargo.toml

crates/core/../../examples/microarch_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
