//! Search-result containers shared by the database-search front ends.
//!
//! [`TopK`] is the bounded collector every search pipeline pushes into:
//! a binary min-heap that keeps the best `capacity` hits seen so far in
//! O(log k) per push, regardless of how many subjects are scanned.
//! [`TopK::finish`] freezes it into a [`SearchResults`] — an immutable
//! ranked list with `&self` accessors and deterministic ordering
//! (descending score, ties broken by ascending sequence index), so the
//! same scan yields bit-identical output at any thread count.
//!
//! [`Alignment`] is the full-coordinates-plus-[`Cigar`] record the
//! three-pass striped traceback ([`crate::traceback`]) attaches to
//! ranked hits when a search asks for `report_alignments`.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::sw::AlignOp;

/// One database hit: a sequence index and its alignment score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hit {
    /// Index of the sequence in the searched database.
    pub seq_index: usize,
    /// Alignment score (raw, matrix units).
    pub score: i32,
}

/// Ranking wrapper: a greater `Ranked` is a *better* hit (higher score,
/// then lower sequence index). The heap stores `Reverse<Ranked>` so the
/// worst retained hit sits at the top, ready to be evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ranked(Hit);

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .score
            .cmp(&other.0.score)
            .then_with(|| other.0.seq_index.cmp(&self.0.seq_index))
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-K hit collector.
///
/// Mirrors the `-b 500` behaviour of the paper's command lines: only the
/// best `capacity` hits survive a scan. Pushing is O(log capacity) and
/// memory stays at `capacity` entries no matter how large the database
/// is (the old `SearchResults` buffered up to 2× capacity and re-sorted
/// on every read).
///
/// ```
/// use sapa_align::{Hit, TopK};
///
/// let mut top = TopK::new(2);
/// top.push(Hit { seq_index: 0, score: 10 });
/// top.push(Hit { seq_index: 1, score: 30 });
/// top.push(Hit { seq_index: 2, score: 20 });
/// let results = top.finish();
/// let best: Vec<i32> = results.hits().iter().map(|h| h.score).collect();
/// assert_eq!(best, vec![30, 20]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    capacity: usize,
    heap: BinaryHeap<Reverse<Ranked>>,
}

impl TopK {
    /// Creates an empty collector that retains the best `capacity` hits
    /// (the paper's runs use 500).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TopK {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// Offers a hit; it is kept only while it ranks in the best
    /// `capacity` seen so far.
    pub fn push(&mut self, hit: Hit) {
        let candidate = Reverse(Ranked(hit));
        if self.heap.len() < self.capacity {
            self.heap.push(candidate);
        } else if let Some(worst) = self.heap.peek() {
            // `Reverse` flips the comparison: candidate < worst means
            // the new hit ranks better than the current worst.
            if candidate < *worst {
                self.heap.pop();
                self.heap.push(candidate);
            }
        }
    }

    /// Number of retained hits (≤ capacity).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hits were retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Maximum number of hits this collector retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Freezes the collector into an immutable ranked [`SearchResults`]
    /// (best first, ties by ascending sequence index).
    pub fn finish(self) -> SearchResults {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|Reverse(Ranked(h))| h).collect();
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.seq_index.cmp(&b.seq_index)));
        SearchResults { hits }
    }
}

/// An immutable ranked list of database hits, produced by
/// [`TopK::finish`]: best score first, ties broken by ascending
/// sequence index. All accessors take `&self`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchResults {
    hits: Vec<Hit>,
}

impl SearchResults {
    /// The ranked hits (best first).
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// The best score, if any hits were recorded.
    pub fn best_score(&self) -> Option<i32> {
        self.hits.first().map(|h| h.score)
    }

    /// Number of retained hits.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether no hits were recorded.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Consumes the list, yielding the ranked hits.
    pub fn into_hits(self) -> Vec<Hit> {
        self.hits
    }
}

/// One CIGAR operation kind, SAM-style with the subject as the
/// reference: `M` consumes both sequences, `I` consumes only the query
/// (insertion relative to the subject), `D` consumes only the subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Aligned pair (match or substitution) — SAM `M`.
    Match,
    /// Query residue with no subject partner — SAM `I`.
    Ins,
    /// Subject residue with no query partner — SAM `D`.
    Del,
}

impl CigarOp {
    /// The SAM character for this operation.
    pub fn as_char(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }

    fn from_align_op(op: AlignOp) -> Self {
        match op {
            AlignOp::Subst => CigarOp::Match,
            AlignOp::Delete => CigarOp::Ins, // consumes the query
            AlignOp::Insert => CigarOp::Del, // consumes the subject
        }
    }
}

/// A run-length-encoded CIGAR string, e.g. `12M3I7M`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cigar {
    ops: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Run-length-encodes a per-column op sequence (query = `a` side of
    /// the [`AlignOp`] convention, subject = `b` side).
    pub fn from_ops(ops: &[AlignOp]) -> Self {
        let mut runs: Vec<(u32, CigarOp)> = Vec::new();
        for &op in ops {
            let c = CigarOp::from_align_op(op);
            match runs.last_mut() {
                Some((n, last)) if *last == c => *n += 1,
                _ => runs.push((1, c)),
            }
        }
        Cigar { ops: runs }
    }

    /// The `(length, op)` runs in order.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.ops
    }

    /// Whether the CIGAR is empty (no aligned columns).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total query residues consumed (`M` + `I`).
    pub fn query_span(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, c)| matches!(c, CigarOp::Match | CigarOp::Ins))
            .map(|(n, _)| *n as usize)
            .sum()
    }

    /// Total subject residues consumed (`M` + `D`).
    pub fn subject_span(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, c)| matches!(c, CigarOp::Match | CigarOp::Del))
            .map(|(n, _)| *n as usize)
            .sum()
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, c) in &self.ops {
            write!(f, "{n}{}", c.as_char())?;
        }
        Ok(())
    }
}

/// A full local alignment for one reported hit: half-open coordinate
/// ranges on both sequences plus the [`Cigar`] over the aligned window.
///
/// Produced by the three-pass striped traceback
/// ([`crate::traceback::align_hit`]) when a [`crate::SearchRequest`]
/// sets `report_alignments`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Start (inclusive) of the aligned region in the query.
    pub query_start: usize,
    /// End (exclusive) of the aligned region in the query.
    pub query_end: usize,
    /// Start (inclusive) of the aligned region in the subject.
    pub subject_start: usize,
    /// End (exclusive) of the aligned region in the subject.
    pub subject_end: usize,
    /// Edit operations over the aligned window.
    pub cigar: Cigar,
}

impl Alignment {
    /// Replays the CIGAR against the two sequences and recomputes the
    /// affine-gap score (each maximal gap run charged `open` once plus
    /// `extend` per residue).
    ///
    /// Returns `None` if the CIGAR is inconsistent with the recorded
    /// coordinates or runs out of either sequence — the property suite
    /// uses this as the ground-truth check that reported alignments
    /// replay to exactly the reported score.
    pub fn replay_score(
        &self,
        query: &[AminoAcid],
        subject: &[AminoAcid],
        matrix: &SubstitutionMatrix,
        gaps: GapPenalties,
    ) -> Option<i32> {
        let (mut i, mut j) = (self.query_start, self.subject_start);
        let mut total = 0i32;
        for &(n, op) in self.cigar.runs() {
            let n = n as usize;
            match op {
                CigarOp::Match => {
                    if i + n > query.len() || j + n > subject.len() {
                        return None;
                    }
                    for k in 0..n {
                        total += matrix.score(query[i + k], subject[j + k]);
                    }
                    i += n;
                    j += n;
                }
                CigarOp::Ins => {
                    if i + n > query.len() {
                        return None;
                    }
                    total -= gaps.gap_cost(n as u32);
                    i += n;
                }
                CigarOp::Del => {
                    if j + n > subject.len() {
                        return None;
                    }
                    total -= gaps.gap_cost(n as u32);
                    j += n;
                }
            }
        }
        if (i, j) != (self.query_end, self.subject_end) {
            return None;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_and_truncated() {
        let mut top = TopK::new(3);
        for (i, s) in [5, 1, 9, 7, 3].iter().enumerate() {
            top.push(Hit {
                seq_index: i,
                score: *s,
            });
        }
        let r = top.finish();
        let scores: Vec<i32> = r.hits().iter().map(|h| h.score).collect();
        assert_eq!(scores, vec![9, 7, 5]);
        assert_eq!(r.best_score(), Some(9));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ties_break_by_index() {
        let mut top = TopK::new(4);
        for seq_index in [2usize, 0, 1] {
            top.push(Hit {
                seq_index,
                score: 5,
            });
        }
        let r = top.finish();
        let idx: Vec<usize> = r.hits().iter().map(|h| h.seq_index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn tied_scores_evict_highest_index_first() {
        // With capacity 2 and three score-5 hits, the two lowest
        // indices must survive — the rank order is (score, -index).
        let mut top = TopK::new(2);
        for seq_index in [2usize, 0, 1] {
            top.push(Hit {
                seq_index,
                score: 5,
            });
        }
        let idx: Vec<usize> = top.finish().hits().iter().map(|h| h.seq_index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn empty_list() {
        let top = TopK::new(1);
        assert!(top.is_empty());
        let r = top.finish();
        assert!(r.is_empty());
        assert_eq!(r.best_score(), None);
        assert_eq!(r, SearchResults::default());
    }

    #[test]
    fn many_pushes_stay_bounded() {
        let mut top = TopK::new(10);
        for i in 0..10_000 {
            top.push(Hit {
                seq_index: i,
                score: (i % 100) as i32,
            });
        }
        assert_eq!(top.len(), 10);
        let r = top.finish();
        assert_eq!(r.len(), 10);
        assert!(r.hits().iter().all(|h| h.score == 99));
        // The earliest of the score-99 hits, in index order.
        let idx: Vec<usize> = r.hits().iter().map(|h| h.seq_index).collect();
        assert_eq!(idx, (0..10).map(|k| 99 + 100 * k).collect::<Vec<_>>());
    }

    #[test]
    fn matches_full_sort_oracle() {
        // Pseudo-random scores; TopK(k) must equal sort-then-truncate.
        let n = 257usize;
        let scores: Vec<i32> = (0..n).map(|i| ((i * 2654435761) % 83) as i32).collect();
        for k in [1usize, 2, 7, 50, 300] {
            let mut top = TopK::new(k);
            let mut all: Vec<Hit> = Vec::new();
            for (seq_index, &score) in scores.iter().enumerate() {
                let h = Hit { seq_index, score };
                top.push(h);
                all.push(h);
            }
            all.sort_by(|a, b| b.score.cmp(&a.score).then(a.seq_index.cmp(&b.seq_index)));
            all.truncate(k);
            assert_eq!(top.finish().into_hits(), all, "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TopK::new(0);
    }

    fn seq(s: &str) -> Vec<AminoAcid> {
        sapa_bioseq::Sequence::from_str("t", s)
            .unwrap()
            .residues()
            .to_vec()
    }

    #[test]
    fn cigar_run_length_encoding_and_display() {
        use AlignOp::{Delete, Insert, Subst};
        let cigar = Cigar::from_ops(&[Subst, Subst, Delete, Delete, Delete, Subst, Insert]);
        assert_eq!(cigar.to_string(), "2M3I1M1D");
        assert_eq!(cigar.query_span(), 2 + 3 + 1);
        assert_eq!(cigar.subject_span(), 2 + 1 + 1);
        assert!(Cigar::from_ops(&[]).is_empty());
        assert_eq!(Cigar::from_ops(&[]).to_string(), "");
    }

    #[test]
    fn alignment_replay_matches_manual_score() {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        // Query AWGHE vs subject AWHE: one query residue unmatched.
        let q = seq("AWGHE");
        let s = seq("AWHE");
        let al = Alignment {
            query_start: 0,
            query_end: 5,
            subject_start: 0,
            subject_end: 4,
            cigar: Cigar::from_ops(&[
                AlignOp::Subst,
                AlignOp::Subst,
                AlignOp::Delete,
                AlignOp::Subst,
                AlignOp::Subst,
            ]),
        };
        let expect = m.score(q[0], s[0]) + m.score(q[1], s[1]) - g.gap_cost(1)
            + m.score(q[3], s[2])
            + m.score(q[4], s[3]);
        assert_eq!(al.replay_score(&q, &s, &m, g), Some(expect));
    }

    #[test]
    fn alignment_replay_rejects_inconsistent_coords() {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let q = seq("AWGHE");
        let al = Alignment {
            query_start: 0,
            query_end: 4, // cigar consumes 5 query residues, not 4
            subject_start: 0,
            subject_end: 5,
            cigar: Cigar::from_ops(&[AlignOp::Subst; 5]),
        };
        assert_eq!(al.replay_score(&q, &q, &m, g), None);
        let overrun = Alignment {
            query_start: 3,
            query_end: 8,
            subject_start: 0,
            subject_end: 5,
            cigar: Cigar::from_ops(&[AlignOp::Subst; 5]),
        };
        assert_eq!(overrun.replay_score(&q, &q, &m, g), None);
    }
}
