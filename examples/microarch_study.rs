//! A custom microarchitecture study built on the public API: how does
//! BLAST's performance respond to the data-cache size, and where do its
//! cycles go? (A miniature version of the paper's Figures 2 and 5.)
//!
//! ```text
//! cargo run --release --example microarch_study
//! ```

use sapa_core::cpu::config::{CacheConfig, SimConfig};
use sapa_core::cpu::Simulator;
use sapa_core::workloads::{StandardInputs, Workload};

fn main() {
    // Trace BLAST once on the standard inputs (scaled down a little so
    // the example finishes in seconds).
    let inputs = StandardInputs::with_db_size(200, 2);
    let bundle = Workload::Blast.trace(&inputs);
    println!(
        "BLAST trace: {} instructions, {} reported hits\n",
        bundle.trace.len(),
        bundle.hits.len()
    );

    // Sweep the D-L1 size.
    println!("DL1 size   miss rate   IPC    cycles");
    println!("--------------------------------------");
    for kb in [4u64, 8, 16, 32, 64, 128, 256] {
        let mut cfg = SimConfig::four_way();
        cfg.mem.dl1 = CacheConfig {
            size: Some(kb * 1024),
            assoc: 2,
            line: 128,
            latency: 1,
        };
        let report = Simulator::new(cfg).run(&bundle.trace);
        println!(
            "{:>5}K    {:>6.2}%    {:>4.2}   {}",
            kb,
            report.dl1.miss_rate() * 100.0,
            report.ipc(),
            report.cycles
        );
    }

    // Where do the stall cycles go at 32K?
    let report = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
    println!("\ntop stall reasons (4-way, 32K/32K/1M):");
    for (trauma, cycles) in report.traumas.top(8) {
        if cycles == 0 {
            continue;
        }
        println!(
            "  {:<10} {:>9} cycles  {}",
            trauma.label(),
            cycles,
            trauma.description()
        );
    }
}
