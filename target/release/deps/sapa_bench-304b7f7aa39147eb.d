/root/repo/target/release/deps/sapa_bench-304b7f7aa39147eb.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/sapa_bench-304b7f7aa39147eb: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
