//! Multi-threaded database scoring, generic over any alignment engine.
//!
//! Database search is embarrassingly parallel across subjects — the
//! paper's related-work section notes that most prior art studies
//! exactly this axis (cluster/SMP scaling) while the paper itself
//! studies the single processor. This module provides two layers:
//!
//! * [`par_scores`] / [`par_search`] — a subject-parallel driver for
//!   any pure scoring function, with **chunked** work claiming
//!   (workers grab batches of subjects per atomic `fetch_add` instead
//!   of one, cutting cursor contention on short subjects);
//! * [`engine_scores`] / [`engine_search`] — the same pipeline driven
//!   through an [`AlignmentEngine`]: one shared engine (query index /
//!   profile) threaded through all workers, one reusable
//!   [`AlignmentEngine::Workspace`] per worker (zero per-subject
//!   allocation), per-engine statistics harvested from the workspaces,
//!   and deterministic, thread-count-independent results.
//!
//! Both layers share one chunked work-claiming loop; determinism is
//! enforced by tests that compare thread counts {1, 2, 8}.
//!
//! ## Graceful degradation
//!
//! The engine layer additionally hardens the loop against two failure
//! modes a production scan must survive:
//!
//! * **Poisoned subjects** — every `score_one` call runs under
//!   [`std::panic::catch_unwind`]. A panicking subject is *quarantined*
//!   (its index and panic cause recorded in [`RunStats::quarantined`]),
//!   the worker discards its possibly-inconsistent workspace and builds
//!   a fresh one, and the batch completes with every non-faulted
//!   subject's score bit-identical to a fault-free run. Quarantine
//!   decisions depend only on the data, so reports are identical at any
//!   thread count.
//! * **Unbounded latency** — [`engine_search_bounded`] accepts a
//!   [`Deadline`]: a deterministic cell budget (resolved serially to an
//!   admitted subject prefix, so partial results are thread-count
//!   independent) or a best-effort wall-clock cutoff. Partial scans
//!   return ranked hits over the subjects actually scored plus an
//!   explicit `completed = false`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::QueryProfile;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::engine::{AlignmentEngine, Deadline, DeadlineKind, Quarantined, RunStats};
use crate::result::{Alignment, Hit, SearchResults, TopK};
use crate::striped::Workspace;
use crate::traceback;

/// Subjects claimed per `fetch_add` when the caller does not choose:
/// large enough that the shared cursor is touched ~1/16th as often,
/// small enough that tail imbalance stays negligible for real database
/// sizes.
pub const DEFAULT_CHUNK: usize = 16;

/// Picks a claim-chunk size: [`DEFAULT_CHUNK`], shrunk so that every
/// thread still gets several claims (keeps small inputs balanced).
fn auto_chunk(subject_count: usize, threads: usize) -> usize {
    let fair = (subject_count / (threads * 4)).max(1);
    fair.min(DEFAULT_CHUNK)
}

/// What one worker hands back: scored pairs, quarantined pairs, and
/// every workspace it used (including ones discarded after a panic, so
/// per-workspace counters survive and totals stay deterministic).
struct WorkerYield<W> {
    scored: Vec<(usize, i32)>,
    quarantined: Vec<(usize, String)>,
    workspaces: Vec<W>,
}

/// What the merged loop hands back to the engine front ends.
struct ChunkedOutcome<W> {
    /// Per-subject scores; `None` = quarantined or never attempted
    /// (wall-clock deadline hit before the subject was claimed).
    scores: Vec<Option<i32>>,
    /// Panicking subjects with causes, ascending by index.
    quarantined: Vec<(usize, String)>,
    /// Every workspace any worker used.
    workspaces: Vec<W>,
}

fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The one chunked work-claiming loop behind every parallel front end.
///
/// Spawns up to `threads` scoped workers; each builds one workspace
/// with `make_ws`, claims `chunk` consecutive subjects per `fetch_add`
/// on a shared cursor, and records `(index, score)` pairs. The merge
/// restores subject order — output is identical no matter how chunks
/// interleave — and the workspaces are returned so callers can harvest
/// per-worker statistics.
///
/// Every `score_fn` call runs under `catch_unwind`: a panicking subject
/// is recorded in `quarantined` and its worker replaces the workspace
/// (the panic may have left it mid-update) while keeping the old one
/// for counter harvesting. With `wall` set, workers stop claiming new
/// chunks once the instant passes — a best-effort, non-deterministic
/// cutoff used only by [`Deadline::Wall`].
fn chunked_scores<W, M, F>(
    subject_count: usize,
    threads: usize,
    chunk: usize,
    wall: Option<Instant>,
    make_ws: M,
    score_fn: F,
) -> ChunkedOutcome<W>
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> i32 + Sync,
{
    assert!(threads > 0, "need at least one thread");
    assert!(chunk > 0, "need a positive chunk size");
    let scores: Vec<Option<i32>> = vec![None; subject_count];
    if subject_count == 0 {
        return ChunkedOutcome {
            scores,
            quarantined: Vec::new(),
            workspaces: Vec::new(),
        };
    }
    let threads = threads.min(subject_count.div_ceil(chunk));
    let cursor = AtomicUsize::new(0);

    let mut partials: Vec<WorkerYield<W>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let score_fn = &score_fn;
            let make_ws = &make_ws;
            handles.push(scope.spawn(move || {
                // Reused across every subject this worker scores.
                let mut ws = make_ws();
                let mut local = WorkerYield {
                    scored: Vec::new(),
                    quarantined: Vec::new(),
                    workspaces: Vec::new(),
                };
                loop {
                    if wall.is_some_and(|w| Instant::now() >= w) {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= subject_count {
                        break;
                    }
                    let end = (start + chunk).min(subject_count);
                    for i in start..end {
                        match catch_unwind(AssertUnwindSafe(|| score_fn(&mut ws, i))) {
                            Ok(s) => local.scored.push((i, s)),
                            Err(payload) => {
                                local.quarantined.push((i, panic_cause(payload)));
                                // The unwound workspace may be mid-update;
                                // retire it (counters intact) and continue
                                // on a fresh one.
                                local.workspaces.push(std::mem::replace(&mut ws, make_ws()));
                            }
                        }
                    }
                }
                local.workspaces.push(ws);
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    let mut out = ChunkedOutcome {
        scores,
        quarantined: Vec::new(),
        workspaces: Vec::new(),
    };
    for part in partials {
        for (i, s) in part.scored {
            out.scores[i] = Some(s);
        }
        out.quarantined.extend(part.quarantined);
        out.workspaces.extend(part.workspaces);
    }
    out.quarantined.sort_by_key(|&(i, _)| i);
    out
}

/// Scores every subject with `score_fn` using `threads` worker
/// threads, returning per-subject scores in subject order (independent
/// of the thread count).
///
/// `score_fn` is called once per subject index and must be pure.
/// Work is claimed in chunks chosen automatically; use
/// [`par_scores_chunked`] to pin the chunk size.
///
/// # Panics
///
/// Panics if `threads` is 0, or propagates a panic from `score_fn`.
pub fn par_scores<F>(subject_count: usize, threads: usize, score_fn: F) -> Vec<i32>
where
    F: Fn(usize) -> i32 + Sync,
{
    let chunk = auto_chunk(subject_count, threads.max(1));
    par_scores_chunked(subject_count, threads, chunk, score_fn)
}

/// [`par_scores`] with an explicit claim-chunk size: each worker grabs
/// `chunk` consecutive subjects per `fetch_add` on the shared cursor.
///
/// # Panics
///
/// Panics if `threads` or `chunk` is 0, or propagates a panic from
/// `score_fn`.
pub fn par_scores_chunked<F>(
    subject_count: usize,
    threads: usize,
    chunk: usize,
    score_fn: F,
) -> Vec<i32>
where
    F: Fn(usize) -> i32 + Sync,
{
    let out = chunked_scores(
        subject_count,
        threads,
        chunk,
        None,
        || (),
        |_, i| score_fn(i),
    );
    // This raw layer documents panic propagation; quarantine is the
    // engine layer's contract.
    if let Some((i, cause)) = out.quarantined.first() {
        panic!("score_fn panicked on subject {i}: {cause}");
    }
    out.scores
        .into_iter()
        .map(|s| s.expect("no deadline: every subject scored"))
        .collect()
}

/// Parallel ranked search: scores every subject with `score_fn` on
/// `threads` threads and returns the best `keep` hits with scores of at
/// least `min_score`.
///
/// # Panics
///
/// Panics if `threads` or `keep` is 0.
pub fn par_search<F>(
    subject_count: usize,
    threads: usize,
    keep: usize,
    min_score: i32,
    score_fn: F,
) -> SearchResults
where
    F: Fn(usize) -> i32 + Sync,
{
    let scores = par_scores(subject_count, threads, score_fn);
    collect_hits(scores, keep, min_score)
}

fn collect_hits(scores: Vec<i32>, keep: usize, min_score: i32) -> SearchResults {
    let mut results = TopK::new(keep);
    for (seq_index, score) in scores.into_iter().enumerate() {
        if score >= min_score {
            results.push(Hit { seq_index, score });
        }
    }
    results.finish()
}

/// Sentinel stored in an [`engine_scores`] slot whose subject was
/// quarantined (its engine call panicked). The matching index/cause
/// pair is in [`RunStats::quarantined`].
pub const QUARANTINED_SCORE: i32 = i32::MIN;

/// Scores every subject through `engine` on `threads` worker threads.
///
/// This is the database-search hot path for every backend: workers
/// claim subjects in chunks and keep one reusable
/// [`AlignmentEngine::Workspace`] each (no per-subject allocation for
/// engines whose buffers depend only on the query). Scores come back in
/// subject order regardless of thread count; per-worker counters (e.g.
/// the striped engine's byte-overflow rescores) are summed into the
/// returned [`RunStats`].
///
/// A subject whose engine call panics does not abort the batch: its
/// slot holds [`QUARANTINED_SCORE`] and [`RunStats::quarantined`]
/// records the index and cause. All surviving scores are bit-identical
/// to a run without the faulting subjects.
///
/// # Panics
///
/// Panics if `threads` is 0.
pub fn engine_scores<E: AlignmentEngine>(
    engine: &E,
    subjects: &[&[AminoAcid]],
    threads: usize,
) -> (Vec<i32>, RunStats) {
    let chunk = auto_chunk(subjects.len(), threads.max(1));
    let out = chunked_scores(
        subjects.len(),
        threads,
        chunk,
        None,
        || engine.workspace(),
        |ws, i| engine.score_one(ws, subjects[i]),
    );
    let rescored = out.workspaces.iter().map(|ws| engine.rescored(ws)).sum();
    let stats = RunStats {
        subjects: subjects.len(),
        rescored,
        threads,
        quarantined: quarantine_report(out.quarantined),
        pruned: 0,
    };
    let scores = out
        .scores
        .into_iter()
        .map(|s| s.unwrap_or(QUARANTINED_SCORE))
        .collect();
    (scores, stats)
}

fn quarantine_report(pairs: Vec<(usize, String)>) -> Vec<Quarantined> {
    pairs
        .into_iter()
        .map(|(index, cause)| Quarantined { index, cause })
        .collect()
}

/// Ranked parallel search through any [`AlignmentEngine`]: the best
/// `keep` hits with scores of at least `min_score`, plus scan
/// statistics.
///
/// Hit ordering is deterministic and thread-count independent:
/// descending score, ties broken by ascending subject index.
/// Quarantined subjects (see [`engine_scores`]) never appear among the
/// hits.
///
/// # Panics
///
/// Panics if `threads` or `keep` is 0.
pub fn engine_search<E: AlignmentEngine>(
    engine: &E,
    subjects: &[&[AminoAcid]],
    threads: usize,
    keep: usize,
    min_score: i32,
) -> (SearchResults, RunStats) {
    let scan = engine_search_bounded(engine, subjects, threads, keep, min_score, None);
    (scan.results, scan.stats)
}

/// The outcome of a (possibly deadline-bounded) ranked scan.
#[derive(Debug, Clone)]
pub struct BoundedScan {
    /// Ranked hits over the subjects actually scored.
    pub results: SearchResults,
    /// Scan statistics; `stats.subjects` counts subjects *attempted*
    /// (scored or quarantined), not the database size.
    pub stats: RunStats,
    /// Whether every subject in the database was attempted.
    pub completed: bool,
    /// Which deadline kind cut the scan short — `Some` exactly when
    /// `completed` is `false`.
    pub truncated_by: Option<DeadlineKind>,
}

/// [`engine_search`] with graceful degradation under a [`Deadline`].
///
/// * `Deadline::Cells(budget)` — deterministic: the admitted subject
///   prefix is resolved serially up front (cumulative
///   [`AlignmentEngine::cost`] ≤ budget), so hits, coverage and the
///   `completed` flag are identical at any thread count.
/// * `Deadline::Wall(d)` — best-effort: workers stop claiming work once
///   the cutoff passes, but a subject claimed just before it still runs
///   to completion, so the scan may overshoot `d` by one subject's
///   scoring time. Coverage then depends on scheduling — two identical
///   requests may cover different prefixes — so only use this when
///   latency matters more than reproducibility.
///
/// Ranked hits cover exactly the attempted, non-quarantined subjects,
/// and [`BoundedScan::truncated_by`] reports which deadline kind (if
/// any) cut the scan short.
///
/// # Panics
///
/// Panics if `threads` or `keep` is 0.
pub fn engine_search_bounded<E: AlignmentEngine>(
    engine: &E,
    subjects: &[&[AminoAcid]],
    threads: usize,
    keep: usize,
    min_score: i32,
    deadline: Option<Deadline>,
) -> BoundedScan {
    let (admitted, wall) = match deadline {
        None => (subjects.len(), None),
        Some(Deadline::Cells(budget)) => {
            let mut spent = 0u64;
            let mut k = 0;
            for s in subjects {
                spent = spent.saturating_add(engine.cost(s));
                if spent > budget {
                    break;
                }
                k += 1;
            }
            (k, None)
        }
        Some(Deadline::Wall(d)) => (subjects.len(), Some(Instant::now() + d)),
    };

    let chunk = auto_chunk(admitted, threads.max(1));
    let out = chunked_scores(
        admitted,
        threads,
        chunk,
        wall,
        || engine.workspace(),
        |ws, i| engine.score_one(ws, subjects[i]),
    );

    let mut results = TopK::new(keep);
    let mut scored = 0usize;
    for (seq_index, slot) in out.scores.iter().enumerate() {
        if let Some(score) = *slot {
            scored += 1;
            if score >= min_score {
                results.push(Hit { seq_index, score });
            }
        }
    }
    let attempted = scored + out.quarantined.len();
    let stats = RunStats {
        subjects: attempted,
        rescored: out.workspaces.iter().map(|ws| engine.rescored(ws)).sum(),
        threads,
        quarantined: quarantine_report(out.quarantined),
        pruned: 0,
    };
    let completed = attempted == subjects.len();
    let truncated_by = match deadline {
        _ if completed => None,
        Some(Deadline::Cells(_)) => Some(DeadlineKind::Cells),
        Some(Deadline::Wall(_)) => Some(DeadlineKind::Wall),
        // Unreachable: without a deadline every subject is attempted.
        None => None,
    };
    BoundedScan {
        results: results.finish(),
        stats,
        completed,
        truncated_by,
    }
}

/// Reconstructs full alignments for a batch of ranked hits in
/// parallel, one [`traceback::align_hit`] call per hit.
///
/// Hits are few (top-k) but individually heavy (three extra passes per
/// hit), so workers claim one hit at a time. One query profile is built
/// and shared; each worker keeps a reusable striped workspace. A hit
/// whose traceback panics yields `None` in its slot (mirroring the
/// scan-side quarantine policy) and the worker's workspace is
/// discarded. The output is indexed like `hits` — deterministic and
/// thread-count independent.
///
/// # Panics
///
/// Panics if `threads` is 0 or a hit's `seq_index` is out of bounds
/// for `subjects`.
pub fn align_hits<const L: usize>(
    query: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    subjects: &[&[AminoAcid]],
    hits: &[Hit],
    threads: usize,
) -> Vec<Option<Alignment>> {
    assert!(threads > 0, "align_hits requires at least one thread");
    if hits.is_empty() {
        return Vec::new();
    }
    let profile = QueryProfile::build(query, matrix, L);
    let n = hits.len();
    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);

    let mut partials: Vec<Vec<(usize, Option<Alignment>)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let profile = &profile;
            handles.push(scope.spawn(move || {
                let mut ws = Workspace::<L>::new();
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let hit = hits[i];
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        traceback::align_hit::<L>(
                            query,
                            matrix,
                            gaps,
                            profile,
                            subjects[hit.seq_index],
                            hit.score,
                            &mut ws,
                        )
                    }));
                    match outcome {
                        Ok(alignment) => local.push((i, alignment)),
                        Err(_) => {
                            ws = Workspace::new();
                            local.push((i, None));
                        }
                    }
                }
                local
            }));
        }
        for handle in handles {
            partials.push(handle.join().expect("traceback worker panicked"));
        }
    });

    let mut out = vec![None; n];
    for partial in partials {
        for (i, alignment) in partial {
            out[i] = alignment;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StripedEngine;
    use crate::sw;
    use sapa_bioseq::db::DatabaseBuilder;
    use sapa_bioseq::matrix::GapPenalties;
    use sapa_bioseq::profile::QueryProfile;
    use sapa_bioseq::queries::QuerySet;
    use sapa_bioseq::SubstitutionMatrix;

    #[test]
    fn scores_are_deterministic_across_thread_counts() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(3)
            .sequences(30)
            .median_length(80.0)
            .homolog_template(query.clone())
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();

        let run = |threads: usize| {
            par_scores(db.len(), threads, |i| {
                sw::score(query.residues(), db.sequences()[i].residues(), &m, g)
            })
        };
        let one = run(1);
        let four = run(4);
        let nine = run(9);
        assert_eq!(one, four);
        assert_eq!(one, nine);
        // And they equal the serial computation.
        for (i, s) in db.iter().enumerate() {
            assert_eq!(one[i], sw::score(query.residues(), s.residues(), &m, g));
        }
    }

    #[test]
    fn align_hits_replays_and_is_thread_count_invariant() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(11)
            .sequences(24)
            .median_length(90.0)
            .homolog_template(query.clone())
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();

        // Rank hits with the scalar oracle, then trace them back.
        let hits: Vec<Hit> = slices
            .iter()
            .enumerate()
            .map(|(seq_index, s)| Hit {
                seq_index,
                score: sw::score(query.residues(), s, &m, g),
            })
            .filter(|h| h.score > 0)
            .collect();
        assert!(!hits.is_empty());

        let one = align_hits::<8>(query.residues(), &m, g, &slices, &hits, 1);
        let four = align_hits::<8>(query.residues(), &m, g, &slices, &hits, 4);
        assert_eq!(one, four);
        assert_eq!(one.len(), hits.len());
        for (hit, al) in hits.iter().zip(&one) {
            let al = al.as_ref().expect("positive-score hit must align");
            assert_eq!(
                al.replay_score(query.residues(), slices[hit.seq_index], &m, g),
                Some(hit.score),
                "subject {}",
                hit.seq_index
            );
        }
    }

    #[test]
    fn chunked_claiming_is_thread_count_invariant() {
        // The satellite regression: chunked claiming must return
        // identical results for threads ∈ {1, 2, 8}, at several chunk
        // sizes including ones that don't divide the subject count.
        let n = 103;
        let expect: Vec<i32> = (0..n).map(|i| (i * i % 97) as i32).collect();
        for chunk in [1usize, 3, 16, 64, 200] {
            for threads in [1usize, 2, 8] {
                let got = par_scores_chunked(n, threads, chunk, |i| (i * i % 97) as i32);
                assert_eq!(got, expect, "chunk {chunk} threads {threads}");
            }
        }
    }

    #[test]
    fn ranked_search_matches_serial_filtering() {
        let scores = [5, 40, 12, 40, 3, 99];
        let r = par_search(scores.len(), 3, 4, 10, |i| scores[i]);
        let hits = r.hits();
        assert_eq!(hits[0].score, 99);
        assert_eq!(hits[1].score, 40);
        assert_eq!(hits[1].seq_index, 1); // tie broken by index
        assert_eq!(hits[2].seq_index, 3);
        assert_eq!(hits[3].score, 12);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn empty_database_is_fine() {
        assert!(par_scores(0, 4, |_| 0).is_empty());
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let engine = StripedEngine::<16, 8>::from_query(&[], &m, g);
        let (scores, stats) = engine_scores(&engine, &[], 4);
        assert!(scores.is_empty());
        assert_eq!(stats.subjects, 0);
        assert_eq!(stats.rescored, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = par_scores(3, 0, |_| 0);
    }

    #[test]
    #[should_panic(expected = "positive chunk")]
    fn zero_chunk_rejected() {
        let _ = par_scores_chunked(3, 1, 0, |_| 0);
    }

    #[test]
    fn more_threads_than_subjects_is_fine() {
        let v = par_scores(2, 16, |i| i as i32);
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn striped_engine_scores_match_scalar_oracle() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(11)
            .sequences(40)
            .median_length(90.0)
            .homolog_template(query.clone())
            .homolog_fraction(0.2) // high-identity subjects overflow u8
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();

        let engine = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);
        let (scores, stats) = engine_scores(&engine, &slices, 4);
        assert_eq!(stats.subjects, db.len());
        for (i, s) in db.iter().enumerate() {
            assert_eq!(
                scores[i],
                sw::score(query.residues(), s.residues(), &m, g),
                "subject {i}"
            );
        }
    }

    #[test]
    fn striped_engine_is_thread_count_invariant() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(5)
            .sequences(25)
            .median_length(70.0)
            .homolog_template(query.clone())
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let engine = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);

        let (one, s1) = engine_scores(&engine, &slices, 1);
        let (two, s2) = engine_scores(&engine, &slices, 2);
        let (eight, s8) = engine_scores(&engine, &slices, 8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
        // The rescore count is a property of the data, not the threads.
        assert_eq!(s1.rescored, s2.rescored);
        assert_eq!(s1.rescored, s8.rescored);
    }

    #[test]
    fn striped_search_finds_planted_homolog_and_counts_rescores() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(9)
            .sequences(50)
            .median_length(100.0)
            .homolog_template(query.clone())
            .homolog_fraction(0.1)
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();

        // A self-match subject guarantees at least one byte overflow.
        let mut with_self = slices.clone();
        with_self.push(query.residues());

        let engine = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);
        let (results, stats) = engine_search(&engine, &with_self, 4, 10, 50);
        assert!(
            stats.rescored >= 1,
            "self-match must overflow the byte pass"
        );
        let best = results.hits()[0];
        assert_eq!(
            best.seq_index,
            with_self.len() - 1,
            "self-match ranks first"
        );
        assert_eq!(
            best.score,
            sw::score(query.residues(), query.residues(), &m, g)
        );
    }

    #[test]
    fn both_register_widths_agree() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(13)
            .sequences(20)
            .homolog_template(query.clone())
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();

        let e128 = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);
        let e256 = StripedEngine::<32, 16>::from_query(query.residues(), &m, g);
        let (a, _) = engine_scores(&e128, &slices, 3);
        let (b, _) = engine_scores(&e256, &slices, 3);
        assert_eq!(a, b);
    }

    /// Panics on any subject whose length is a multiple of `stride`;
    /// otherwise scores the subject's length. The workspace counts
    /// successful scores so counter-harvesting survives quarantine.
    struct FlakyEngine {
        stride: usize,
    }

    impl AlignmentEngine for FlakyEngine {
        type Workspace = usize;

        fn name(&self) -> &'static str {
            "flaky"
        }

        fn workspace(&self) -> usize {
            0
        }

        fn score_one(&self, ws: &mut usize, subject: &[sapa_bioseq::AminoAcid]) -> i32 {
            assert!(
                !subject.len().is_multiple_of(self.stride),
                "injected fault: subject len {}",
                subject.len()
            );
            *ws += 1;
            subject.len() as i32
        }

        fn rescored(&self, ws: &usize) -> usize {
            *ws
        }
    }

    fn subjects_of_lengths(lens: &[usize]) -> Vec<Vec<sapa_bioseq::AminoAcid>> {
        let aa = sapa_bioseq::AminoAcid::ALL[0];
        lens.iter().map(|&n| vec![aa; n]).collect()
    }

    #[test]
    fn panicking_subjects_are_quarantined_not_fatal() {
        let owned = subjects_of_lengths(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = owned.iter().map(|s| &s[..]).collect();
        let engine = FlakyEngine { stride: 4 };

        let (scores, stats) = engine_scores(&engine, &slices, 2);
        assert_eq!(stats.subjects, slices.len());
        // Lengths 4, 8, 12 (indices 3, 7, 11) fault.
        let faulted: Vec<usize> = stats.quarantined.iter().map(|q| q.index).collect();
        assert_eq!(faulted, vec![3, 7, 11]);
        for q in &stats.quarantined {
            assert!(q.cause.contains("injected fault"), "cause: {}", q.cause);
        }
        for (i, &s) in scores.iter().enumerate() {
            if faulted.contains(&i) {
                assert_eq!(s, QUARANTINED_SCORE);
            } else {
                assert_eq!(s, slices[i].len() as i32);
            }
        }
        // Successful-score counters survive workspace replacement.
        assert_eq!(stats.rescored, slices.len() - faulted.len());
    }

    #[test]
    fn quarantine_reports_are_thread_count_invariant() {
        let lens: Vec<usize> = (1..=60).collect();
        let owned = subjects_of_lengths(&lens);
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = owned.iter().map(|s| &s[..]).collect();
        let engine = FlakyEngine { stride: 7 };

        let (scores1, mut stats1) = engine_scores(&engine, &slices, 1);
        for threads in [2, 4] {
            let (scores, mut stats) = engine_scores(&engine, &slices, threads);
            assert_eq!(scores, scores1, "threads={threads}");
            stats.threads = 0;
            stats1.threads = 0;
            assert_eq!(stats, stats1, "threads={threads}");
        }
    }

    #[test]
    fn quarantined_subjects_never_rank() {
        let owned = subjects_of_lengths(&[5, 10, 15]);
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = owned.iter().map(|s| &s[..]).collect();
        let engine = FlakyEngine { stride: 10 };
        // min_score of i32::MIN would admit the sentinel if the filter
        // relied on score comparison alone.
        let (results, stats) = engine_search(&engine, &slices, 2, 3, i32::MIN);
        assert_eq!(stats.quarantined.len(), 1);
        assert_eq!(stats.quarantined[0].index, 1);
        let ranked: Vec<usize> = results.hits().iter().map(|h| h.seq_index).collect();
        assert_eq!(ranked, vec![2, 0]);
    }

    #[test]
    fn cell_budget_prefix_is_serial_and_exact() {
        let owned = subjects_of_lengths(&[10, 20, 30, 40]);
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = owned.iter().map(|s| &s[..]).collect();
        let engine = FlakyEngine { stride: usize::MAX };
        // Default engine cost = subject length: 10+20+30 = 60 fits, 100 doesn't.
        let scan = engine_search_bounded(&engine, &slices, 2, 10, 0, Some(Deadline::Cells(60)));
        assert!(!scan.completed);
        assert_eq!(scan.stats.subjects, 3);
        assert_eq!(scan.results.hits().len(), 3);
        // Exactly at the total admits everything.
        let scan = engine_search_bounded(&engine, &slices, 2, 10, 0, Some(Deadline::Cells(100)));
        assert!(scan.completed);
        assert_eq!(scan.stats.subjects, 4);
    }

    #[test]
    fn cached_profile_is_shared_not_rebuilt() {
        // `with_profile` must accept an externally cached Arc profile.
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let profile = QueryProfile::build_shared(query.residues(), &m, 8);
        let db = DatabaseBuilder::new()
            .seed(17)
            .sequences(12)
            .homolog_template(query.clone())
            .build();
        let slices: Vec<&[sapa_bioseq::AminoAcid]> = db.iter().map(|s| s.residues()).collect();

        let cached = StripedEngine::<16, 8>::with_profile(profile.clone(), g);
        let fresh = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);
        assert_eq!(
            engine_scores(&cached, &slices, 2).0,
            engine_scores(&fresh, &slices, 2).0
        );
        // The engine holds the same allocation the cache handed out.
        assert_eq!(std::sync::Arc::strong_count(&profile), 2);
    }
}
