/root/repo/target/debug/deps/sapa_core-7335d864b2e4e451.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_core-7335d864b2e4e451.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
