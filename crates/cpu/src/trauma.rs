//! Trauma (stall-reason) taxonomy.
//!
//! Turandot records, for every operation that fails to make forward
//! progress, a *trauma* — the reason for the stall (Moreno et al.,
//! IBM RC 20962). The paper groups them into 56 classes; its Figure 2
//! plots the cycles charged to each class, and Table VII describes the
//! important ones. This module defines every class that appears on the
//! Figure 2 x-axis, in the same order, so the reproduction's histograms
//! line up column-for-column with the paper's.

/// One stall-reason class.
///
/// Naming follows the paper's Figure 2 x-axis labels. Prefixes:
/// `St` store-related, `Rg` register-dependency (waiting on a result
/// from the named unit), `Mm` memory subsystem, `Ful` all functional
/// units of a class busy, `Diq` dispatch blocked on a full issue queue,
/// `If` instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variants are documented collectively above
pub enum Trauma {
    StData = 0,
    RgVfpu,
    RgVcmplx,
    RgVper,
    RgVi,
    RgCmplx,
    RgLog,
    RgBr,
    RgMem,
    RgFpu,
    RgFix,
    MmDl1,
    MmDl2,
    MmTlb2,
    MmTlb1,
    MmStnd,
    MmDcqf,
    MmDmqf,
    MmRoqf,
    MmStqc,
    MmStqf,
    FulVfpu,
    FulVcmplx,
    FulVper,
    FulVi,
    FulCmplx,
    FulLog,
    FulBr,
    FulMem,
    FulFpu,
    FulFix,
    DiqVfpu,
    DiqVcmplx,
    DiqVper,
    DiqVi,
    DiqCmplx,
    DiqLog,
    DiqBr,
    DiqMem,
    DiqFpu,
    DiqFix,
    Rename,
    Decode,
    IfLdst,
    IfBrch,
    IfFlit,
    IfFull,
    IfPred,
    IfPref,
    IfL1,
    IfL15,
    IfL2,
    IfTlb2,
    IfTlb1,
    IfNfa,
    Other,
}

impl Trauma {
    /// Number of trauma classes.
    pub const COUNT: usize = 56;

    /// All classes in Figure 2 x-axis order.
    pub const ALL: [Trauma; Self::COUNT] = [
        Trauma::StData,
        Trauma::RgVfpu,
        Trauma::RgVcmplx,
        Trauma::RgVper,
        Trauma::RgVi,
        Trauma::RgCmplx,
        Trauma::RgLog,
        Trauma::RgBr,
        Trauma::RgMem,
        Trauma::RgFpu,
        Trauma::RgFix,
        Trauma::MmDl1,
        Trauma::MmDl2,
        Trauma::MmTlb2,
        Trauma::MmTlb1,
        Trauma::MmStnd,
        Trauma::MmDcqf,
        Trauma::MmDmqf,
        Trauma::MmRoqf,
        Trauma::MmStqc,
        Trauma::MmStqf,
        Trauma::FulVfpu,
        Trauma::FulVcmplx,
        Trauma::FulVper,
        Trauma::FulVi,
        Trauma::FulCmplx,
        Trauma::FulLog,
        Trauma::FulBr,
        Trauma::FulMem,
        Trauma::FulFpu,
        Trauma::FulFix,
        Trauma::DiqVfpu,
        Trauma::DiqVcmplx,
        Trauma::DiqVper,
        Trauma::DiqVi,
        Trauma::DiqCmplx,
        Trauma::DiqLog,
        Trauma::DiqBr,
        Trauma::DiqMem,
        Trauma::DiqFpu,
        Trauma::DiqFix,
        Trauma::Rename,
        Trauma::Decode,
        Trauma::IfLdst,
        Trauma::IfBrch,
        Trauma::IfFlit,
        Trauma::IfFull,
        Trauma::IfPred,
        Trauma::IfPref,
        Trauma::IfL1,
        Trauma::IfL15,
        Trauma::IfL2,
        Trauma::IfTlb2,
        Trauma::IfTlb1,
        Trauma::IfNfa,
        Trauma::Other,
    ];

    /// Stable index (Figure 2 x-axis position).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The Figure 2 x-axis label.
    pub const fn label(self) -> &'static str {
        match self {
            Trauma::StData => "st_data",
            Trauma::RgVfpu => "rg_vfpu",
            Trauma::RgVcmplx => "rg_vcmplx",
            Trauma::RgVper => "rg_vper",
            Trauma::RgVi => "rg_vi",
            Trauma::RgCmplx => "rg_cmplx",
            Trauma::RgLog => "rg_log",
            Trauma::RgBr => "rg_br",
            Trauma::RgMem => "rg_mem",
            Trauma::RgFpu => "rg_fpu",
            Trauma::RgFix => "rg_fix",
            Trauma::MmDl1 => "mm_dl1",
            Trauma::MmDl2 => "mm_dl2",
            Trauma::MmTlb2 => "mm_tlb2",
            Trauma::MmTlb1 => "mm_tlb1",
            Trauma::MmStnd => "mm_stnd",
            Trauma::MmDcqf => "mm_dcqf",
            Trauma::MmDmqf => "mm_dmqf",
            Trauma::MmRoqf => "mm_roqf",
            Trauma::MmStqc => "mm_stqc",
            Trauma::MmStqf => "mm_stqf",
            Trauma::FulVfpu => "ful_vfpu",
            Trauma::FulVcmplx => "ful_vcmplx",
            Trauma::FulVper => "ful_vper",
            Trauma::FulVi => "ful_vi",
            Trauma::FulCmplx => "ful_cmplx",
            Trauma::FulLog => "ful_log",
            Trauma::FulBr => "ful_br",
            Trauma::FulMem => "ful_mem",
            Trauma::FulFpu => "ful_fpu",
            Trauma::FulFix => "ful_fix",
            Trauma::DiqVfpu => "diq_vfpu",
            Trauma::DiqVcmplx => "diq_vcmplx",
            Trauma::DiqVper => "diq_vper",
            Trauma::DiqVi => "diq_vi",
            Trauma::DiqCmplx => "diq_cmplx",
            Trauma::DiqLog => "diq_log",
            Trauma::DiqBr => "diq_br",
            Trauma::DiqMem => "diq_mem",
            Trauma::DiqFpu => "diq_fpu",
            Trauma::DiqFix => "diq_fix",
            Trauma::Rename => "rename",
            Trauma::Decode => "decode",
            Trauma::IfLdst => "if_ldst",
            Trauma::IfBrch => "if_brch",
            Trauma::IfFlit => "if_flit",
            Trauma::IfFull => "if_full",
            Trauma::IfPred => "if_pred",
            Trauma::IfPref => "if_pref",
            Trauma::IfL1 => "if_l1",
            Trauma::IfL15 => "if_l15",
            Trauma::IfL2 => "if_l2",
            Trauma::IfTlb2 => "if_tlb2",
            Trauma::IfTlb1 => "if_tlb1",
            Trauma::IfNfa => "if_nfa",
            Trauma::Other => "other",
        }
    }

    /// Table VII's one-line description for the classes the paper calls
    /// out as important (empty for the rest).
    pub const fn description(self) -> &'static str {
        match self {
            Trauma::IfNfa => "Next Fetch Address miss-prediction",
            Trauma::IfPred => "Branch miss-prediction",
            Trauma::IfFull => "Instruction buffer full",
            Trauma::FulMem => "Too many memory instructions ready",
            Trauma::MmDl2 => "L2 cache data miss",
            Trauma::MmDl1 => "L1 D-cache miss",
            Trauma::RgFix => "Result dependency on INT units",
            Trauma::RgMem => "Result dependency on MEM units",
            Trauma::RgVi => "Result dependency on SIMD-int units",
            Trauma::RgVper => "Result dependency on SIMD-perm units",
            Trauma::Other => "Miscellaneous reasons",
            _ => "",
        }
    }
}

impl std::fmt::Display for Trauma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycle counts per trauma class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraumaCounts {
    cycles: [u64; Trauma::COUNT],
}

impl TraumaCounts {
    /// An all-zero histogram.
    pub fn new() -> Self {
        TraumaCounts {
            cycles: [0; Trauma::COUNT],
        }
    }

    /// Charges `n` cycles to `trauma`.
    #[inline]
    pub fn charge(&mut self, trauma: Trauma, n: u64) {
        self.cycles[trauma.index()] += n;
    }

    /// Cycles charged to `trauma`.
    pub fn get(&self, trauma: Trauma) -> u64 {
        self.cycles[trauma.index()]
    }

    /// Total stall cycles across all classes.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(trauma, cycles)` rows in Figure 2 order.
    pub fn rows(&self) -> impl Iterator<Item = (Trauma, u64)> + '_ {
        Trauma::ALL.iter().map(move |&t| (t, self.get(t)))
    }

    /// The `k` classes with the most charged cycles (descending).
    pub fn top(&self, k: usize) -> Vec<(Trauma, u64)> {
        let mut rows: Vec<(Trauma, u64)> = self.rows().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        rows.truncate(k);
        rows
    }
}

impl Default for TraumaCounts {
    fn default() -> Self {
        TraumaCounts::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_count_entries_in_order() {
        assert_eq!(Trauma::ALL.len(), Trauma::COUNT);
        for (i, t) in Trauma::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Trauma::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Trauma::COUNT);
    }

    #[test]
    fn table_vii_descriptions_present() {
        assert!(!Trauma::MmDl1.description().is_empty());
        assert!(!Trauma::RgVper.description().is_empty());
        assert!(Trauma::DiqFix.description().is_empty());
    }

    #[test]
    fn counts_accumulate() {
        let mut c = TraumaCounts::new();
        c.charge(Trauma::RgFix, 5);
        c.charge(Trauma::RgFix, 2);
        c.charge(Trauma::MmDl2, 1);
        assert_eq!(c.get(Trauma::RgFix), 7);
        assert_eq!(c.total(), 8);
        let top = c.top(1);
        assert_eq!(top, vec![(Trauma::RgFix, 7)]);
    }
}
