/root/repo/target/debug/deps/sapa_bioseq-477e75a90d3fcf95.d: crates/bioseq/src/lib.rs crates/bioseq/src/alphabet.rs crates/bioseq/src/compose.rs crates/bioseq/src/db.rs crates/bioseq/src/dna.rs crates/bioseq/src/fasta.rs crates/bioseq/src/matrix.rs crates/bioseq/src/profile.rs crates/bioseq/src/queries.rs crates/bioseq/src/rng.rs crates/bioseq/src/seq.rs

/root/repo/target/debug/deps/sapa_bioseq-477e75a90d3fcf95: crates/bioseq/src/lib.rs crates/bioseq/src/alphabet.rs crates/bioseq/src/compose.rs crates/bioseq/src/db.rs crates/bioseq/src/dna.rs crates/bioseq/src/fasta.rs crates/bioseq/src/matrix.rs crates/bioseq/src/profile.rs crates/bioseq/src/queries.rs crates/bioseq/src/rng.rs crates/bioseq/src/seq.rs

crates/bioseq/src/lib.rs:
crates/bioseq/src/alphabet.rs:
crates/bioseq/src/compose.rs:
crates/bioseq/src/db.rs:
crates/bioseq/src/dna.rs:
crates/bioseq/src/fasta.rs:
crates/bioseq/src/matrix.rs:
crates/bioseq/src/profile.rs:
crates/bioseq/src/queries.rs:
crates/bioseq/src/rng.rs:
crates/bioseq/src/seq.rs:
