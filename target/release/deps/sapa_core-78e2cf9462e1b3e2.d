/root/repo/target/release/deps/sapa_core-78e2cf9462e1b3e2.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libsapa_core-78e2cf9462e1b3e2.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libsapa_core-78e2cf9462e1b3e2.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
