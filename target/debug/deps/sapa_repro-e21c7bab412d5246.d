/root/repo/target/debug/deps/sapa_repro-e21c7bab412d5246.d: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ext_blastn.rs crates/repro/src/experiments/ext_prefetch.rs crates/repro/src/experiments/ext_queries.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig10.rs crates/repro/src/experiments/fig11.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig34.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/fig9.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs crates/repro/src/experiments/table7.rs crates/repro/src/experiments/tables456.rs crates/repro/src/format.rs crates/repro/src/sweep.rs

/root/repo/target/debug/deps/sapa_repro-e21c7bab412d5246: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ext_blastn.rs crates/repro/src/experiments/ext_prefetch.rs crates/repro/src/experiments/ext_queries.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig10.rs crates/repro/src/experiments/fig11.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig34.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/fig9.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs crates/repro/src/experiments/table7.rs crates/repro/src/experiments/tables456.rs crates/repro/src/format.rs crates/repro/src/sweep.rs

crates/repro/src/lib.rs:
crates/repro/src/context.rs:
crates/repro/src/experiments/mod.rs:
crates/repro/src/experiments/ext_blastn.rs:
crates/repro/src/experiments/ext_prefetch.rs:
crates/repro/src/experiments/ext_queries.rs:
crates/repro/src/experiments/fig1.rs:
crates/repro/src/experiments/fig10.rs:
crates/repro/src/experiments/fig11.rs:
crates/repro/src/experiments/fig2.rs:
crates/repro/src/experiments/fig34.rs:
crates/repro/src/experiments/fig5.rs:
crates/repro/src/experiments/fig6.rs:
crates/repro/src/experiments/fig7.rs:
crates/repro/src/experiments/fig8.rs:
crates/repro/src/experiments/fig9.rs:
crates/repro/src/experiments/table1.rs:
crates/repro/src/experiments/table2.rs:
crates/repro/src/experiments/table3.rs:
crates/repro/src/experiments/table7.rs:
crates/repro/src/experiments/tables456.rs:
crates/repro/src/format.rs:
crates/repro/src/sweep.rs:
