//! `BLASTN` (extension workload): the traced nucleotide word search
//! over a 2-bit packed database.
//!
//! The paper's Listing 1 is this code's hot loop — `BlastNtWordFinder`
//! walking a four-bases-per-byte database with `READDB_UNPACK_BASE`
//! macros. The characterization contrast with blastp is interesting
//! and falls out naturally here: the packed scan loads **one byte per
//! four positions** (so the load fraction drops and shift/mask `ialu`
//! work rises), the word table is an exact-match hash (no neighborhood
//! fan-out), and the byte-cascade extension is pure compare-and-branch.
//! The paper's future-work section calls for characterizing more
//! applications; this module is that extension, runnable through
//! `repro ext_blastn`.

use sapa_align::blastn::{match_left_in_byte, BlastnParams, NtWordIndex};
use sapa_align::result::{Hit, TopK};
use sapa_bioseq::dna::{DnaSequence, PackedDna};
use sapa_isa::mem::AddressSpace;
use sapa_isa::reg::{self, Reg};
use sapa_isa::trace::{Trace, Tracer};

/// Result of a traced BLASTN run.
#[derive(Debug, Clone)]
pub struct BlastnRun {
    /// The instruction trace of the whole search.
    pub trace: Trace,
    /// Best score per subject (0 when below the report threshold).
    pub scores: Vec<i32>,
    /// Ranked hit list.
    pub hits: Vec<Hit>,
}

mod site {
    pub const LD_BYTE: u32 = 0; // one packed byte, four positions
    pub const UNPACK1: u32 = 1; // shift/mask per base
    pub const UNPACK2: u32 = 2;
    pub const WORD_SHIFT: u32 = 3;
    pub const WORD_MASK: u32 = 4;
    pub const HASH: u32 = 5;
    pub const LD_BUCKET: u32 = 6; // hash-table probe
    pub const CMP_EMPTY: u32 = 7;
    pub const B_EMPTY: u32 = 8;
    pub const LD_POS: u32 = 9;
    pub const DIAG: u32 = 10;
    pub const LD_EXTEND_P: u32 = 11; // packed byte in the extension
    pub const EXT_UNPACK: u32 = 12;
    pub const EXT_CMP: u32 = 13;
    pub const EXT_B: u32 = 14; // the Listing 1 cascade branch
    pub const EXT_ADD: u32 = 15;
    pub const B_XDROP: u32 = 16;
    pub const ST_BEST: u32 = 17;
    pub const INC: u32 = 18;
    pub const B_SCAN: u32 = 19;
    pub const TOP: u32 = 0;
}

const R_BYTE: Reg = reg::gpr(3);
const R_WORD: Reg = reg::gpr(4);
const R_HASH: Reg = reg::gpr(5);
const R_BUCKET: Reg = reg::gpr(6);
const R_POS: Reg = reg::gpr(7);
const R_DIAG: Reg = reg::gpr(8);
const R_CMP: Reg = reg::gpr(12);
const R_PTR: Reg = reg::gpr(13);
const R_Q: Reg = reg::gpr(14);
const R_SCORE: Reg = reg::gpr(15);

/// Runs the traced BLASTN search of `query` against packed `db`.
pub fn run(query: &DnaSequence, db: &[PackedDna], params: &BlastnParams, keep: usize) -> BlastnRun {
    let index = NtWordIndex::build(query, params.word_len);
    let w = params.word_len;
    let qbases = index.query();
    let m = qbases.len();

    let mut space = AddressSpace::new();
    let total_bytes: usize = db.iter().map(|s| s.bytes().len()).sum();
    let db_region = space
        .alloc("packed_db", total_bytes.max(1) as u64, 128)
        .expect("db fits");
    // The word hash table: open-addressed, 4x the distinct words.
    let table_slots = (index.distinct_words() * 4).next_power_of_two().max(64);
    let table_region = space
        .alloc("nt_word_table", 8 * table_slots as u64, 128)
        .expect("table fits");
    let query_region = space
        .alloc("query_bases", m.max(1) as u64, 128)
        .expect("query fits");

    let mut t = Tracer::with_capacity(1024);
    let mut scores = Vec::with_capacity(db.len());
    let mut results = TopK::new(keep.max(1));

    let mut subj_byte_base = 0u32;
    for (seq_index, subject) in db.iter().enumerate() {
        let n = subject.len();
        if n < w || m < w {
            scores.push(0);
            subj_byte_base += subject.bytes().len() as u32;
            continue;
        }
        let ndiag = m + n;
        let mut ext_end = vec![i32::MIN / 2; ndiag];
        let mut best_score = 0i32;

        let mask = if w >= 16 {
            u32::MAX
        } else {
            (1u32 << (2 * w)) - 1
        };
        let mut word = 0u32;
        for j in 0..n {
            // One byte load covers four scan positions (Listing 1's
            // packed walk); unpack shift/mask work happens every
            // position.
            if j % 4 == 0 {
                t.iload(
                    site::LD_BYTE,
                    R_BYTE,
                    db_region.addr(subj_byte_base + (j / 4) as u32),
                    1,
                    &[R_PTR],
                );
            }
            t.ialu(site::UNPACK1, R_WORD, &[R_BYTE, R_WORD]);
            t.ialu(site::UNPACK2, R_WORD, &[R_WORD]);
            t.ialu(site::WORD_SHIFT, R_WORD, &[R_WORD]);
            t.ialu(site::WORD_MASK, R_WORD, &[R_WORD]);

            word = ((word << 2) | subject.get(j).code() as u32) & mask;
            if j + 1 < w {
                continue;
            }
            let start = j + 1 - w;

            // Hash probe into the word table.
            t.ialu(site::HASH, R_HASH, &[R_WORD]);
            let slot = (word as usize * 0x9E37) % table_slots;
            t.iload(
                site::LD_BUCKET,
                R_BUCKET,
                table_region.addr(8 * slot as u32),
                8,
                &[R_HASH],
            );
            let bucket = index.lookup(word);
            t.ialu(site::CMP_EMPTY, R_CMP, &[R_BUCKET]);
            t.branch(site::B_EMPTY, bucket.is_empty(), site::TOP, &[R_CMP]);

            for &qi in bucket {
                let i = qi as usize;
                let diag = start + m - i;
                t.iload(
                    site::LD_POS,
                    R_POS,
                    table_region.addr((8 * slot as u32 + 4) % table_region.size()),
                    4,
                    &[R_BUCKET],
                );
                t.ialu(site::DIAG, R_DIAG, &[R_POS]);
                if (start as i32) <= ext_end[diag] {
                    continue;
                }
                let score = traced_extend(
                    &mut t,
                    &db_region,
                    subj_byte_base,
                    &query_region,
                    qbases,
                    subject,
                    params,
                    i,
                    start,
                );
                ext_end[diag] = (start + w) as i32;
                if score > best_score {
                    best_score = score;
                    t.istore(site::ST_BEST, query_region.addr(0), 4, &[R_SCORE]);
                }
            }
            t.ialu(site::INC, R_PTR, &[R_PTR]);
            t.branch(site::B_SCAN, j + 1 < n, site::TOP, &[R_PTR]);
        }

        scores.push(if best_score >= params.min_report_score {
            best_score
        } else {
            0
        });
        if best_score >= params.min_report_score {
            results.push(Hit {
                seq_index,
                score: best_score,
            });
        }
        subj_byte_base += subject.bytes().len() as u32;
    }

    let hits = results.finish().into_hits();
    BlastnRun {
        trace: t.finish(),
        scores,
        hits,
    }
}

/// The traced Listing 1 extension: byte loads + cascaded unpack
/// compares leftward, per-base unpack compares rightward, with the
/// real arithmetic delegated to [`sapa_align::blastn::ungapped_extend`].
#[allow(clippy::too_many_arguments)]
fn traced_extend(
    t: &mut Tracer,
    db_region: &sapa_isa::mem::Region,
    subj_byte_base: u32,
    query_region: &sapa_isa::mem::Region,
    qbases: &[sapa_bioseq::dna::Nucleotide],
    subject: &PackedDna,
    params: &BlastnParams,
    qi: usize,
    sj: usize,
) -> i32 {
    let w = params.word_len;

    // Rightwards: one byte load per four bases, unpack + compare each.
    {
        let (mut i, mut j) = (qi + w, sj + w);
        let mut score = (w as i32) * params.reward;
        let mut best = score;
        while i < qbases.len() && j < subject.len() {
            if j % 4 == 0 {
                t.iload(
                    site::LD_EXTEND_P,
                    R_BYTE,
                    db_region.addr(subj_byte_base + (j / 4) as u32),
                    1,
                    &[R_PTR],
                );
            }
            t.iload(
                site::LD_EXTEND_P,
                R_Q,
                query_region.addr(i as u32),
                1,
                &[R_PTR],
            );
            t.ialu(site::EXT_UNPACK, R_SCORE, &[R_BYTE]);
            t.ialu(site::EXT_CMP, R_CMP, &[R_SCORE, R_Q]);
            let matched = subject.get(j) == qbases[i];
            t.branch(site::EXT_B, matched, site::TOP, &[R_CMP]);
            t.ialu(site::EXT_ADD, R_SCORE, &[R_SCORE]);
            score += if matched {
                params.reward
            } else {
                params.penalty
            };
            if score > best {
                best = score;
            }
            let stop = best - score > params.xdrop;
            t.branch(site::B_XDROP, stop, site::TOP, &[R_SCORE]);
            if stop {
                break;
            }
            i += 1;
            j += 1;
        }
    }

    // Leftwards: the byte cascade — one load, up to four unpack
    // compares and the cascaded branches of Listing 1.
    {
        let (mut i, mut j) = (qi, sj);
        while i > 0 && j > 0 && j % 4 == 0 && i >= 4 && j >= 4 {
            let byte = subject.bytes()[j / 4 - 1];
            t.iload(
                site::LD_EXTEND_P,
                R_BYTE,
                db_region.addr(subj_byte_base + (j / 4 - 1) as u32),
                1,
                &[R_PTR],
            );
            let left = match_left_in_byte(byte, qbases, i);
            for k in 0..=left.min(3) {
                t.ialu(site::EXT_UNPACK, R_SCORE, &[R_BYTE]);
                t.ialu(site::EXT_CMP, R_CMP, &[R_SCORE]);
                t.branch(site::EXT_B, k < left, site::TOP, &[R_CMP]);
            }
            if left < 4 {
                break;
            }
            i -= 4;
            j -= 4;
        }
    }

    sapa_align::blastn::ungapped_extend(qbases, subject, params, qi, sj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_align::blastn as ref_blastn;
    use sapa_bioseq::dna::random_dna;
    use sapa_isa::OpClass;

    fn inputs() -> (DnaSequence, Vec<PackedDna>) {
        let q = random_dna("q", 80, 11);
        let mut with_hit = random_dna("s1", 400, 12).bases().to_vec();
        with_hit[100..180].copy_from_slice(q.bases());
        let db = vec![
            random_dna("s0", 400, 13).pack(),
            DnaSequence::new("s1", with_hit).pack(),
            random_dna("s2", 400, 14).pack(),
        ];
        (q, db)
    }

    #[test]
    fn hits_match_reference_blastn() {
        let (q, db) = inputs();
        let params = BlastnParams::default();
        let traced = run(&q, &db, &params, 10);
        let idx = ref_blastn::NtWordIndex::build(&q, params.word_len);
        let reference = ref_blastn::search(&idx, db.iter(), &params, 10);
        assert_eq!(traced.hits, reference.hits().to_vec());
        assert_eq!(traced.hits[0].seq_index, 1);
    }

    #[test]
    fn packed_scan_loads_less_computes_more_than_blastp() {
        // One byte per four positions: load fraction well below the
        // protein scanner's, ialu fraction higher.
        let (q, db) = inputs();
        let traced = run(&q, &db, &BlastnParams::default(), 10);
        let s = traced.trace.stats();
        let iload = s.fraction(OpClass::ILoad);
        let ialu = s.fraction(OpClass::IAlu);
        assert!(iload < 0.20, "iload {iload}");
        assert!(ialu > 0.50, "ialu {ialu}");
        assert_eq!(s.vector_ops(), 0);
    }

    #[test]
    fn trace_is_well_formed() {
        let (q, db) = inputs();
        let traced = run(&q, &db, &BlastnParams::default(), 10);
        let violations = sapa_isa::validate::validate(&traced.trace, 5);
        assert!(violations.is_empty(), "first: {}", violations[0]);
    }

    #[test]
    fn empty_database() {
        let q = random_dna("q", 40, 1);
        let traced = run(&q, &[], &BlastnParams::default(), 5);
        assert!(traced.trace.is_empty());
        assert!(traced.hits.is_empty());
    }
}
