//! `SSEARCH34`: the traced scalar Smith-Waterman.
//!
//! Mirrors the inner loop of the FASTA toolkit's `ssearch` (paper
//! Listing 2): the database is scanned residue by residue; for each
//! database residue the code walks a query-position array of `{H, E}`
//! structs (`ssj`) and a query-profile row (`pwaa`), carrying the
//! previous column's `H` in a register (`p`) and keeping the gap states
//! only while they can still win (the data-dependent
//! computation-avoidance that makes this workload branch-bound).
//!
//! Every emitted instruction corresponds to work the real code does,
//! with real effective addresses (profile row walks, `ss` struct
//! walks) and real branch outcomes (taken from the actual Smith-
//! Waterman recurrence values). Scores are identical to
//! [`sapa_align::sw::score`] — the test suite enforces it.

use sapa_align::result::{Hit, TopK};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, Sequence, SubstitutionMatrix};
use sapa_isa::mem::AddressSpace;
use sapa_isa::reg::{self, Reg};
use sapa_isa::trace::{Trace, Tracer};

use crate::layout::DbImage;

/// Result of a traced SSEARCH run.
#[derive(Debug, Clone)]
pub struct SsearchRun {
    /// The instruction trace of the whole search.
    pub trace: Trace,
    /// Best local-alignment score per subject.
    pub scores: Vec<i32>,
    /// Ranked hit list (top `keep`).
    pub hits: Vec<Hit>,
}

// Static instruction sites (PCs) of the inner loop.
mod site {
    pub const OUTER_LD_DB: u32 = 0; // load database residue byte
    pub const OUTER_ROW: u32 = 1; // compute profile row base
    pub const LD_SS: u32 = 2; // load ssj->{H,E}
    pub const LD_PWAA: u32 = 3; // load profile score
    pub const MV_P: u32 = 4; // p = ssj->H
    pub const ADD_H: u32 = 5; // h = p + *pwaa++
    pub const CMP_E: u32 = 6;
    pub const B_E: u32 = 7; // if (e > 0)
    pub const CMP_HE: u32 = 8;
    pub const B_HE: u32 = 9; // if (h < e)
    pub const MV_HE: u32 = 10; // h = e
    pub const CMP_H: u32 = 11;
    pub const B_H: u32 = 12; // if (h > 0)
    pub const CMP_BEST: u32 = 13;
    pub const B_BEST: u32 = 14; // if (h > best)
    pub const MV_BEST: u32 = 15;
    pub const E_DECAY: u32 = 16; // e = max(e, h - q) - r bookkeeping
    pub const CMP_EN: u32 = 17;
    pub const B_EN: u32 = 18; // if (e' > 0) keep E alive
    pub const ST_E: u32 = 19; // ssj->E = e'
    pub const F_DECAY: u32 = 20;
    pub const CMP_FN: u32 = 21;
    pub const B_FN: u32 = 22; // if (f' > 0) keep F alive
    pub const CMP_HF: u32 = 23;
    pub const B_HF: u32 = 24; // if (h < f)
    pub const MV_HF: u32 = 25; // h = f
    pub const ST_H: u32 = 26; // ssj->H = h
    pub const INC: u32 = 27; // ssj++, pwaa++
    pub const B_LOOP: u32 = 28; // inner-loop backedge
    pub const B_OUTER: u32 = 29; // outer-loop backedge
    pub const TOP: u32 = 2; // inner-loop entry target
}

// Register roles, mirroring the listing's variables.
const R_H: Reg = reg::gpr(3); // h
const R_SS: Reg = reg::gpr(4); // last ss load ({H, E})
const R_P: Reg = reg::gpr(5); // p (H of the previous column)
const R_F: Reg = reg::gpr(6); // f (horizontal gap state)
const R_SCORE: Reg = reg::gpr(7); // *pwaa
const R_PWAA: Reg = reg::gpr(8); // pwaa pointer
const R_SSP: Reg = reg::gpr(9); // ssj pointer
const R_BEST: Reg = reg::gpr(10); // best
const R_CMP: Reg = reg::gpr(12); // condition codes
const R_DB: Reg = reg::gpr(20); // database residue
const R_ROW: Reg = reg::gpr(21); // profile row base

/// Runs the traced search of `query` against `db`.
///
/// `keep` bounds the reported hit list (the paper uses `-b 500`).
pub fn run(
    query: &[AminoAcid],
    db: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    keep: usize,
) -> SsearchRun {
    let m = query.len();
    let mut space = AddressSpace::new();
    let img = DbImage::build(&mut space, db);
    // Profile: 24 rows (one per residue class) × m bytes, row-major —
    // the layout `pwaa` walks in the real code.
    let profile = space
        .alloc("query_profile", (AminoAcid::COUNT * m.max(1)) as u64, 128)
        .expect("profile fits");
    // ss array: one {H:i32, E:i32} struct per query position.
    let ss = space
        .alloc("ss_array", (8 * m.max(1)) as u64, 128)
        .expect("ss fits");

    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    let mut t = Tracer::with_capacity(1024);
    let mut scores = Vec::with_capacity(db.len());
    let mut results = TopK::new(keep.max(1));

    let mut col_h = vec![0i32; m];
    let mut col_e = vec![0i32; m];

    for si in 0..img.len() {
        let subject = img.subject(si);
        col_h.iter_mut().for_each(|v| *v = 0);
        col_e.iter_mut().for_each(|v| *v = 0);
        let mut best = 0i32;

        for (bi, &bres) in subject.iter().enumerate() {
            // Outer loop: load the database residue, compute the
            // profile row pointer.
            t.iload(
                site::OUTER_LD_DB,
                R_DB,
                img.residue_addr(si, bi),
                1,
                &[R_SSP],
            );
            t.ialu(site::OUTER_ROW, R_ROW, &[R_DB]);
            let row = bres.index() as u32 * m as u32;

            let mut h_diag = 0i32;
            let mut f = 0i32;
            for j in 0..m {
                let ss_addr = ss.addr(8 * j as u32);
                // ssj->{H,E} comes in with one 8-byte load.
                t.iload(site::LD_SS, R_SS, ss_addr, 8, &[R_SSP]);
                t.iload(
                    site::LD_PWAA,
                    R_SCORE,
                    profile.addr(row + j as u32),
                    1,
                    &[R_PWAA],
                );
                // p = ssj->H (next cell's diagonal), h = p + score.
                t.ialu(site::MV_P, R_P, &[R_SS]);
                t.ialu(site::ADD_H, R_H, &[R_P, R_SCORE]);

                let mut h = h_diag + matrix.score(query[j], bres);
                h_diag = col_h[j];
                let e = col_e[j];

                t.ialu(site::CMP_E, R_CMP, &[R_SS]);
                t.branch(site::B_E, e > 0, site::TOP, &[R_CMP]);
                if e > 0 {
                    t.ialu(site::CMP_HE, R_CMP, &[R_H, R_SS]);
                    t.branch(site::B_HE, h < e, site::TOP, &[R_CMP]);
                    if h < e {
                        t.ialu(site::MV_HE, R_H, &[R_SS]);
                        h = e;
                    }
                }
                if f > 0 {
                    t.ialu(site::CMP_HF, R_CMP, &[R_H, R_F]);
                    t.branch(site::B_HF, h < f, site::TOP, &[R_CMP]);
                    if h < f {
                        t.ialu(site::MV_HF, R_H, &[R_F]);
                        h = f;
                    }
                }
                if h < 0 {
                    h = 0;
                }

                t.ialu(site::CMP_H, R_CMP, &[R_H]);
                t.branch(site::B_H, h > 0, site::TOP, &[R_CMP]);
                if h > 0 {
                    t.ialu(site::CMP_BEST, R_CMP, &[R_H, R_BEST]);
                    t.branch(site::B_BEST, h > best, site::TOP, &[R_CMP]);
                    if h > best {
                        t.ialu(site::MV_BEST, R_BEST, &[R_H]);
                        best = h;
                    }
                }

                // Gap-state bookkeeping, kept only while alive — the
                // short-circuit that produces SSEARCH's branchy profile.
                let e_next = (e - ext).max(h - open_ext);
                let e_next = if e_next > 0 { e_next } else { 0 };
                t.ialu(site::E_DECAY, R_SS, &[R_SS, R_H]);
                t.ialu(site::CMP_EN, R_CMP, &[R_SS]);
                t.branch(site::B_EN, e_next > 0, site::TOP, &[R_CMP]);

                let f_next = (f - ext).max(h - open_ext);
                let f_next = if f_next > 0 { f_next } else { 0 };
                if f > 0 || h > open_ext {
                    t.ialu(site::F_DECAY, R_F, &[R_F, R_H]);
                    t.ialu(site::CMP_FN, R_CMP, &[R_F]);
                    t.branch(site::B_FN, f_next > 0, site::TOP, &[R_CMP]);
                }

                // Store the struct back only when the cell is live
                // (dead cells keep their zeroes, sparing the store).
                if h > 0 || col_h[j] > 0 {
                    t.istore(site::ST_H, ss_addr, 8, &[R_H, R_SSP]);
                }
                if e_next > 0 || col_e[j] > 0 {
                    t.istore(site::ST_E, ss_addr + 4, 4, &[R_SS, R_SSP]);
                }
                col_h[j] = h;
                col_e[j] = e_next;
                f = f_next;

                t.ialu(site::INC, R_SSP, &[R_SSP]);
                t.branch(site::B_LOOP, j + 1 < m, site::TOP, &[R_SSP]);
            }
            t.branch(
                site::B_OUTER,
                bi + 1 < subject.len(),
                site::OUTER_LD_DB,
                &[R_DB],
            );
        }

        scores.push(best);
        if best > 0 {
            results.push(Hit {
                seq_index: si,
                score: best,
            });
        }
    }

    let hits = results.finish().into_hits();
    SsearchRun {
        trace: t.finish(),
        scores,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::OpClass;

    fn seq(id: &str, s: &str) -> Sequence {
        Sequence::from_str(id, s).unwrap()
    }

    fn inputs() -> (Vec<AminoAcid>, Vec<Sequence>) {
        let q = seq("q", "MKWVTFISLLFLFSSAYSRGVF").residues().to_vec();
        let db = vec![
            seq("s0", "GGPGGNDNDNPPGGAA"),
            seq("s1", "MKWVTFISLLFLFSSAYSRGVF"),
            seq("s2", "AAWWYYHHEEKKRRDD"),
        ];
        (q, db)
    }

    #[test]
    fn scores_match_reference_sw() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let run = run(&q, &db, &m, g, 10);
        for (i, s) in db.iter().enumerate() {
            let expect = sapa_align::sw::score(&q, s.residues(), &m, g);
            assert_eq!(run.scores[i], expect, "subject {i}");
        }
    }

    #[test]
    fn homolog_is_top_hit() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let run = run(&q, &db, &m, GapPenalties::paper(), 10);
        assert_eq!(run.hits[0].seq_index, 1);
    }

    #[test]
    fn instruction_mix_matches_figure_1_shape() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let run = run(&q, &db, &m, GapPenalties::paper(), 10);
        let stats = run.trace.stats();
        let ctrl = stats.fraction(OpClass::Branch);
        let ialu = stats.fraction(OpClass::IAlu);
        let iload = stats.fraction(OpClass::ILoad);
        let istore = stats.fraction(OpClass::IStore);
        // Paper Fig. 1: ~25% ctrl, ~44% ialu, ~22% iload, small istore.
        assert!((0.18..0.36).contains(&ctrl), "ctrl {ctrl}");
        assert!((0.33..0.55).contains(&ialu), "ialu {ialu}");
        assert!((0.12..0.30).contains(&iload), "iload {iload}");
        assert!(istore < 0.12, "istore {istore}");
        assert_eq!(stats.vector_ops(), 0);
    }

    #[test]
    fn trace_scales_with_problem_size() {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let q = seq("q", "MKWVTFISLL").residues().to_vec();
        let small = run(&q, &[seq("s", "MKWVTF")], &m, g, 5);
        let large = run(&q, &[seq("s", &"MKWVTF".repeat(4))], &m, g, 5);
        assert!(large.trace.len() > 3 * small.trace.len());
    }

    #[test]
    fn empty_database_yields_empty_trace() {
        let m = SubstitutionMatrix::blosum62();
        let q = seq("q", "MKWVTF").residues().to_vec();
        let run = run(&q, &[], &m, GapPenalties::paper(), 5);
        assert!(run.trace.is_empty());
        assert!(run.hits.is_empty());
    }
}
