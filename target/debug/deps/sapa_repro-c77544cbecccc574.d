/root/repo/target/debug/deps/sapa_repro-c77544cbecccc574.d: crates/repro/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_repro-c77544cbecccc574.rmeta: crates/repro/src/main.rs Cargo.toml

crates/repro/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
