//! Simulator replay and sweep throughput — the headline measurements
//! for the parallel-sweep PR.
//!
//! Groups:
//!
//! * `sim_replay` — one BLAST trace through the 4-way baseline, as an
//!   array-of-structs `Trace` vs the compact `PackedTrace`, reported in
//!   simulated instructions per second, plus the packed trace under the
//!   scoreboard issue model so the staged backend's bookkeeping cost is
//!   measured (`derived.ooo_vs_scoreboard_replay_speed`; the CI gate
//!   holds the out-of-order model to ≥ 0.9× scoreboard throughput);
//! * `trace_decode` — decode cost alone, no simulation: AoS slice
//!   iteration vs the packed per-instruction reader vs the packed block
//!   decoder, so decode throughput is separable from sim throughput;
//! * `sim_sweep` — a 12-point grid (3 widths × 2 memories × 2
//!   predictors) over one shared packed trace, serial vs 2 and 4 sweep
//!   threads.
//!
//! Outside `--test` mode the run writes `BENCH_sim.json` at the
//! repository root: per-bench medians, simulated-instructions-per-
//! second rates, the packed-vs-AoS trace footprint, and the measured
//! sweep speedups (bounded by `host_cpus` — on a single-core host the
//! threaded points measure scheduling overhead, not speedup).
//!
//! `--smoke` runs a cut-down variant for CI: smaller trace, fewer
//! samples, no sweep group, output to `BENCH_sim_smoke.json` — just
//! enough signal to gate on `derived.packed_vs_aos_replay_speed`.

use std::sync::Arc;

use sapa_bench::harness::{Criterion, Throughput};
use sapa_core::cpu::config::{BranchConfig, CpuConfig, IssueModel, MemConfig, SimConfig};
use sapa_core::cpu::sweep::{run_jobs, SweepJob};
use sapa_core::cpu::Simulator;
use sapa_core::isa::{Inst, PackedTrace, Trace, BLOCK_LEN};
use sapa_core::workloads::{StandardInputs, Workload};

fn bench_trace(smoke: bool) -> Trace {
    // BLAST at a reduced database: a few hundred thousand instructions,
    // large enough to dwarf per-run setup, small enough to iterate. The
    // smoke trace is smaller again so CI pays seconds, not minutes.
    let inputs = if smoke {
        StandardInputs::with_db_size(20, 1)
    } else {
        StandardInputs::with_db_size(60, 2)
    };
    Workload::Blast.trace(&inputs).trace
}

fn sweep_grid() -> Vec<SimConfig> {
    let mut grid = Vec::new();
    for cpu in [
        CpuConfig::four_way(),
        CpuConfig::eight_way(),
        CpuConfig::sixteen_way(),
    ] {
        for mem in [MemConfig::me1(), MemConfig::meinf()] {
            for branch in [BranchConfig::table_vi(), BranchConfig::perfect()] {
                grid.push(SimConfig {
                    cpu: cpu.clone(),
                    mem: mem.clone(),
                    branch,
                });
            }
        }
    }
    grid
}

fn replay(c: &mut Criterion, trace: &Trace, packed: &Arc<PackedTrace>) {
    let sim = Simulator::new(SimConfig::four_way());
    let mut sb_cfg = SimConfig::four_way();
    sb_cfg.cpu.issue_model = IssueModel::Scoreboard;
    let scoreboard = Simulator::new(sb_cfg);
    let mut group = c.benchmark_group("sim_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("aos_trace", |b| b.iter(|| sim.run(trace)));
    group.bench_function("packed_trace", |b| b.iter(|| sim.run_packed(packed)));
    group.bench_function("packed_trace_scoreboard", |b| {
        b.iter(|| scoreboard.run_packed(packed))
    });
    group.finish();
}

/// Decode cost in isolation: each variant streams every instruction
/// through a cheap fold so the decoded values are actually consumed but
/// nothing microarchitectural runs.
fn decode(c: &mut Criterion, trace: &Trace, packed: &Arc<PackedTrace>) {
    #[inline]
    fn fold(acc: u64, inst: &Inst) -> u64 {
        acc.wrapping_add(inst.pc as u64) ^ inst.ea as u64 ^ inst.flags as u64
    }
    let mut group = c.benchmark_group("trace_decode");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("aos_iterate", |b| {
        b.iter(|| std::hint::black_box(trace.insts().iter().fold(0u64, fold)))
    });
    group.bench_function("packed_per_inst", |b| {
        b.iter(|| std::hint::black_box(packed.iter().fold(0u64, |a, i| fold(a, &i))))
    });
    group.bench_function("packed_block", |b| {
        let mut buf = vec![Inst::default(); BLOCK_LEN];
        b.iter(|| {
            let mut d = packed.block_decoder();
            let mut acc = 0u64;
            loop {
                let n = d.fill(&mut buf);
                if n == 0 {
                    break;
                }
                acc = buf[..n].iter().fold(acc, fold);
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn sweep(c: &mut Criterion, packed: &Arc<PackedTrace>) {
    let jobs: Vec<SweepJob> = sweep_grid()
        .into_iter()
        .map(|cfg| SweepJob::new(Arc::clone(packed), cfg))
        .collect();
    let insts = packed.len() as u64 * jobs.len() as u64;
    let mut group = c.benchmark_group("sim_sweep_12pt");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("serial", |b| b.iter(|| run_jobs(&jobs, 1)));
    for threads in [2usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| run_jobs(&jobs, threads))
        });
    }
    group.finish();
}

fn write_json(c: &Criterion, trace: &Trace, packed: &PackedTrace, path: &str) {
    let mut entries = String::new();
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let rate = r
            .elements_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        entries.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"sim_insts_per_sec\": {}}}",
            r.group, r.name, r.median_ns, rate
        ));
    }
    let ratio = |fast: &str, slow: &str| -> String {
        match (
            c.result("sim_sweep_12pt", slow),
            c.result("sim_sweep_12pt", fast),
        ) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    // Speed of `fast` relative to `slow` within one group (>1 = faster).
    let speed = |group: &str, slow: &str, fast: &str| -> String {
        match (c.result(group, slow), c.result(group, fast)) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    let replay_ratio = speed("sim_replay", "aos_trace", "packed_trace");
    let model_ratio = speed("sim_replay", "packed_trace_scoreboard", "packed_trace");
    let decode_ratio = speed("trace_decode", "packed_per_inst", "packed_block");
    let aos_bytes = trace.len() * std::mem::size_of::<sapa_core::isa::Inst>();
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    // One reference run of the baseline (out-of-order) model, so the
    // report carries the per-structure pressure behind the timings.
    let report = Simulator::new(SimConfig::four_way()).run_packed(packed);
    let s = &report.structures;
    let structures = format!(
        "  \"structures\": {{\n    \"rename_stalls\": {},\n    \"rs_full_stalls\": {},\n    \"rob_full_stalls\": {},\n    \"lq_full_stalls\": {},\n    \"sq_full_stalls\": {},\n    \"replays\": {},\n    \"replay_wait_cycles\": {},\n    \"mean_rob_occupancy\": {:.2},\n    \"mean_lq_occupancy\": {:.2},\n    \"mean_sq_occupancy\": {:.2}\n  }},\n",
        s.rename_stalls,
        s.rs_full_stalls,
        s.rob_full_stalls,
        s.lq_full_stalls,
        s.sq_full_stalls,
        s.replays,
        s.replay_wait_cycles,
        report.retireq_occupancy.mean(),
        report.lq_occupancy.mean(),
        report.sq_occupancy.mean(),
    );
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"workload\": \"BLAST\",\n  \"trace_insts\": {},\n  \"host_cpus\": {cpus},\n  \"trace_bytes_aos\": {aos_bytes},\n  \"trace_bytes_packed\": {},\n{structures}  \"results\": [\n{entries}\n  ],\n  \"derived\": {{\n    \"packed_vs_aos_replay_speed\": {replay_ratio},\n    \"ooo_vs_scoreboard_replay_speed\": {model_ratio},\n    \"block_vs_per_inst_decode_speed\": {decode_ratio},\n    \"trace_compression\": {:.3},\n    \"sweep_speedup_t2_vs_serial\": {},\n    \"sweep_speedup_t4_vs_serial\": {}\n  }}\n}}\n",
        trace.len(),
        packed.heap_bytes(),
        aos_bytes as f64 / packed.heap_bytes() as f64,
        ratio("threads_2", "serial"),
        ratio("threads_4", "serial"),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    // `--smoke` is ours; the harness ignores flags it does not know.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = Criterion::from_args().sample_size(if smoke { 5 } else { 10 });
    let trace = bench_trace(smoke);
    let packed = Arc::new(PackedTrace::from_trace(&trace));
    replay(&mut c, &trace, &packed);
    decode(&mut c, &trace, &packed);
    if !smoke {
        sweep(&mut c, &packed);
    }
    if !c.is_test_mode() {
        let path = if smoke {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_smoke.json")
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json")
        };
        write_json(&c, &trace, &packed, path);
    }
}
