//! Striped vs anti-diagonal Smith-Waterman, plus the batched parallel
//! database scan — the headline comparison for the striped-kernel PRs.
//!
//! Groups:
//!
//! * `striped_kernels` — single-pair throughput of every SW machine at
//!   both register widths: scalar Gotoh, lazy-F SSEARCH, anti-diagonal
//!   `simd_sw`, striped 16-bit words (deconstructed lazy-F and the
//!   pre-rework `_ref` kernel), and the adaptive 8-bit byte pass with
//!   16-bit rescore. The `_cheapgap` pairs rerun the word kernels
//!   under `open=2, extend=1`, where lazy-F corrections actually fire
//!   and the deconstructed correction has to earn its keep;
//! * `striped_traceback` — what full alignment output costs on top of
//!   the score-only scan: `score_only` vs the end-tracking pass vs the
//!   complete three-pass traceback (ends + reversed pass + banded
//!   CIGAR);
//! * `striped_scan_200seqs` — a 200-sequence database scan: per-subject
//!   profile rebuild vs one cached profile, serial vs the chunked
//!   parallel pipeline (driven through the unified [`StripedEngine`] +
//!   `parallel::engine_scores` API).
//!
//! Outside `--test` mode the run writes `BENCH_striped.json` at the
//! repository root with every median plus derived speedups, including
//! `lazyf_deconstructed_speedup` (pre-rework kernel vs deconstructed)
//! and `traceback_overhead` (full three-pass alignment vs score-only).
//!
//! `--smoke` runs a cut-down variant for CI: fewer samples, no scan
//! group, output to `BENCH_striped_smoke.json` (gitignored) — enough
//! for the CI throughput gate to compare against the committed
//! baseline without minutes of benchmarking.

use sapa_bench::harness::{Criterion, Throughput};
use sapa_bench::{bench_db, bench_query, slices};
use sapa_core::align::engine::StripedEngine;
use sapa_core::align::striped::{self, ByteWorkspace, Workspace};
use sapa_core::align::{parallel, simd_sw, sw, traceback};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::{QueryProfile, SubstitutionMatrix};

fn kernels(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let cheap = GapPenalties::new(2, 1);
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();
    let cells = (query.len() * subject.len()) as u64;

    let p128 = QueryProfile::build(query.residues(), &matrix, 8);
    let p256 = QueryProfile::build(query.residues(), &matrix, 16);

    let mut group = c.benchmark_group("striped_kernels");
    group.throughput(Throughput::Elements(cells));
    group.bench_function("scalar_gotoh", |b| {
        b.iter(|| sw::score(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lazy_f_ssearch", |b| {
        b.iter(|| sw::score_lazy_f(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("anti_diagonal_vmx128", |b| {
        b.iter(|| simd_sw::score::<8>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("anti_diagonal_vmx256", |b| {
        b.iter(|| simd_sw::score::<16>(query.residues(), subject, &matrix, gaps))
    });
    // Striped kernels reuse a workspace across iterations, exactly like
    // the database-scan pipeline does across subjects.
    let mut ws8 = Workspace::<8>::new();
    group.bench_function("striped_w16_vmx128", |b| {
        b.iter(|| striped::score_with_profile::<8>(&p128, subject, gaps, &mut ws8))
    });
    group.bench_function("striped_w16_vmx128_ref", |b| {
        b.iter(|| striped::score_with_profile_ref::<8>(&p128, subject, gaps, &mut ws8))
    });
    let mut ws16 = Workspace::<16>::new();
    group.bench_function("striped_w16_vmx256", |b| {
        b.iter(|| striped::score_with_profile::<16>(&p256, subject, gaps, &mut ws16))
    });
    group.bench_function("striped_w16_vmx256_ref", |b| {
        b.iter(|| striped::score_with_profile_ref::<16>(&p256, subject, gaps, &mut ws16))
    });
    // Cheap gaps make lazy-F corrections frequent instead of rare —
    // the regime where the deconstructed correction's bounded pass
    // replaces the reference kernel's O(segs) re-loops.
    group.bench_function("striped_w16_vmx128_cheapgap", |b| {
        b.iter(|| striped::score_with_profile::<8>(&p128, subject, cheap, &mut ws8))
    });
    group.bench_function("striped_w16_vmx128_ref_cheapgap", |b| {
        b.iter(|| striped::score_with_profile_ref::<8>(&p128, subject, cheap, &mut ws8))
    });
    // Direct byte-kernel pair: the engines' production scan path, and
    // the regime where the hoisted early-exit pays — the unsigned
    // floor keeps F dead on most columns, so the reference kernel's
    // mandatory first wrap iteration is almost always wasted work.
    let mut bws16d = ByteWorkspace::<16>::new();
    group.bench_function("striped_b8_vmx128", |b| {
        b.iter(|| striped::score_bytes_with_profile::<16>(&p128, subject, gaps, &mut bws16d))
    });
    group.bench_function("striped_b8_vmx128_ref", |b| {
        b.iter(|| striped::score_bytes_with_profile_ref::<16>(&p128, subject, gaps, &mut bws16d))
    });
    let mut bws16 = ByteWorkspace::<16>::new();
    let mut ws8b = Workspace::<8>::new();
    group.bench_function("striped_b8_adaptive_vmx128", |b| {
        b.iter(|| {
            striped::score_adaptive_with_profile::<16, 8>(
                &p128, subject, gaps, &mut bws16, &mut ws8b,
            )
        })
    });
    let mut bws32 = ByteWorkspace::<32>::new();
    let mut ws16b = Workspace::<16>::new();
    group.bench_function("striped_b8_adaptive_vmx256", |b| {
        b.iter(|| {
            striped::score_adaptive_with_profile::<32, 16>(
                &p256, subject, gaps, &mut bws32, &mut ws16b,
            )
        })
    });
    group.finish();
}

fn traceback_cost(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    // A homologous subject so there is a real alignment to trace.
    let subject = db
        .iter()
        .map(|s| s.residues())
        .max_by_key(|s| sw::score(query.residues(), s, &matrix, gaps))
        .unwrap();
    let cells = (query.len() * subject.len()) as u64;

    let p128 = QueryProfile::build(query.residues(), &matrix, 8);
    let expected = sw::score(query.residues(), subject, &matrix, gaps);
    let mut ws = Workspace::<8>::new();

    let mut group = c.benchmark_group("striped_traceback");
    group.throughput(Throughput::Elements(cells));
    group.bench_function("score_only", |b| {
        b.iter(|| striped::score_with_profile::<8>(&p128, subject, gaps, &mut ws))
    });
    group.bench_function("score_ends", |b| {
        b.iter(|| striped::score_ends_with_profile::<8>(&p128, subject, gaps, &mut ws))
    });
    group.bench_function("full_align", |b| {
        b.iter(|| {
            traceback::align_hit::<8>(
                query.residues(),
                &matrix,
                gaps,
                &p128,
                subject,
                expected,
                &mut ws,
            )
        })
    });
    group.finish();
}

fn scan(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(200);
    let subjects = slices(&db);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("striped_scan_200seqs");
    group.throughput(Throughput::Elements(residues));
    group.bench_function("anti_diagonal_serial", |b| {
        b.iter(|| {
            subjects
                .iter()
                .map(|s| simd_sw::score::<8>(query.residues(), s, &matrix, gaps))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("striped_profile_per_subject", |b| {
        // The naive integration: rebuild the profile for every subject,
        // showing what the cached profile amortizes away.
        b.iter(|| {
            subjects
                .iter()
                .map(|s| striped::score_adaptive::<16, 8>(query.residues(), s, &matrix, gaps))
                .collect::<Vec<_>>()
        })
    });
    let profile = QueryProfile::build_shared(query.residues(), &matrix, 8);
    let engine = StripedEngine::<16, 8>::with_profile(profile, gaps);
    group.bench_function("striped_cached_profile_serial", |b| {
        b.iter(|| parallel::engine_scores(&engine, &subjects, 1))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("striped_cached_profile_t{threads}"), |b| {
            b.iter(|| parallel::engine_scores(&engine, &subjects, threads))
        });
    }
    group.finish();
}

fn write_json(c: &Criterion, path: &str) {
    let mut entries = String::new();
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let rate = r
            .elements_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        entries.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"elements_per_sec\": {}}}",
            r.group, r.name, r.median_ns, rate
        ));
    }
    // slow-median / fast-median within one group, "null" when either
    // side did not run (smoke mode skips groups).
    let ratio = |group: &str, fast: &str, slow: &str| -> String {
        match (c.result(group, slow), c.result(group, fast)) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    let speedup = |fast: &str, slow: &str| ratio("striped_kernels", fast, slow);
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"striped\",\n  \"query\": \"GST-222aa\",\n  \"host_cpus\": {cpus},\n  \"results\": [\n{entries}\n  ],\n  \"derived\": {{\n    \"speedup_striped_w16_vs_anti_diagonal_vmx128\": {},\n    \"speedup_striped_w16_vs_anti_diagonal_vmx256\": {},\n    \"speedup_striped_adaptive_vs_anti_diagonal_vmx128\": {},\n    \"speedup_striped_w16_vs_scalar_vmx128\": {},\n    \"lazyf_deconstructed_speedup\": {},\n    \"lazyf_deconstructed_speedup_vmx256\": {},\n    \"lazyf_deconstructed_speedup_cheapgap\": {},\n    \"lazyf_deconstructed_speedup_bytes\": {},\n    \"traceback_overhead\": {}\n  }}\n}}\n",
        speedup("striped_w16_vmx128", "anti_diagonal_vmx128"),
        speedup("striped_w16_vmx256", "anti_diagonal_vmx256"),
        speedup("striped_b8_adaptive_vmx128", "anti_diagonal_vmx128"),
        speedup("striped_w16_vmx128", "scalar_gotoh"),
        speedup("striped_w16_vmx128", "striped_w16_vmx128_ref"),
        speedup("striped_w16_vmx256", "striped_w16_vmx256_ref"),
        speedup("striped_w16_vmx128_cheapgap", "striped_w16_vmx128_ref_cheapgap"),
        speedup("striped_b8_vmx128", "striped_b8_vmx128_ref"),
        ratio("striped_traceback", "score_only", "full_align"),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    // `--smoke` is ours; the harness ignores flags it does not know.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = Criterion::from_args().sample_size(if smoke { 5 } else { 15 });
    kernels(&mut c);
    traceback_cost(&mut c);
    if !smoke {
        scan(&mut c);
    }
    if !c.is_test_mode() {
        let path = if smoke {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_striped_smoke.json"
            )
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_striped.json")
        };
        write_json(&c, path);
    }
}
