//! Simulator configuration: the paper's Tables IV (processor), V
//! (memory) and VI (branch prediction) as validated Rust types.

/// Functional-unit / issue-queue classes (Table IV's unit mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum UnitClass {
    /// Load/store units.
    Mem = 0,
    /// Integer (fixed-point) units.
    Fix = 1,
    /// Scalar floating-point units.
    Fpu = 2,
    /// Branch units.
    Br = 3,
    /// Vector integer (simple) units.
    Vi = 4,
    /// Vector permute units.
    Vper = 5,
    /// Vector complex-integer units.
    Vcmplx = 6,
    /// Vector floating-point units.
    Vfpu = 7,
}

impl UnitClass {
    /// Number of unit classes.
    pub const COUNT: usize = 8;

    /// All classes in index order.
    pub const ALL: [UnitClass; Self::COUNT] = [
        UnitClass::Mem,
        UnitClass::Fix,
        UnitClass::Fpu,
        UnitClass::Br,
        UnitClass::Vi,
        UnitClass::Vper,
        UnitClass::Vcmplx,
        UnitClass::Vfpu,
    ];

    /// Stable index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short label (matches the paper's queue names).
    pub const fn label(self) -> &'static str {
        match self {
            UnitClass::Mem => "MEM",
            UnitClass::Fix => "FIX",
            UnitClass::Fpu => "FP",
            UnitClass::Br => "BR",
            UnitClass::Vi => "VI",
            UnitClass::Vper => "VPER",
            UnitClass::Vcmplx => "VCMPLX",
            UnitClass::Vfpu => "VFP",
        }
    }
}

/// Issue-logic model.
///
/// [`IssueModel::OutOfOrder`] is the default and the fidelity target: a
/// register alias table, per-class reservation stations, a retirement-
/// ordered ROB and a load–store queue with address-based memory
/// disambiguation (speculative load bypass + replay on conflict).
/// [`IssueModel::Scoreboard`] keeps the original monolithic issue logic
/// — conservative store→load ordering decided at dispatch — as a
/// comparison oracle: both models retire identical architectural work,
/// and cross-model tests pin that equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueModel {
    /// Legacy issue logic: loads wait at dispatch for any in-flight
    /// store to the same granule (no speculation, no replay).
    Scoreboard,
    /// Staged RAT/RS/ROB/LSQ model with memory disambiguation.
    OutOfOrder,
}

/// Core pipeline configuration (one column of Table IV).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpuConfig {
    /// Human-readable name ("4-way", …).
    pub name: String,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions renamed per cycle.
    pub rename_width: u32,
    /// Instructions dispatched to issue queues per cycle.
    pub dispatch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Maximum instructions in flight.
    pub inflight: u32,
    /// Physical general-purpose registers.
    pub gpr: u32,
    /// Physical vector registers.
    pub vpr: u32,
    /// Physical floating-point registers.
    pub fpr: u32,
    /// Functional units per class, indexed by [`UnitClass::index`].
    pub units: [u32; UnitClass::COUNT],
    /// Issue-queue entries per class.
    pub issue_queue: [u32; UnitClass::COUNT],
    /// Fetch (instruction) buffer entries.
    pub ibuffer: u32,
    /// Retire queue (reorder buffer) entries.
    pub retire_queue: u32,
    /// Maximum outstanding D-cache misses (MSHRs).
    pub max_outstanding_misses: u32,
    /// Execution latency per class, cycles (memory ops add cache time).
    pub unit_latency: [u32; UnitClass::COUNT],
    /// Extra cycles added to vector loads/stores wider than 16 bytes
    /// (the paper's Fig. 8 "+1 lat" ablation for 256-bit accesses).
    pub wide_load_extra_latency: u32,
    /// Frontend pipeline depth in cycles (fetch → dispatch), which sets
    /// the refill cost after a misprediction together with
    /// [`crate::config::BranchConfig::mispredict_recovery`].
    pub frontend_depth: u32,
    /// Which issue-logic model runs the backend.
    pub issue_model: IssueModel,
    /// Reservation-station entries per class, used by
    /// [`IssueModel::OutOfOrder`] (the scoreboard model uses
    /// [`CpuConfig::issue_queue`]). Presets keep the two equal so the
    /// models are resource-comparable.
    pub rs_entries: [u32; UnitClass::COUNT],
    /// Load-queue entries ([`IssueModel::OutOfOrder`] only).
    pub lsq_loads: u32,
    /// Store-queue entries ([`IssueModel::OutOfOrder`] only; the
    /// scoreboard model's store queue is unbounded, as before the
    /// model split).
    pub lsq_stores: u32,
}

/// Default execution latencies (cycles) per unit class. Not specified
/// in the paper; values follow the PowerPC 970's published pipelines
/// (single-cycle integer/branch, 2-cycle VALU/VPERM, longer FP/complex).
pub const DEFAULT_LATENCY: [u32; UnitClass::COUNT] = [1, 1, 4, 1, 2, 2, 4, 4];

impl CpuConfig {
    #[allow(clippy::too_many_arguments)]
    fn base(
        name: &str,
        width: u32,
        retire: u32,
        inflight: u32,
        regs: u32,
        units: [u32; UnitClass::COUNT],
        iq: u32,
        ibuffer: u32,
        retire_queue: u32,
        mshrs: u32,
        lsq: (u32, u32),
    ) -> Self {
        CpuConfig {
            name: name.to_string(),
            fetch_width: width,
            rename_width: width,
            dispatch_width: width,
            retire_width: retire,
            inflight,
            gpr: regs,
            vpr: regs,
            fpr: regs,
            units,
            issue_queue: [iq; UnitClass::COUNT],
            ibuffer,
            retire_queue,
            max_outstanding_misses: mshrs,
            unit_latency: DEFAULT_LATENCY,
            wide_load_extra_latency: 0,
            frontend_depth: 6,
            issue_model: IssueModel::OutOfOrder,
            rs_entries: [iq; UnitClass::COUNT],
            lsq_loads: lsq.0,
            lsq_stores: lsq.1,
        }
    }

    /// Table IV's 4-way column (mainstream superscalar: PowerPC 970 /
    /// Alpha 21264 class).
    pub fn four_way() -> Self {
        Self::base(
            "4-way",
            4,
            6,
            160,
            96,
            [2, 3, 2, 2, 1, 1, 1, 1],
            20,
            18,
            128,
            4,
            (32, 20),
        )
    }

    /// Table IV's 8-way column (aggressive design: possible Power6 /
    /// Alpha 21464 class).
    pub fn eight_way() -> Self {
        Self::base(
            "8-way",
            8,
            12,
            255,
            128,
            [4, 6, 4, 3, 2, 2, 2, 2],
            40,
            36,
            180,
            8,
            (48, 32),
        )
    }

    /// Table IV's 16-way column (ILP limit study).
    pub fn sixteen_way() -> Self {
        Self::base(
            "16-way",
            16,
            20,
            255,
            128,
            [8, 10, 8, 7, 6, 4, 4, 4],
            80,
            72,
            180,
            16,
            (80, 48),
        )
    }

    /// A 12-way interpolation used by the paper's Figure 8 sweep
    /// (widths 4W/8W/12W/16W).
    pub fn twelve_way() -> Self {
        Self::base(
            "12-way",
            12,
            16,
            255,
            128,
            [6, 8, 6, 5, 4, 3, 3, 3],
            60,
            54,
            180,
            12,
            (64, 40),
        )
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.retire_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.inflight == 0 || self.retire_queue == 0 {
            return Err("in-flight and retire-queue limits must be positive".into());
        }
        if self.gpr < 32 || self.fpr < 32 || self.vpr < 64 {
            return Err(
                "physical register files must cover the architectural state (32 GPR/FPR, 64 VR)"
                    .into(),
            );
        }
        if self.units.contains(&0) {
            return Err("every unit class needs at least one unit".into());
        }
        if self.issue_queue.contains(&0) {
            return Err("every issue queue needs at least one entry".into());
        }
        if self.ibuffer == 0 {
            return Err("instruction buffer must be positive".into());
        }
        if self.max_outstanding_misses == 0 {
            return Err("need at least one MSHR".into());
        }
        if self.rs_entries.contains(&0) {
            return Err("every reservation station needs at least one entry".into());
        }
        if self.lsq_loads == 0 || self.lsq_stores == 0 {
            return Err("load and store queues need at least one entry".into());
        }
        Ok(())
    }
}

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total size in bytes; `None` models the paper's "Inf" (ideal)
    /// configuration where every access hits.
    pub size: Option<u64>,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// An always-hit (infinite) cache with the given latency.
    pub const fn infinite(latency: u32) -> Self {
        CacheConfig {
            size: None,
            assoc: 1,
            line: 128,
            latency,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.assoc == 0 {
            return Err("associativity must be positive".into());
        }
        if !self.line.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if let Some(size) = self.size {
            let set_bytes = self.line as u64 * self.assoc as u64;
            if size == 0 || size % set_bytes != 0 {
                return Err(format!(
                    "cache size {size} not divisible into {}B x {}-way sets",
                    self.line, self.assoc
                ));
            }
        }
        Ok(())
    }
}

/// Translation-lookaside-buffer configuration (4 KB pages).
///
/// The paper's trauma taxonomy includes TLB classes (`mm_tlb1/2`,
/// `if_tlb1/2`) which are near-zero for these workloads; the default
/// geometry (PowerPC-970-like) reproduces that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Data-TLB entries (power of two).
    pub dtlb_entries: u32,
    /// Data-TLB associativity.
    pub dtlb_assoc: u32,
    /// Instruction-TLB entries (power of two).
    pub itlb_entries: u32,
    /// Instruction-TLB associativity.
    pub itlb_assoc: u32,
    /// Page-walk penalty in cycles on a TLB miss.
    pub miss_penalty: u32,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            dtlb_entries: 512,
            dtlb_assoc: 4,
            itlb_entries: 256,
            itlb_assoc: 4,
            miss_penalty: 30,
        }
    }
}

impl TlbConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (entries, assoc) in [
            (self.dtlb_entries, self.dtlb_assoc),
            (self.itlb_entries, self.itlb_assoc),
        ] {
            if !entries.is_power_of_two() || assoc == 0 || entries % assoc != 0 {
                return Err("TLB entries must be a power of two divisible by associativity".into());
            }
        }
        Ok(())
    }
}

/// Hardware-prefetcher configuration (an extension beyond the paper;
/// disabled by default so the baseline matches the paper's machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PrefetchConfig {
    /// Next-line prefetch into the DL1 on every DL1 miss; `degree`
    /// consecutive lines are fetched (0 = disabled).
    pub degree: u32,
}

/// Memory-hierarchy configuration (one column of Table V).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemConfig {
    /// Preset name ("me1" … "meinf").
    pub name: String,
    /// L1 instruction cache.
    pub il1: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// TLBs (`None` = perfect translation).
    pub tlb: Option<TlbConfig>,
    /// Hardware prefetcher (extension; default off).
    pub prefetch: PrefetchConfig,
}

impl MemConfig {
    fn preset(name: &str, l1_kb: Option<u64>, l2: Option<u64>) -> Self {
        MemConfig {
            name: name.to_string(),
            il1: CacheConfig {
                size: l1_kb.map(|k| k * 1024),
                assoc: 1,
                line: 128,
                latency: 1,
            },
            dl1: CacheConfig {
                size: l1_kb.map(|k| k * 1024),
                assoc: 2,
                line: 128,
                latency: 1,
            },
            l2: CacheConfig {
                size: l2,
                assoc: 8,
                line: 128,
                latency: 12,
            },
            mem_latency: 300,
            tlb: Some(TlbConfig::default()),
            prefetch: PrefetchConfig::default(),
        }
    }

    /// Table V `me1`: 32K/32K L1, 1M L2.
    pub fn me1() -> Self {
        Self::preset("me1", Some(32), Some(1 << 20))
    }

    /// Table V `me2`: 64K/64K L1, 2M L2.
    pub fn me2() -> Self {
        Self::preset("me2", Some(64), Some(2 << 20))
    }

    /// Table V `me3`: 128K/128K L1, 4M L2.
    pub fn me3() -> Self {
        Self::preset("me3", Some(128), Some(4 << 20))
    }

    /// Table V `me4`: 128K/128K L1, infinite L2.
    pub fn me4() -> Self {
        Self::preset("me4", Some(128), None)
    }

    /// Table V `meinf`: everything infinite (ideal memory).
    pub fn meinf() -> Self {
        Self::preset("meinf", None, None)
    }

    /// All five Table V presets in order.
    pub fn table_v() -> Vec<MemConfig> {
        vec![
            Self::me1(),
            Self::me2(),
            Self::me3(),
            Self::me4(),
            Self::meinf(),
        ]
    }

    /// Validates all levels.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.il1.validate()?;
        self.dl1.validate()?;
        self.l2.validate()?;
        if let Some(tlb) = &self.tlb {
            tlb.validate()?;
        }
        Ok(())
    }
}

/// Branch-predictor strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// 2-bit counters indexed by PC.
    Bimodal,
    /// Global history XOR PC into 2-bit counters.
    Gshare,
    /// Combined predictor (bimodal + gshare with a meta chooser) — the
    /// paper's "GP".
    Gp,
    /// Oracle: every branch predicted correctly (Fig. 9's Perfect-BP).
    Perfect,
}

/// Branch-prediction configuration (Table VI).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BranchConfig {
    /// Strategy.
    pub kind: PredictorKind,
    /// Predictor table entries (power of two).
    pub table_size: u32,
    /// NFA/BTB entries.
    pub nfa_size: u32,
    /// NFA/BTB associativity.
    pub nfa_assoc: u32,
    /// Fetch bubble on an NFA (BTB) miss for a taken branch.
    pub nfa_miss_penalty: u32,
    /// Cycles to restart fetch after a resolved misprediction.
    pub mispredict_recovery: u32,
    /// Maximum predicted (unresolved) conditional branches in flight.
    pub max_pred_branches: u32,
}

impl BranchConfig {
    /// Table VI's configuration: combined GP predictor, 16K-entry
    /// table, 4K-entry 4-way NFA, 2-cycle NFA miss, 3-cycle recovery,
    /// 12 predicted branches.
    pub fn table_vi() -> Self {
        BranchConfig {
            kind: PredictorKind::Gp,
            table_size: 16 * 1024,
            nfa_size: 4 * 1024,
            nfa_assoc: 4,
            nfa_miss_penalty: 2,
            mispredict_recovery: 3,
            max_pred_branches: 12,
        }
    }

    /// The oracle predictor (Fig. 9's Perfect-BP).
    pub fn perfect() -> Self {
        BranchConfig {
            kind: PredictorKind::Perfect,
            ..Self::table_vi()
        }
    }

    /// Validates sizes.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.table_size.is_power_of_two() {
            return Err("predictor table size must be a power of two".into());
        }
        if !self.nfa_size.is_power_of_two() || self.nfa_assoc == 0 {
            return Err("NFA size must be a power of two with positive associativity".into());
        }
        if self.max_pred_branches == 0 {
            return Err("must allow at least one predicted branch".into());
        }
        Ok(())
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Pipeline parameters.
    pub cpu: CpuConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Branch prediction.
    pub branch: BranchConfig,
}

impl SimConfig {
    /// The paper's default measurement point: 4-way core, `me1` memory
    /// (32K/32K/1M), Table VI branch predictor.
    pub fn four_way() -> Self {
        SimConfig {
            cpu: CpuConfig::four_way(),
            mem: MemConfig::me1(),
            branch: BranchConfig::table_vi(),
        }
    }

    /// 8-way core with `me1` memory.
    pub fn eight_way() -> Self {
        SimConfig {
            cpu: CpuConfig::eight_way(),
            mem: MemConfig::me1(),
            branch: BranchConfig::table_vi(),
        }
    }

    /// 16-way core with `me1` memory.
    pub fn sixteen_way() -> Self {
        SimConfig {
            cpu: CpuConfig::sixteen_way(),
            mem: MemConfig::me1(),
            branch: BranchConfig::table_vi(),
        }
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.cpu.validate()?;
        self.mem.validate()?;
        self.branch.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            SimConfig::four_way(),
            SimConfig::eight_way(),
            SimConfig::sixteen_way(),
        ] {
            cfg.validate().unwrap();
        }
        for mem in MemConfig::table_v() {
            mem.validate().unwrap();
        }
        CpuConfig::twelve_way().validate().unwrap();
        BranchConfig::perfect().validate().unwrap();
    }

    #[test]
    fn table_iv_unit_mix_4way() {
        let c = CpuConfig::four_way();
        assert_eq!(c.units[UnitClass::Mem.index()], 2);
        assert_eq!(c.units[UnitClass::Fix.index()], 3);
        assert_eq!(c.units[UnitClass::Vi.index()], 1);
        assert_eq!(c.retire_width, 6);
        assert_eq!(c.inflight, 160);
        assert_eq!(c.issue_queue[0], 20);
        assert_eq!(c.ibuffer, 18);
        assert_eq!(c.retire_queue, 128);
        // The staged model's sizing knobs: RS entries mirror the issue
        // queues so the two issue models are resource-comparable.
        assert_eq!(c.issue_model, IssueModel::OutOfOrder);
        assert_eq!(c.rs_entries, c.issue_queue);
        assert_eq!(c.lsq_loads, 32);
        assert_eq!(c.lsq_stores, 20);
    }

    #[test]
    fn lsq_scales_with_width() {
        assert_eq!(CpuConfig::eight_way().lsq_loads, 48);
        assert_eq!(CpuConfig::twelve_way().lsq_loads, 64);
        assert_eq!(CpuConfig::sixteen_way().lsq_loads, 80);
        let mut c = CpuConfig::four_way();
        c.lsq_stores = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::four_way();
        c.rs_entries[UnitClass::Vi.index()] = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn table_v_me1_geometry() {
        let m = MemConfig::me1();
        assert_eq!(m.dl1.size, Some(32 * 1024));
        assert_eq!(m.dl1.assoc, 2);
        assert_eq!(m.il1.assoc, 1);
        assert_eq!(m.l2.size, Some(1 << 20));
        assert_eq!(m.l2.latency, 12);
        assert_eq!(m.mem_latency, 300);
        assert!(MemConfig::meinf().dl1.size.is_none());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CpuConfig::four_way();
        c.fetch_width = 0;
        assert!(c.validate().is_err());

        let mut m = MemConfig::me1();
        m.dl1.line = 100; // not a power of two
        assert!(m.validate().is_err());

        let mut b = BranchConfig::table_vi();
        b.table_size = 1000; // not a power of two
        assert!(b.validate().is_err());
    }

    #[test]
    fn cache_size_must_tile_into_sets() {
        let c = CacheConfig {
            size: Some(1000),
            assoc: 2,
            line: 128,
            latency: 1,
        };
        assert!(c.validate().is_err());
    }
}
