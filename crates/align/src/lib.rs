//! Reference sequence-alignment algorithms.
//!
//! This crate implements, from scratch, every alignment method the paper
//! evaluates:
//!
//! * [`sw`] — Smith-Waterman local alignment with affine gaps (Gotoh),
//!   in three flavours: the textbook recurrence, a traceback-producing
//!   variant, and the SSEARCH-style *lazy-F* / computation-avoidance
//!   formulation whose data-dependent `if-then-else` chains are the
//!   source of SSEARCH34's branch-predictor pain in the paper;
//! * [`nw`] — Needleman-Wunsch global alignment (Gotoh affine gaps);
//! * [`banded`] — banded Smith-Waterman around a seed diagonal, the
//!   rescoring step of the FASTA and BLAST heuristics;
//! * [`simd_sw`] — the Wozniak-style anti-diagonal vectorized
//!   Smith-Waterman over emulated Altivec registers (128- or 256-bit),
//!   exactly score-equivalent to the scalar algorithm;
//! * [`blast`] — a BLASTP-like heuristic: neighborhood word index,
//!   two-hit seeding, X-drop ungapped extension, banded gapped
//!   rescoring;
//! * [`blastn`] — a blastn-like nucleotide search over 2-bit packed
//!   databases (the paper's Listing 1 hot loop);
//! * [`fasta`] — a FASTA-like heuristic: k-tuple lookup, diagonal
//!   scoring (`init1`/`initn`), banded optimization (`opt`);
//! * [`stats`] — Karlin-Altschul bit scores and E-values, the
//!   significance statistics real BLAST/SSEARCH report;
//! * [`engine`] — the unified [`engine::AlignmentEngine`] layer: one
//!   [`engine::SearchRequest`]/[`engine::SearchResponse`] API over all
//!   seven backends, selectable by name from the [`engine::Engine`]
//!   registry and driven by the engine-agnostic [`parallel`] pipeline.
//!
//! All scoring uses [`sapa_bioseq::SubstitutionMatrix`] (BLOSUM62 by
//! default) and positive-cost affine [`sapa_bioseq::matrix::GapPenalties`].
//!
//! ```
//! use sapa_align::sw;
//! use sapa_bioseq::{Sequence, SubstitutionMatrix};
//! use sapa_bioseq::matrix::GapPenalties;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Sequence::from_str("a", "HEAGAWGHEE")?;
//! let b = Sequence::from_str("b", "PAWHEAE")?;
//! let score = sw::score(
//!     a.residues(),
//!     b.residues(),
//!     &SubstitutionMatrix::blosum62(),
//!     GapPenalties::paper(),
//! );
//! assert!(score > 0);
//! # Ok(())
//! # }
//! ```

pub mod banded;
pub mod blast;
pub mod blastn;
pub mod engine;
pub mod fasta;
pub mod indexed;
pub mod nw;
pub mod parallel;
pub mod result;
pub mod simd_sw;
pub mod stats;
pub mod striped;
pub mod sw;
pub mod traceback;
pub mod xdrop;

pub use engine::{
    AlignmentEngine, Deadline, Engine, Prefilter, Quarantined, RankedHit, RunStats, SearchRequest,
    SearchResponse,
};
pub use result::{Alignment, Cigar, CigarOp, Hit, SearchResults, TopK};
