//! Figure 11: branch-predictor accuracy vs table size for the three
//! strategies (bimodal, gshare, combined GP), per workload.

use crate::context::Context;
use crate::format::{heading, pct, Table};
use sapa_cpu::branch::standalone_accuracy_iter;
use sapa_cpu::config::PredictorKind;
use sapa_workloads::Workload;

/// Swept predictor sizes (entries), 16 … 32K as in the paper.
pub const SIZES: [u32; 12] = [
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// The four workloads the paper plots (vmx256 behaves like vmx128).
pub const APPS: [Workload; 4] = [
    Workload::Ssearch34,
    Workload::SwVmx128,
    Workload::Fasta34,
    Workload::Blast,
];

/// Accuracy of one point (streams the packed trace, never unpacks).
pub fn point(ctx: &mut Context, w: Workload, kind: PredictorKind, size: u32) -> f64 {
    let trace = ctx.trace(w);
    standalone_accuracy_iter(trace.iter(), kind, size)
}

/// Renders Figure 11.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 11 — branch prediction accuracy vs predictor size");
    for w in APPS {
        out.push_str(&format!("\n{}:\n", w.label()));
        let mut t = Table::new(&["entries", "BIMODAL", "GSHARE", "GP"]);
        for size in SIZES {
            let bim = point(ctx, w, PredictorKind::Bimodal, size);
            let gsh = point(ctx, w, PredictorKind::Gshare, size);
            let gp = point(ctx, w, PredictorKind::Gp, size);
            t.row_owned(vec![size.to_string(), pct(bim), pct(gsh), pct(gp)]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn simd_branches_are_nearly_perfectly_predictable() {
        let mut ctx = Context::new(Scale::Tiny);
        let acc = point(&mut ctx, Workload::SwVmx128, PredictorKind::Gp, 4096);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn accuracy_saturates_with_size() {
        // The paper: near-optimal accuracy beyond ~512 entries; the
        // limit is the data-dependent branches, not capacity.
        let mut ctx = Context::new(Scale::Tiny);
        let mid = point(&mut ctx, Workload::Fasta34, PredictorKind::Gp, 2048);
        let big = point(&mut ctx, Workload::Fasta34, PredictorKind::Gp, 32768);
        assert!((big - mid).abs() < 0.05, "mid {mid} big {big}");
    }

    #[test]
    fn heuristics_stay_well_below_perfect() {
        let mut ctx = Context::new(Scale::Tiny);
        for w in [Workload::Ssearch34, Workload::Fasta34, Workload::Blast] {
            let acc = point(&mut ctx, w, PredictorKind::Gp, 32768);
            assert!(acc < 0.97, "{w} accuracy {acc}");
        }
    }
}
