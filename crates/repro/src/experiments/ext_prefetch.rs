//! Extension experiment: would a hardware prefetcher rescue BLAST?
//!
//! The paper identifies BLAST as memory-bound and leaves architectural
//! fixes to future work. This experiment adds a next-line prefetcher
//! (an option our simulator models beyond the paper's machine) and
//! measures how much of BLAST's memory penalty it recovers. The
//! random-access word-table misses are unprefetchable, so the gain is
//! real but bounded — streaming database misses vanish, index misses
//! remain.

use crate::context::Context;
use crate::format::{f2, heading, pct, Table};
use sapa_cpu::config::PrefetchConfig;
use sapa_cpu::SimConfig;
use sapa_workloads::Workload;

/// Prefetch degrees swept.
pub const DEGREES: [u32; 4] = [0, 1, 2, 4];

fn config_for(degree: u32) -> SimConfig {
    let mut cfg = SimConfig::four_way();
    cfg.mem.prefetch = PrefetchConfig { degree };
    cfg
}

/// One point: (dl1 miss rate, ipc).
pub fn point(ctx: &mut Context, w: Workload, degree: u32) -> (f64, f64) {
    let r = ctx.sim(w, &config_for(degree));
    (r.dl1.miss_rate(), r.ipc())
}

/// The workloads this ablation plots.
const APPS: [Workload; 3] = [Workload::Blast, Workload::Fasta34, Workload::SwVmx128];

/// Renders the prefetcher ablation.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Extension — next-line prefetcher ablation (4-way, me1)");
    let points: Vec<_> = APPS
        .into_iter()
        .flat_map(|w| DEGREES.into_iter().map(move |d| (w, config_for(d))))
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["workload", "degree", "dl1 miss", "IPC"]);
    for w in APPS {
        for degree in DEGREES {
            let (miss, ipc) = point(ctx, w, degree);
            t.row_owned(vec![
                w.label().to_string(),
                degree.to_string(),
                pct(miss),
                f2(ipc),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn prefetching_reduces_blast_misses() {
        let mut ctx = Context::new(Scale::Small);
        let (m0, ipc0) = point(&mut ctx, Workload::Blast, 0);
        let (m2, ipc2) = point(&mut ctx, Workload::Blast, 2);
        assert!(m2 < m0, "miss {m2} !< {m0}");
        assert!(ipc2 >= ipc0 * 0.99, "ipc {ipc2} vs {ipc0}");
    }
}
