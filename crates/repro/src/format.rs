//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
///
/// ```
/// use sapa_repro::format::Table;
/// let mut t = Table::new(&["app", "cycles"]);
/// t.row(&["BLAST", "123"]);
/// let s = t.render();
/// assert!(s.contains("BLAST"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers, left-align text.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
                    && cell.chars().all(|c| {
                        c.is_ascii_digit()
                            || c == '.'
                            || c == '-'
                            || c == '%'
                            || c == 'e'
                            || c == '+'
                    })
                {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Section header used between experiment blocks.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x", "1"]);
        t.row(&["longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
        assert!(heading("x").contains("=== x ==="));
    }
}
