//! Replaying a packed trace must be microarchitecturally identical to
//! replaying the array-of-structs trace it was packed from — for every
//! workload the suite traces — and packing must be lossless.

use sapa_core::bioseq::rng::SplitMix64;
use sapa_core::cpu::config::{IssueModel, SimConfig};
use sapa_core::cpu::{DecodeBuf, Simulator};
use sapa_core::isa::{Inst, PackedTrace};
use sapa_core::workloads::{StandardInputs, Workload};

#[test]
fn packed_replay_matches_aos_replay_for_every_workload() {
    let inputs = StandardInputs::with_db_size(12, 1);
    for model in [IssueModel::Scoreboard, IssueModel::OutOfOrder] {
        let mut cfg = SimConfig::four_way();
        cfg.cpu.issue_model = model;
        let sim = Simulator::new(cfg);
        for w in Workload::ALL {
            let trace = w.trace(&inputs).trace;
            let packed = PackedTrace::from_trace(&trace);
            assert_eq!(
                sim.run(&trace),
                sim.run_packed(&packed),
                "{w} diverged between packed and unpacked replay under {model:?}"
            );
        }
    }
}

/// Fully drains `packed` through a block decoder using a fixed per-call
/// buffer size and returns the decoded sequence.
fn decode_in_blocks(packed: &PackedTrace, block: usize) -> Vec<Inst> {
    let mut d = packed.block_decoder();
    let mut buf = vec![Inst::default(); block];
    let mut out = Vec::with_capacity(packed.len());
    loop {
        let n = d.fill(&mut buf);
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    out
}

#[test]
fn block_decode_is_bit_identical_at_every_boundary_case() {
    // The block size cases the decoder must survive: degenerate (1),
    // odd (7), straddling the default block size (255/256/257), and
    // hugging the trace length (len-1, len, len+1).
    let inputs = StandardInputs::with_db_size(12, 1);
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        let reference: Vec<Inst> = packed.iter().collect();
        let len = packed.len();
        for block in [1, 7, 255, 256, 257, len - 1, len, len + 1] {
            assert_eq!(
                decode_in_blocks(&packed, block),
                reference,
                "{w}: block size {block} diverged from the per-inst reader"
            );
        }
    }
}

#[test]
fn block_decode_survives_randomized_buffer_sizes_mid_stream() {
    // The engine always asks with one buffer size, but the decoder's
    // contract is caller-sized fills: fuzz sequences of random sizes
    // (including size changes mid-stream) against the per-inst reader.
    let inputs = StandardInputs::with_db_size(12, 1);
    let mut rng = SplitMix64::new(0x5EED_B10C);
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        let reference: Vec<Inst> = packed.iter().collect();
        for _ in 0..8 {
            let mut d = packed.block_decoder();
            let mut out = Vec::with_capacity(packed.len());
            while d.remaining() > 0 {
                let size = 1 + (rng.next_u64() % 400) as usize;
                let mut buf = vec![Inst::default(); size];
                let n = d.fill(&mut buf);
                assert!(n > 0, "fill returned 0 with {} remaining", d.remaining());
                out.extend_from_slice(&buf[..n]);
            }
            assert_eq!(out, reference, "{w}: randomized fill sizes diverged");
        }
    }
}

#[test]
fn replay_with_shared_decode_buf_matches_for_every_workload() {
    // The sweep path: one reusable DecodeBuf across many replays must
    // not leak state between workloads or runs.
    let inputs = StandardInputs::with_db_size(12, 1);
    let sim = Simulator::new(SimConfig::four_way());
    let mut buf = DecodeBuf::new();
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        let fresh = sim.run_packed(&packed);
        assert_eq!(
            fresh,
            sim.run_packed_with(&packed, &mut buf),
            "{w} diverged with a reused decode buffer"
        );
    }
}

#[test]
fn packing_is_lossless_and_smaller_for_every_workload() {
    let inputs = StandardInputs::with_db_size(12, 1);
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.len(), trace.len());
        let round_trip = packed.to_trace();
        assert_eq!(round_trip.insts(), trace.insts(), "{w} round-trip differs");
        let aos = trace.len() * std::mem::size_of::<sapa_core::isa::Inst>();
        let ratio = aos as f64 / packed.heap_bytes() as f64;
        assert!(
            ratio >= 1.8,
            "{w}: packed {} vs AoS {aos} — only {ratio:.2}x smaller",
            packed.heap_bytes()
        );
    }
}
