/root/repo/target/debug/deps/sapa_bench-009d07f153b7a5a5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/sapa_bench-009d07f153b7a5a5: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
