//! Cross-model invariants: the scoreboard oracle and the speculative
//! out-of-order model must agree on everything the trace determines —
//! retired instruction counts, cache and predictor traffic — and each
//! model must be bit-identical regardless of sweep thread count.

use std::sync::Arc;

use sapa_core::cpu::config::{IssueModel, SimConfig};
use sapa_core::cpu::{run_jobs, Simulator, SweepJob};
use sapa_core::isa::{OpClass, PackedTrace};
use sapa_core::workloads::{StandardInputs, Workload};

fn config(model: IssueModel) -> SimConfig {
    let mut cfg = SimConfig::four_way();
    cfg.cpu.issue_model = model;
    cfg
}

#[test]
fn models_agree_on_trace_derived_stats_for_every_workload() {
    let inputs = StandardInputs::with_db_size(12, 1);
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let stats = trace.stats();
        let sb = Simulator::new(config(IssueModel::Scoreboard)).run(&trace);
        let ooo = Simulator::new(config(IssueModel::OutOfOrder)).run(&trace);
        // Both models retire the whole trace, nothing more.
        assert_eq!(sb.instructions, stats.total(), "{w}: scoreboard retires");
        assert_eq!(ooo.instructions, stats.total(), "{w}: ooo retires");
        // Every load and store probes the DL1 exactly once — even when
        // the speculative model serves it from the store queue — so
        // cache statistics stay a pure function of the trace.
        let mem_ops = stats.count(OpClass::ILoad)
            + stats.count(OpClass::IStore)
            + stats.count(OpClass::VLoad)
            + stats.count(OpClass::VStore);
        assert_eq!(sb.dl1.accesses, mem_ops, "{w}: scoreboard DL1 traffic");
        assert_eq!(ooo.dl1.accesses, mem_ops, "{w}: ooo DL1 traffic");
        assert_eq!(sb.dl1, ooo.dl1, "{w}: DL1 counters diverged");
        // Frontend and predictor traffic are functions of the in-order
        // fetch stream, which the issue policy does not alter.
        assert_eq!(sb.il1, ooo.il1, "{w}: IL1 counters diverged");
        assert_eq!(sb.bp_predictions, ooo.bp_predictions, "{w}: BP lookups");
        assert_eq!(
            sb.bp_mispredictions, ooo.bp_mispredictions,
            "{w}: BP misses"
        );
        // Conditional branches are a subset of the trace's control
        // transfers (jumps are not predicted).
        assert!(
            sb.bp_predictions <= stats.count(OpClass::Branch),
            "{w}: {} predictions for {} branches",
            sb.bp_predictions,
            stats.count(OpClass::Branch)
        );
        // The oracle never speculates, so it never replays; only the
        // speculative model may pay disambiguation traffic.
        assert_eq!(sb.structures.replays, 0, "{w}: scoreboard replayed");
    }
}

#[test]
fn each_model_is_bit_identical_across_sweep_thread_counts() {
    let inputs = StandardInputs::with_db_size(12, 1);
    for model in [IssueModel::Scoreboard, IssueModel::OutOfOrder] {
        let jobs: Vec<SweepJob> = Workload::ALL
            .into_iter()
            .map(|w| {
                let packed = Arc::new(PackedTrace::from_trace(&w.trace(&inputs).trace));
                SweepJob::new(packed, config(model))
            })
            .collect();
        let serial = run_jobs(&jobs, 1);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                run_jobs(&jobs, threads),
                "{model:?} diverged between 1 and {threads} sweep threads"
            );
        }
    }
}
