//! Table VII: the important trauma classes.

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_cpu::Trauma;

/// Renders Table VII (the classes the paper describes) plus the full
/// 56-class taxonomy list.
pub fn run(_ctx: &mut Context) -> String {
    let mut out = heading("Table VII — important traumas");
    let mut t = Table::new(&["Name", "Description"]);
    for tr in Trauma::ALL {
        if !tr.description().is_empty() {
            t.row(&[tr.label(), tr.description()]);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nFull taxonomy ({} classes): {}\n",
        Trauma::COUNT,
        Trauma::ALL
            .iter()
            .map(|t| t.label())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, Scale};

    #[test]
    fn lists_the_paper_classes() {
        let out = run(&mut Context::new(Scale::Tiny));
        for name in ["if_nfa", "if_pred", "mm_dl2", "rg_vper", "rg_fix"] {
            assert!(out.contains(name), "{name} missing");
        }
    }
}
