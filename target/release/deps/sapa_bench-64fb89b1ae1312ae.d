/root/repo/target/release/deps/sapa_bench-64fb89b1ae1312ae.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libsapa_bench-64fb89b1ae1312ae.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libsapa_bench-64fb89b1ae1312ae.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
