//! Quickstart: align two protein sequences and run a small database
//! search with every engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sapa_core::align::{blast, fasta, simd_sw, sw};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::{AminoAcid, Sequence, SubstitutionMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper(); // open 10, extend 1

    // --- 1. Pairwise local alignment with traceback.
    let a = Sequence::from_str("demo|A", "HEAGAWGHEEMKWVTFISLL")?;
    let b = Sequence::from_str("demo|B", "PAWHEAEMKWVTFWSLL")?;
    let alignment = sw::align(a.residues(), b.residues(), &matrix, gaps);
    println!("Smith-Waterman score: {}", alignment.score);
    println!("{}\n", alignment.pretty(a.residues(), b.residues()));

    // --- 2. The same score from every Smith-Waterman machine.
    let scalar = sw::score(a.residues(), b.residues(), &matrix, gaps);
    let lazy = sw::score_lazy_f(a.residues(), b.residues(), &matrix, gaps);
    let v128 = simd_sw::score::<8>(a.residues(), b.residues(), &matrix, gaps);
    let v256 = simd_sw::score::<16>(a.residues(), b.residues(), &matrix, gaps);
    assert!(scalar == lazy && lazy == v128 && v128 == v256);
    println!("scalar == lazy-F == vmx128 == vmx256 == {scalar}\n");

    // --- 3. A miniature database search with the two heuristics.
    let db: Vec<Sequence> = vec![
        Sequence::from_str("junk1", "PGPGPGPGPGPGPGPGPGPGPGPGPG")?,
        Sequence::from_str("hit", "XXXMKWVTFISLLXXXHEAGAWGHEE")?,
        Sequence::from_str("junk2", "NDNDNDNDNDNDNDNDNDNDNDNDND")?,
    ];
    let slices: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();

    let widx = blast::WordIndex::build(a.residues(), &matrix, 11);
    let blast_hits = blast::search(
        &widx,
        slices.clone(),
        &matrix,
        gaps,
        &blast::BlastParams::default(),
        10,
    );
    println!("BLAST hits:");
    for hit in blast_hits.hits() {
        println!("  {} score {}", db[hit.seq_index].id(), hit.score);
    }

    let kidx = fasta::KtupIndex::build(a.residues(), 2);
    let fasta_hits = fasta::search(
        &kidx,
        slices,
        &matrix,
        gaps,
        &fasta::FastaParams::default(),
        10,
    );
    println!("FASTA hits:");
    for hit in fasta_hits.hits() {
        println!("  {} score {}", db[hit.seq_index].id(), hit.score);
    }
    Ok(())
}
