/root/repo/target/debug/deps/end_to_end-ce0a1f65dddec9ed.d: crates/core/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-ce0a1f65dddec9ed.rmeta: crates/core/../../tests/end_to_end.rs Cargo.toml

crates/core/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
