/root/repo/target/debug/deps/sensitivity-6549f94b52e2aa45.d: crates/core/../../tests/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-6549f94b52e2aa45: crates/core/../../tests/sensitivity.rs

crates/core/../../tests/sensitivity.rs:
