//! The workload registry: Table I of the paper as a Rust enum, plus the
//! standard inputs every experiment runs on.

use sapa_align::blast::BlastParams;
use sapa_align::engine::Engine;
use sapa_align::fasta::FastaParams;
use sapa_align::result::Hit;
use sapa_bioseq::db::DatabaseBuilder;
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::queries::QuerySet;
use sapa_bioseq::{Sequence, SubstitutionMatrix};
use sapa_isa::trace::Trace;

/// One of the paper's five applications (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Scalar Smith-Waterman (`SSEARCH34`).
    Ssearch34,
    /// 128-bit Altivec Smith-Waterman (`SW_vmx128`).
    SwVmx128,
    /// 256-bit Altivec Smith-Waterman (`SW_vmx256`).
    SwVmx256,
    /// FASTA heuristic (`FASTA34`).
    Fasta34,
    /// BLAST heuristic (NCBI blastp).
    Blast,
}

impl Workload {
    /// All workloads in the paper's Table I / Figure order.
    pub const ALL: [Workload; 5] = [
        Workload::Ssearch34,
        Workload::SwVmx128,
        Workload::SwVmx256,
        Workload::Fasta34,
        Workload::Blast,
    ];

    /// The paper's label for this workload.
    pub const fn label(self) -> &'static str {
        match self {
            Workload::Ssearch34 => "SSEARCH34",
            Workload::SwVmx128 => "SW_vmx128",
            Workload::SwVmx256 => "SW_vmx256",
            Workload::Fasta34 => "FASTA34",
            Workload::Blast => "BLAST",
        }
    }

    /// Table I's description of the workload.
    pub const fn description(self) -> &'static str {
        match self {
            Workload::Ssearch34 => {
                "Best known scalar implementation of the SW algorithm (SSEARCH program)"
            }
            Workload::SwVmx128 => {
                "Data-parallel SSEARCH using the Altivec SIMD extension (128-bit)"
            }
            Workload::SwVmx256 => {
                "Data-parallel SSEARCH using a futuristic 256-bit Altivec extension"
            }
            Workload::Fasta34 => "FASTA program; heuristic strategies",
            Workload::Blast => "NCBI BLAST program (blastp); heuristic strategies",
        }
    }

    /// Table I's command-line parameters for the original program.
    pub const fn input_parameters(self) -> &'static str {
        match self {
            Workload::Blast => "blastp -d <db> -G 10 -E 1 -b 0",
            _ => "-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1",
        }
    }

    /// Whether the workload uses the vector (Altivec) unit.
    pub const fn is_simd(self) -> bool {
        matches!(self, Workload::SwVmx128 | Workload::SwVmx256)
    }

    /// The native [`Engine`] computing the same scores this traced
    /// workload reports — the bridge between the instruction-level
    /// `workloads` layer and the serving-oriented engine registry
    /// (traced runs stay separate because they emit instruction streams
    /// for the simulator; engines exist to search fast).
    pub const fn engine(self) -> Engine {
        match self {
            Workload::Ssearch34 => Engine::SwLazy,
            Workload::SwVmx128 => Engine::Vmx128,
            Workload::SwVmx256 => Engine::Vmx256,
            Workload::Fasta34 => Engine::Fasta,
            Workload::Blast => Engine::Blast,
        }
    }

    /// Runs the workload on `inputs`, producing the trace and results.
    pub fn trace(self, inputs: &StandardInputs) -> TraceBundle {
        let q = inputs.query.residues();
        let matrix = &inputs.matrix;
        let gaps = inputs.gaps;
        let keep = inputs.keep;
        match self {
            Workload::Ssearch34 => {
                let r = crate::ssearch::run(q, inputs.sw_db(), matrix, gaps, keep);
                TraceBundle::new(self, r.trace, r.hits)
            }
            Workload::SwVmx128 => {
                let r = crate::sw_simd::run::<8>(q, inputs.sw_db(), matrix, gaps, keep);
                TraceBundle::new(self, r.trace, r.hits)
            }
            Workload::SwVmx256 => {
                let r = crate::sw_simd::run::<16>(q, inputs.sw_db(), matrix, gaps, keep);
                TraceBundle::new(self, r.trace, r.hits)
            }
            Workload::Fasta34 => {
                let r = crate::fasta::run(q, &inputs.db, matrix, gaps, &inputs.fasta, keep);
                TraceBundle::new(self, r.trace, r.hits)
            }
            Workload::Blast => {
                let r = crate::blast::run(q, &inputs.db, matrix, gaps, &inputs.blast, keep);
                TraceBundle::new(self, r.trace, r.hits)
            }
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A workload's trace plus its search results.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Which workload produced this.
    pub workload: Workload,
    /// The instruction trace.
    pub trace: Trace,
    /// Ranked hits the search reported.
    pub hits: Vec<Hit>,
}

impl TraceBundle {
    fn new(workload: Workload, trace: Trace, hits: Vec<Hit>) -> Self {
        TraceBundle {
            workload,
            trace,
            hits,
        }
    }
}

/// The standard evaluation inputs: the Table II Glutathione
/// S-transferase stand-in query against the synthetic SwissProt-like
/// database, with the paper's matrix (BLOSUM62) and gap penalties
/// (10/1).
///
/// The heuristics scan the whole database; the Smith-Waterman codes run
/// on the first [`StandardInputs::sw_subset`] sequences — the same role
/// the paper's Aria trace sampling plays in keeping the SW traces
/// simulable (Table III).
#[derive(Debug, Clone)]
pub struct StandardInputs {
    /// The query sequence.
    pub query: Sequence,
    /// The database.
    pub db: Vec<Sequence>,
    /// How many database sequences the SW workloads process.
    pub sw_subset: usize,
    /// Scoring matrix (BLOSUM62).
    pub matrix: SubstitutionMatrix,
    /// Gap penalties (10/1).
    pub gaps: GapPenalties,
    /// Hit-list bound (`-b 500`).
    pub keep: usize,
    /// BLAST parameters.
    pub blast: BlastParams,
    /// FASTA parameters.
    pub fasta: FastaParams,
}

impl StandardInputs {
    /// The suite's default experiment scale: 400-sequence database
    /// (~140 k residues), SW subset of 4 sequences. Produces traces of
    /// roughly 0.5–4 M instructions per workload — large enough for
    /// realistic cache/predictor behaviour, small enough that the full
    /// figure sweeps finish in minutes.
    pub fn paper_scale() -> Self {
        Self::with_db_size(400, 4)
    }

    /// Tiny inputs for unit tests and doc examples.
    pub fn small() -> Self {
        Self::with_db_size(12, 2)
    }

    /// Custom database size (`sequences`) and SW subset.
    pub fn with_db_size(sequences: usize, sw_subset: usize) -> Self {
        let queries = QuerySet::paper();
        let query = queries.default_query().clone();
        let db = DatabaseBuilder::new()
            .seed(2006)
            .sequences(sequences)
            .homolog_template(query.clone())
            .build();
        StandardInputs {
            query,
            db: db.sequences().to_vec(),
            sw_subset,
            matrix: SubstitutionMatrix::blosum62(),
            gaps: GapPenalties::paper(),
            keep: 500,
            blast: BlastParams::default(),
            fasta: FastaParams::default(),
        }
    }

    /// The database slice the Smith-Waterman workloads process.
    pub fn sw_db(&self) -> &[Sequence] {
        &self.db[..self.sw_subset.min(self.db.len())]
    }

    /// Total residues in the full database.
    pub fn total_residues(&self) -> usize {
        self.db.iter().map(Sequence::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::OpClass;

    #[test]
    fn all_workloads_trace_on_small_inputs() {
        let inputs = StandardInputs::small();
        for w in Workload::ALL {
            let bundle = w.trace(&inputs);
            assert!(!bundle.trace.is_empty(), "{w} produced no trace");
            assert_eq!(bundle.workload, w);
        }
    }

    #[test]
    fn table_iii_ordering_holds() {
        // SSEARCH > vmx128 > vmx256 and FASTA > BLAST, as in Table III.
        let inputs = StandardInputs::small();
        let len = |w: Workload| w.trace(&inputs).trace.len();
        let ss = len(Workload::Ssearch34);
        let v128 = len(Workload::SwVmx128);
        let v256 = len(Workload::SwVmx256);
        let fasta = len(Workload::Fasta34);
        let blast = len(Workload::Blast);
        assert!(ss > v128, "ssearch {ss} !> vmx128 {v128}");
        assert!(v128 > v256, "vmx128 {v128} !> vmx256 {v256}");
        assert!(fasta > blast, "fasta {fasta} !> blast {blast}");
    }

    #[test]
    fn simd_workloads_emit_vector_ops_scalar_ones_do_not() {
        let inputs = StandardInputs::small();
        for w in Workload::ALL {
            let stats = w.trace(&inputs).trace.stats();
            if w.is_simd() {
                assert!(stats.vector_ops() > 0, "{w}");
            } else {
                assert_eq!(stats.vector_ops(), 0, "{w}");
            }
        }
    }

    #[test]
    fn sw_workloads_agree_on_hits() {
        let inputs = StandardInputs::small();
        let ss = Workload::Ssearch34.trace(&inputs);
        let v128 = Workload::SwVmx128.trace(&inputs);
        let v256 = Workload::SwVmx256.trace(&inputs);
        assert_eq!(ss.hits, v128.hits);
        assert_eq!(ss.hits, v256.hits);
    }

    #[test]
    fn branch_fractions_discriminate_simd_from_scalar() {
        let inputs = StandardInputs::small();
        let ctrl = |w: Workload| {
            let s = w.trace(&inputs).trace.stats();
            s.fraction(OpClass::Branch)
        };
        assert!(ctrl(Workload::SwVmx128) < 0.06);
        assert!(ctrl(Workload::Ssearch34) > 0.18);
    }

    #[test]
    fn labels_and_metadata() {
        assert_eq!(Workload::Blast.label(), "BLAST");
        assert!(Workload::Ssearch34.description().contains("SW"));
        assert!(Workload::Blast.input_parameters().contains("blastp"));
    }

    #[test]
    fn traced_hits_match_engine_registry_results() {
        // Every traced workload and its `engine()` counterpart must
        // report the same ranked hits through the unified search API.
        use sapa_align::engine::{Prefilter, SearchRequest};
        use sapa_bioseq::AminoAcid;

        let inputs = StandardInputs::small();
        for w in Workload::ALL {
            let bundle = w.trace(&inputs);
            // SW workloads scan the subset; heuristics the full db. The
            // traced SW runners report every positive score, the
            // heuristics apply their min_report_score.
            let db = match w {
                Workload::Ssearch34 | Workload::SwVmx128 | Workload::SwVmx256 => inputs.sw_db(),
                Workload::Fasta34 | Workload::Blast => &inputs.db,
            };
            let min_score = match w {
                Workload::Fasta34 => inputs.fasta.min_report_score,
                Workload::Blast => inputs.blast.min_report_score,
                _ => 1,
            };
            let subjects: Vec<&[AminoAcid]> = db.iter().map(Sequence::residues).collect();
            let req = SearchRequest {
                query: inputs.query.residues(),
                matrix: &inputs.matrix,
                gaps: inputs.gaps,
                top_k: inputs.keep,
                min_score,
                deadline: None,
                report_alignments: false,
                prefilter: Prefilter::Off,
            };
            let resp = w.engine().search(&req, &subjects, 1);
            let engine_hits: Vec<Hit> = resp
                .hits
                .iter()
                .map(|h| Hit {
                    seq_index: h.seq_index,
                    score: h.score,
                })
                .collect();
            assert_eq!(engine_hits, bundle.hits, "{w} vs engine {}", w.engine());
        }
    }
}
