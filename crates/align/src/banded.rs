//! Banded Smith-Waterman around a seed diagonal.
//!
//! Both heuristics rescore promising regions with dynamic programming
//! restricted to a diagonal band: FASTA's `opt` score and our stand-in
//! for BLAST's gapped extension. Restricting columns `j` to
//! `i + diag - width ..= i + diag + width` makes the cost
//! `O(len(a) · (2·width+1))` instead of `O(len(a) · len(b))`.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::sw::NEG;

/// Computes the best local alignment score restricted to the band of
/// half-width `width` around `diag`, where a cell `(i, j)` (0-based
/// residue indices) lies on diagonal `j - i`.
///
/// The result is a lower bound on the unrestricted [`crate::sw::score`]
/// and equals it when the band covers the whole matrix.
///
/// # Panics
///
/// Panics if `width` is zero (an empty band is almost certainly a bug
/// at the call site).
pub fn score(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    diag: isize,
    width: usize,
) -> i32 {
    assert!(width > 0, "band width must be positive");
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    let n = b.len() as isize;
    let w = width as isize;

    // Band-local storage indexed by offset = j - (i + diag) + width,
    // so offsets 0..=2*width. h/f hold the previous row.
    let band = 2 * width + 1;
    let mut h = vec![0i32; band];
    let mut f = vec![NEG; band];
    let mut best = 0;

    for (i, &ai) in a.iter().enumerate() {
        let i = i as isize;
        // Row i of the band covers columns j in [i+diag-w, i+diag+w].
        // Relative to row i-1 the window shifts right by one: the
        // previous row's offset for column j is (offset + 1).
        let mut h_left = 0i32; // H[i][j-1]: left neighbour, NEG outside band
        let mut e_left = NEG;
        let mut new_h = vec![NEG; band];
        let mut new_f = vec![NEG; band];
        for off in 0..band as isize {
            let j = i + diag - w + off;
            if j < 0 || j >= n {
                h_left = NEG;
                e_left = NEG;
                continue;
            }
            // Previous row, same column: offset+1 in the old arrays.
            let (h_up, f_up) = if (off + 1) < band as isize {
                (h[(off + 1) as usize], f[(off + 1) as usize])
            } else {
                (NEG, NEG)
            };
            // Previous row, previous column: same offset in old arrays.
            let h_diag_val = if i == 0 || j == 0 {
                0 // matrix boundary: alignments may start fresh
            } else {
                h[off as usize]
            };
            let h_up = if i == 0 { 0 } else { h_up };
            let h_left_eff = if j == 0 { 0 } else { h_left };

            let e_ij = (e_left - ext).max(h_left_eff - open_ext);
            let f_ij = (f_up - ext).max(h_up - open_ext);
            let diag_score = h_diag_val + matrix.score(ai, b[j as usize]);
            let h_ij = 0.max(diag_score).max(e_ij).max(f_ij);

            new_h[off as usize] = h_ij;
            new_f[off as usize] = f_ij;
            h_left = h_ij;
            e_left = e_ij;
            if h_ij > best {
                best = h_ij;
            }
        }
        h = new_h;
        f = new_f;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn full_band_equals_unrestricted() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("HEAGAWGHEE");
        let b = seq("PAWHEAE");
        let full = crate::sw::score(&a, &b, &m, g);
        let banded = score(&a, &b, &m, g, 0, a.len() + b.len());
        assert_eq!(banded, full);
    }

    #[test]
    fn band_is_lower_bound() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKVLAAGWWYHEMKVL");
        let b = seq("AAGWMKVLWYHE");
        let full = crate::sw::score(&a, &b, &m, g);
        for diag in -3isize..=3 {
            for width in [1usize, 2, 4, 8] {
                assert!(score(&a, &b, &m, g, diag, width) <= full);
            }
        }
    }

    #[test]
    fn identity_on_diagonal_zero() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKWVTFISLL");
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &a, &m, g, 0, 2), expected);
    }

    #[test]
    fn shifted_match_needs_matching_diag() {
        let m = bl62();
        let g = GapPenalties::paper();
        // b = 5 junk + a: the true alignment lies on diagonal +5.
        let a = seq("MKWVTFWWYHE");
        let b = seq("PGPGP MKWVTFWWYHE".replace(' ', "").as_str());
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &b, &m, g, 5, 2), expected);
        assert!(score(&a, &b, &m, g, 0, 1) < expected);
    }

    #[test]
    fn empty_inputs() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(score(&[], &seq("AA"), &m, g, 0, 2), 0);
        assert_eq!(score(&seq("AA"), &[], &m, g, 0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn zero_width_rejected() {
        let m = bl62();
        let _ = score(&seq("A"), &seq("A"), &m, GapPenalties::paper(), 0, 0);
    }
}
