//! Parallel simulation sweeps: many configurations replaying shared
//! traces concurrently, with results identical to a serial run.
//!
//! The paper's figures are produced by sweeping one simulator over a
//! grid of microarchitectures (width × memory hierarchy × predictor).
//! Every point is an independent pure function of `(trace, config)`,
//! so the grid is embarrassingly parallel — the same shape as the
//! batched database scans in `sapa_align::parallel`, and the same
//! work-claiming idiom is used here: scoped worker threads pull job
//! indices off a shared atomic cursor and record `(index, report)`
//! pairs, which are merged back in job order. The output is therefore
//! byte-identical for any thread count, including 1.
//!
//! Traces are shared as [`Arc<PackedTrace>`] so a five-workload,
//! 45-configuration sweep holds five compact traces in memory — not 45
//! copies, and not the 2–2.5× larger array-of-structs form.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sapa_isa::packed::PackedTrace;

use crate::config::SimConfig;
use crate::pipeline::{DecodeBuf, Simulator};
use crate::stats::SimReport;

/// One unit of sweep work: replay `trace` through `config`.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The shared input trace.
    pub trace: Arc<PackedTrace>,
    /// The microarchitecture to model.
    pub config: SimConfig,
}

impl SweepJob {
    /// Convenience constructor.
    pub fn new(trace: Arc<PackedTrace>, config: SimConfig) -> Self {
        SweepJob { trace, config }
    }

    fn run_with(&self, buf: &mut DecodeBuf) -> SimReport {
        Simulator::new(self.config.clone()).run_packed_with(&self.trace, buf)
    }

    /// Panic-isolated, validated run: the trace is checked
    /// ([`Simulator::try_run_packed`]) and any panic from an invalid
    /// configuration or a simulator bug is caught and converted into a
    /// [`JobFailure`], so one poisoned grid point cannot abort a sweep.
    pub fn try_run(&self) -> Result<SimReport, JobFailure> {
        self.try_run_with(&mut DecodeBuf::new())
    }

    /// [`SweepJob::try_run`] with a caller-owned [`DecodeBuf`]; each
    /// sweep worker thread keeps one buffer across its whole job stream.
    pub fn try_run_with(&self, buf: &mut DecodeBuf) -> Result<SimReport, JobFailure> {
        // UnwindSafe: the decode buffer is pure scratch — every fill
        // overwrites it before the engine reads it — so a job that
        // panics mid-replay cannot leave state the next job observes.
        let call = std::panic::AssertUnwindSafe(move || {
            Simulator::new(self.config.clone()).try_run_packed_with(&self.trace, buf)
        });
        match std::panic::catch_unwind(call) {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(JobFailure {
                cause: format!("trace error: {e}"),
            }),
            Err(payload) => Err(JobFailure {
                cause: panic_cause(payload),
            }),
        }
    }
}

/// Why one sweep job produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Human-readable cause: a rendered `TraceError` or panic payload.
    pub cause: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.cause)
    }
}

impl std::error::Error for JobFailure {}

fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every job and returns the reports in job order.
///
/// With `threads <= 1` (or fewer than two jobs) the jobs run serially
/// on the calling thread. Otherwise `threads` scoped workers claim job
/// indices from a shared cursor; since each job is a pure function of
/// its trace and configuration, the merged result is identical to the
/// serial run — determinism is a property of the engine, not of
/// scheduling luck. Jobs are claimed one at a time because a single
/// simulation is orders of magnitude coarser than the claim overhead.
///
/// # Panics
///
/// Propagates a panic from any job (invalid configuration, simulator
/// watchdog).
pub fn run_jobs(jobs: &[SweepJob], threads: usize) -> Vec<SimReport> {
    let threads = threads.max(1).min(jobs.len());
    if threads <= 1 {
        let mut buf = DecodeBuf::new();
        return jobs.iter().map(|j| j.run_with(&mut buf)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut partials: Vec<Vec<(usize, SimReport)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                // One decode buffer per worker, reused across every job
                // it claims from the shared Arc<PackedTrace> inputs.
                let mut buf = DecodeBuf::new();
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    local.push((i, jobs[i].run_with(&mut buf)));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("sweep worker panicked"));
        }
    });

    let mut reports: Vec<Option<SimReport>> = vec![None; jobs.len()];
    for part in partials {
        for (i, r) in part {
            reports[i] = Some(r);
        }
    }
    reports
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

/// [`run_jobs`] with per-job fault isolation: every job yields either a
/// report or a [`JobFailure`], in job order, and one corrupted trace or
/// panicking simulation never takes down the rest of the grid. Results
/// are identical for any thread count, failures included.
pub fn run_jobs_isolated(jobs: &[SweepJob], threads: usize) -> Vec<Result<SimReport, JobFailure>> {
    let threads = threads.max(1).min(jobs.len());
    if threads <= 1 {
        let mut buf = DecodeBuf::new();
        return jobs.iter().map(|j| j.try_run_with(&mut buf)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut partials: Vec<Vec<(usize, Result<SimReport, JobFailure>)>> =
        Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut buf = DecodeBuf::new();
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    local.push((i, jobs[i].try_run_with(&mut buf)));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("sweep worker panicked"));
        }
    });

    let mut outcomes: Vec<Option<Result<SimReport, JobFailure>>> = vec![None; jobs.len()];
    for part in partials {
        for (i, r) in part {
            outcomes[i] = Some(r);
        }
    }
    outcomes
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    fn test_trace() -> Arc<PackedTrace> {
        let mut t = Tracer::new();
        let mut x = 7u32;
        for i in 0..4_000u32 {
            x = x.wrapping_mul(48271).wrapping_add(11);
            t.iload(i % 64, reg::gpr(1), 0x2000_0000 + (x % 65536), 4, &[]);
            t.ialu(64 + i % 64, reg::gpr(2), &[reg::gpr(1), reg::gpr(2)]);
            t.branch(128 + i % 8, x & 3 == 0, 0, &[reg::gpr(2)]);
        }
        Arc::new(PackedTrace::from_trace(&t.finish()))
    }

    fn grid(trace: &Arc<PackedTrace>) -> Vec<SweepJob> {
        [
            SimConfig::four_way(),
            SimConfig::eight_way(),
            SimConfig::sixteen_way(),
            {
                let mut c = SimConfig::four_way();
                c.branch = crate::config::BranchConfig::perfect();
                c
            },
            {
                let mut c = SimConfig::four_way();
                c.mem = crate::config::MemConfig::meinf();
                c
            },
        ]
        .into_iter()
        .map(|cfg| SweepJob::new(Arc::clone(trace), cfg))
        .collect()
    }

    #[test]
    fn parallel_results_equal_serial_for_any_thread_count() {
        let trace = test_trace();
        let jobs = grid(&trace);
        let serial = run_jobs(&jobs, 1);
        for threads in [2, 4, 7] {
            let parallel = run_jobs(&jobs, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn reports_come_back_in_job_order() {
        let trace = test_trace();
        let jobs = grid(&trace);
        let reports = run_jobs(&jobs, 4);
        assert_eq!(reports.len(), jobs.len());
        // The 16-way run (index 2) must beat the 4-way baseline
        // (index 0); order confusion would scramble this.
        assert!(reports[2].cycles <= reports[0].cycles);
        // The ideal-memory run (index 4) has zero DL1 misses.
        assert_eq!(reports[4].dl1.misses, 0);
        assert!(reports[0].dl1.misses > 0);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let trace = test_trace();
        let jobs = vec![SweepJob::new(Arc::clone(&trace), SimConfig::four_way())];
        let reports = run_jobs(&jobs, 16);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        assert!(run_jobs(&[], 8).is_empty());
    }

    #[test]
    fn isolated_run_matches_plain_run_on_clean_jobs() {
        let trace = test_trace();
        let jobs = grid(&trace);
        let plain = run_jobs(&jobs, 2);
        let isolated = run_jobs_isolated(&jobs, 2);
        for (p, i) in plain.iter().zip(&isolated) {
            assert_eq!(Ok(p), i.as_ref());
        }
    }

    #[test]
    fn one_corrupted_trace_fails_alone() {
        let trace = test_trace();
        let bad = Arc::new(trace.with_corrupted_byte(37, 0xA5));
        let mut jobs = grid(&trace);
        jobs.insert(2, SweepJob::new(bad, SimConfig::four_way()));
        for threads in [1, 2, 4] {
            let outcomes = run_jobs_isolated(&jobs, threads);
            assert_eq!(outcomes.len(), jobs.len());
            for (i, o) in outcomes.iter().enumerate() {
                if i == 2 {
                    let failure = o.as_ref().unwrap_err();
                    assert!(failure.cause.contains("trace error"), "{failure}");
                } else {
                    assert!(o.is_ok(), "job {i} should have survived");
                }
            }
        }
    }

    #[test]
    fn invalid_configuration_is_isolated_too() {
        let trace = test_trace();
        let mut broken = SimConfig::four_way();
        broken.cpu.fetch_width = 0; // fails SimConfig::validate -> Simulator::new panics
        let jobs = vec![
            SweepJob::new(Arc::clone(&trace), SimConfig::four_way()),
            SweepJob::new(Arc::clone(&trace), broken),
        ];
        let outcomes = run_jobs_isolated(&jobs, 2);
        assert!(outcomes[0].is_ok());
        let failure = outcomes[1].as_ref().unwrap_err();
        assert!(
            failure.cause.contains("invalid simulator configuration"),
            "{failure}"
        );
    }

    #[test]
    fn packed_replay_matches_unpacked_replay() {
        let trace = test_trace();
        let sim = Simulator::new(SimConfig::four_way());
        let packed = sim.run_packed(&trace);
        let unpacked = sim.run(&trace.to_trace());
        assert_eq!(packed, unpacked);
    }
}
