//! Table III: trace sizes (dynamic instruction counts).
//!
//! Absolute counts differ from the paper's (the paper samples partial
//! traces of full-SwissProt runs with Aria; we trace complete runs on
//! the scaled synthetic database), but the ordering —
//! SSEARCH ≫ SW_vmx128 > SW_vmx256 > FASTA > BLAST on a common
//! workload — is the property the paper's Table III documents.

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_workloads::Workload;

/// Renders Table III.
pub fn run(ctx: &mut Context) -> String {
    let mut t = Table::new(&["APPLICATION", "Instruction count"]);
    for w in Workload::ALL {
        let len = ctx.trace(w).len();
        t.row_owned(vec![w.label().to_string(), len.to_string()]);
    }
    format!("{}{}", heading("Table III — trace size"), t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn ssearch_dominates() {
        let mut ctx = Context::new(Scale::Tiny);
        let _ = run(&mut ctx);
        let ss = ctx.trace(Workload::Ssearch34).len();
        let v256 = ctx.trace(Workload::SwVmx256).len();
        assert!(ss > v256);
    }
}
