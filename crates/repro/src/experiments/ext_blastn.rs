//! Extension experiment: characterize the nucleotide pipeline.
//!
//! The paper's Listing 1 shows blastn's packed-database hot loop but
//! the evaluation covers the protein tools only; its future-work
//! section calls for characterizing more applications. This experiment
//! does that for blastn: the 2-bit packed scan loads one byte per four
//! positions (load fraction drops), spends its time in shift/mask
//! unpacking (ialu fraction rises), and keeps the cascaded compare
//! branches — a profile between BLAST's and SSEARCH's.

use crate::context::{Context, Scale};
use crate::format::{f2, heading, pct, Table};
use sapa_align::blastn::BlastnParams;
use sapa_bioseq::dna::{random_dna, DnaSequence, PackedDna};
use sapa_cpu::{SimConfig, Simulator};
use sapa_isa::OpClass;
use sapa_workloads::blastn;

/// Renders the blastn characterization (instruction mix + baseline
/// simulation), scaled by the context scale.
pub fn run(ctx: &mut Context) -> String {
    let (subjects, subject_len) = match ctx.scale() {
        Scale::Tiny => (6, 400),
        Scale::Small => (30, 1_000),
        Scale::Paper => (120, 2_000),
    };

    let query = random_dna("q", 200, 2006);
    let mut db: Vec<PackedDna> = (0..subjects as u64)
        .map(|k| random_dna("s", subject_len, 3000 + k).pack())
        .collect();
    // Plant the query so hit paths execute.
    let mut hit = random_dna("h", subject_len, 9001).bases().to_vec();
    hit[37..237].copy_from_slice(query.bases());
    db.push(DnaSequence::new("hit", hit).pack());

    let traced = blastn::run(&query, &db, &BlastnParams::default(), 50);
    let stats = traced.trace.stats();
    let report = Simulator::new(SimConfig::four_way()).run(&traced.trace);

    let mut out = heading("Extension — BLASTN characterization (packed DNA, 4-way/me1)");
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["instructions".into(), stats.total().to_string()]);
    t.row_owned(vec!["ialu".into(), pct(stats.fraction(OpClass::IAlu))]);
    t.row_owned(vec!["iload".into(), pct(stats.fraction(OpClass::ILoad))]);
    t.row_owned(vec!["ctrl".into(), pct(stats.fraction(OpClass::Branch))]);
    t.row_owned(vec!["IPC".into(), f2(report.ipc())]);
    t.row_owned(vec!["bp accuracy".into(), pct(report.bp_accuracy())]);
    t.row_owned(vec!["dl1 miss".into(), pct(report.dl1.miss_rate())]);
    t.row_owned(vec!["hits found".into(), traced.hits.len().to_string()]);
    out.push_str(&t.render());
    out.push_str(
        "\nCompared to blastp: fewer loads (one packed byte per four \n\
         positions), more shift/mask ialu, exact-word table instead of \n\
         a neighborhood — so the working set is small and the profile \n\
         is compute/branch-bound rather than memory-bound.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blastn_experiment_runs_and_finds_the_plant() {
        let out = run(&mut Context::new(Scale::Tiny));
        assert!(out.contains("instructions"));
        assert!(out.contains("hits found"));
        // The planted 200-base identity must be found.
        assert!(!out.contains("hits found   0"), "{out}");
    }
}
