/root/repo/target/debug/examples/nucleotide_search-dc70073b626fc0e9.d: crates/core/../../examples/nucleotide_search.rs Cargo.toml

/root/repo/target/debug/examples/libnucleotide_search-dc70073b626fc0e9.rmeta: crates/core/../../examples/nucleotide_search.rs Cargo.toml

crates/core/../../examples/nucleotide_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
