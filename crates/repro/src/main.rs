//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale tiny|small|paper] [--threads N] [--out DIR] <experiment>...
//! repro all                 # everything, in paper order
//! repro table3 fig1 fig9    # a subset
//! repro --list              # available experiment ids
//! repro sweep workload=BLAST width=4-way,8-way mem=me1,meinf bp=real model=ooo,scoreboard
//! repro trace --workload BLAST --file blast.trc     # save a trace
//! repro dbgen --out db.fasta --sequences 400         # export the synthetic db
//! repro simulate --file blast.trc [width=8-way mem=meinf bp=perfect]
//! ```
//!
//! `--threads N` fans each experiment's configuration grid out over N
//! worker threads. Results are bit-identical to a serial run — only
//! wall-clock changes — so tables and figures stay diffable.

use std::io::Write;
use std::time::Instant;

use sapa_core::fault::{FaultPlan, FaultSite};
use sapa_repro::context::{Context, Scale};
use sapa_repro::experiments::{self, ALL_IDS};
use sapa_repro::sweep::{parse_workload, SweepSpec};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale tiny|small|paper] [--threads N] [--out DIR] <experiment>... | all | --list\n\
         \x20      repro sweep [--threads N] [--corrupt-trace NAME] [--fault-seed N] [workload=..] [width=..] [mem=..] [bp=..] [model=..]\n\
         \x20      repro trace --workload NAME --file PATH\n\
         \x20      repro simulate --file PATH [width=..] [mem=..] [bp=..] [model=..]\n\
         experiments: {}",
        ALL_IDS.join(", ")
    );
    std::process::exit(2);
}

/// Reports a runtime (non-usage) failure and exits with status 1.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Prints the run's simulation totals to stderr (stdout stays a pure
/// function of the experiment set, so serial/parallel output diffs
/// clean).
fn print_sim_summary(ctx: &Context, total: std::time::Duration) {
    let wall = ctx.sim_wall();
    let insts = ctx.sim_instructions();
    let jobs = ctx.sim_jobs();
    // Failed/quarantined jobs spent simulator wall time too, so they
    // stay in the totals: a sweep where every point failed still
    // reports its jobs instead of staying silent, and sims-per-sec is
    // not inflated by dividing only successful work by the full wall.
    if jobs == 0 {
        return;
    }
    let failed = ctx.sim_failed();
    let secs = wall.as_secs_f64().max(1e-9);
    let rate = insts as f64 / secs;
    let failed_note = if failed == 0 {
        String::new()
    } else {
        format!(", {failed} failed")
    };
    eprintln!(
        "[simulated {jobs} job{}{failed_note}: {insts} instructions in {wall:.1?} ({:.1} sims/s, {rate:.0} sim-inst/s, {} thread{}); total wall {total:.1?}]",
        if jobs == 1 { "" } else { "s" },
        jobs as f64 / secs,
        ctx.threads(),
        if ctx.threads() == 1 { "" } else { "s" },
    );
}

fn run_sweep(scale: Scale, threads: usize, args: &[String]) {
    let mut spec = SweepSpec::default();
    let mut corrupt = Vec::new();
    let mut fault_seed = 2006u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corrupt-trace" => {
                i += 1;
                let Some(name) = args.get(i) else { usage() };
                match parse_workload(name) {
                    Ok(w) => corrupt.push(w),
                    Err(msg) => {
                        eprintln!("error: {msg}");
                        std::process::exit(2);
                    }
                }
            }
            "--fault-seed" => {
                i += 1;
                fault_seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
            }
            kv => {
                if let Err(msg) = spec.apply(kv) {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let t0 = Instant::now();
    let mut ctx = Context::with_threads(scale, threads);
    for &w in &corrupt {
        ctx.corrupt_trace(
            w,
            &FaultPlan::only(fault_seed, 0.01, FaultSite::TraceCorrupt),
        );
    }
    print!("{}", spec.run(&mut ctx));
    print_sim_summary(&ctx, t0.elapsed());
    let failed = ctx.failed_jobs();
    if !failed.is_empty() {
        fail(format_args!(
            "{} of the sweep's simulation points failed (see FAILED rows above)",
            failed.len()
        ));
    }
}

fn run_trace(scale: Scale, args: &[String]) {
    let mut workload = None;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workload = args.get(i).cloned();
            }
            "--file" => {
                i += 1;
                file = args.get(i).cloned();
            }
            _ => usage(),
        }
        i += 1;
    }
    let (Some(wname), Some(path)) = (workload, file) else {
        usage()
    };
    let w = parse_workload(&wname).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let mut ctx = Context::new(scale);
    let trace = ctx.trace(w);
    let f = std::fs::File::create(&path)
        .unwrap_or_else(|e| fail(format_args!("cannot create {path}: {e}")));
    // The on-disk format is the portable array-of-structs trace.
    trace
        .to_trace()
        .write_to(std::io::BufWriter::new(f))
        .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}")));
    println!(
        "wrote {} instructions of {} to {path}",
        trace.len(),
        w.label()
    );
}

fn run_simulate(args: &[String]) {
    let mut file = None;
    let mut spec = SweepSpec::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                i += 1;
                file = args.get(i).cloned();
            }
            kv => {
                if let Err(msg) = spec.apply(kv) {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let Some(path) = file else { usage() };
    let f = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot open {path}: {e}");
        std::process::exit(2);
    });
    let trace = sapa_core::isa::Trace::read_from(std::io::BufReader::new(f)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    use sapa_core::cpu::config::BranchConfig;
    use sapa_core::cpu::Simulator;
    let mem = match spec.mems[0].as_str() {
        "me1" => sapa_core::cpu::config::MemConfig::me1(),
        "me2" => sapa_core::cpu::config::MemConfig::me2(),
        "me3" => sapa_core::cpu::config::MemConfig::me3(),
        "me4" => sapa_core::cpu::config::MemConfig::me4(),
        _ => sapa_core::cpu::config::MemConfig::meinf(),
    };
    let branch = if spec.predictors[0] == "perfect" {
        BranchConfig::perfect()
    } else {
        BranchConfig::table_vi()
    };
    let mut cfg = Context::config(&spec.widths[0], &mem, branch);
    cfg.cpu.issue_model =
        sapa_repro::sweep::parse_model(&spec.models[0]).expect("validated at apply time");
    let r = Simulator::new(cfg).run(&trace);
    println!("{r}");
}

fn run_dbgen(args: &[String]) {
    let mut out = None;
    let mut sequences = 400usize;
    let mut seed = 2006u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--sequences" => {
                i += 1;
                sequences = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(path) = out else { usage() };
    use sapa_core::bioseq::db::DatabaseBuilder;
    use sapa_core::bioseq::fasta::write_fasta;
    use sapa_core::bioseq::queries::QuerySet;
    let queries = QuerySet::paper();
    let db = DatabaseBuilder::new()
        .seed(seed)
        .sequences(sequences)
        .homolog_template(queries.default_query().clone())
        .build();
    let f = std::fs::File::create(&path)
        .unwrap_or_else(|e| fail(format_args!("cannot create {path}: {e}")));
    write_fasta(std::io::BufWriter::new(f), db.sequences())
        .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}")));
    println!(
        "wrote {} sequences ({} residues) to {path}",
        db.len(),
        db.total_residues()
    );
}

/// Extracts leading `--scale X` / `--threads N` pairs from subcommand
/// arguments.
fn split_opts(args: &[String]) -> (Scale, usize, Vec<String>) {
    let mut scale = Scale::Paper;
    let mut threads = 1usize;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--threads" => {
                i += 1;
                threads = parse_threads(args.get(i));
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    (scale, threads, rest)
}

/// Parses a `--threads` value (positive integer).
fn parse_threads(value: Option<&String>) -> usize {
    match value.and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut threads = 1usize;
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    // Subcommands with their own argument grammars.
    match args.first().map(String::as_str) {
        Some("sweep") => {
            let (scale, threads, rest) = split_opts(&args[1..]);
            run_sweep(scale, threads, &rest);
            return;
        }
        Some("trace") => {
            let (scale, _, rest) = split_opts(&args[1..]);
            run_trace(scale, &rest);
            return;
        }
        Some("simulate") => {
            run_simulate(&args[1..]);
            return;
        }
        Some("dbgen") => {
            run_dbgen(&args[1..]);
            return;
        }
        _ => {}
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("{}", ALL_IDS.join("\n"));
                return;
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--threads" => {
                i += 1;
                threads = parse_threads(args.get(i));
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            flag if flag.starts_with('-') => usage(),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    let unknown: Vec<&str> = ids
        .iter()
        .map(String::as_str)
        .filter(|id| !ALL_IDS.contains(id))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "error: unknown experiment{} {}; valid: {}",
            if unknown.len() == 1 { "" } else { "s" },
            unknown.join(", "),
            ALL_IDS.join(", ")
        );
        std::process::exit(2);
    }

    let run_start = Instant::now();
    let mut ctx = Context::with_threads(scale, threads);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(format_args!("cannot create output directory {dir}: {e}")));
    }

    for id in &ids {
        let t0 = Instant::now();
        match experiments::run_by_id(&mut ctx, id) {
            Ok(text) => {
                print!("{text}");
                eprintln!("[{id} done in {:.1?}]", t0.elapsed());
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.txt");
                    let mut f = std::fs::File::create(&path)
                        .unwrap_or_else(|e| fail(format_args!("cannot create {path}: {e}")));
                    f.write_all(text.as_bytes())
                        .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}")));
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    print_sim_summary(&ctx, run_start.elapsed());
}
