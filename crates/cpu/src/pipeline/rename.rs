//! The register alias table: architectural register → youngest in-
//! flight writer, plus the free-list accounting that makes renaming a
//! dispatch resource.
//!
//! Physical registers beyond the architectural state (32 GPR, 32 FPR,
//! 64 VR) form per-file free pools; dispatch allocates one per written
//! destination and retire returns it. True (read-after-write)
//! dependences are exactly the RAT entries that still point inside the
//! window — everything else has committed and reads the register file.

use sapa_isa::inst::Inst;
use sapa_isa::reg::RegFile;

use crate::config::CpuConfig;

const NO_WRITER: u64 = u64::MAX;

/// Index of a register file in the free-pool array.
#[inline]
pub(crate) fn file_index(file: RegFile) -> usize {
    match file {
        RegFile::Gpr => 0,
        RegFile::Fpr => 1,
        RegFile::Vr => 2,
    }
}

/// The register alias table.
#[derive(Debug)]
pub(crate) struct Rat {
    /// Sequence number of the latest dispatched writer per
    /// architectural register, or `NO_WRITER`.
    writer: [u64; 128],
    /// Spare physical registers per file (GPR, FPR, VR).
    free: [u32; 3],
}

impl Rat {
    pub fn new(cfg: &CpuConfig) -> Self {
        Rat {
            writer: [NO_WRITER; 128],
            free: [
                cfg.gpr.saturating_sub(32),
                cfg.fpr.saturating_sub(32),
                cfg.vpr.saturating_sub(64),
            ],
        }
    }

    /// Whether a physical register is available for `inst`'s
    /// destination (vacuously true for instructions without one).
    #[inline]
    pub fn can_rename(&self, inst: &Inst) -> bool {
        !inst.dst.is_some() || self.free[file_index(inst.dst.file())] > 0
    }

    /// Allocates the destination register and records `seq` as the
    /// architectural register's newest writer.
    #[inline]
    pub fn rename(&mut self, inst: &Inst, seq: u64) {
        if inst.dst.is_some() {
            self.free[file_index(inst.dst.file())] -= 1;
            self.writer[inst.dst.id() as usize] = seq;
        }
    }

    /// Returns the destination's physical register to the free pool at
    /// retire.
    #[inline]
    pub fn release(&mut self, inst: &Inst) {
        if inst.dst.is_some() {
            self.free[file_index(inst.dst.file())] += 1;
        }
    }

    /// Collects `inst`'s true dependences on in-flight producers into
    /// `deps`, returning how many there are. `head_seq` bounds the
    /// window: writers at or past it are still in flight, older ones
    /// have committed.
    #[inline]
    pub fn collect_deps(&self, inst: &Inst, head_seq: u64, deps: &mut [u64; 4]) -> u8 {
        let mut ndeps = 0u8;
        for src in inst.sources() {
            let w = self.writer[src.id() as usize];
            if w != NO_WRITER && w >= head_seq {
                deps[ndeps as usize] = w;
                ndeps += 1;
            }
        }
        ndeps
    }
}
