/root/repo/target/debug/deps/ablations-099f8c83108f04a8.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-099f8c83108f04a8.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
