/root/repo/target/debug/deps/fuzz_decode-fb969e9b4cb8957e.d: crates/isa/tests/fuzz_decode.rs

/root/repo/target/debug/deps/fuzz_decode-fb969e9b4cb8957e: crates/isa/tests/fuzz_decode.rs

crates/isa/tests/fuzz_decode.rs:
