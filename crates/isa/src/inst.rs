//! The compact trace instruction record.

use crate::reg::Reg;

/// Dynamic instruction class, following the grouping of the paper's
/// Figure 1 (instruction breakdown) and the Turandot functional-unit
/// mix of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Integer ALU operation (`ialu` in Fig. 1), executed on the FX units.
    IAlu = 0,
    /// Scalar load (`iload`), executed on the LD/ST units.
    ILoad = 1,
    /// Scalar store (`istore`), executed on the LD/ST units.
    IStore = 2,
    /// Control transfer (`ctrl`): conditional branch or jump, BR units.
    Branch = 3,
    /// Scalar floating point (grouped under `other` in Fig. 1), FP units.
    Fpu = 4,
    /// Vector load (`vload`), LD/ST units.
    VLoad = 5,
    /// Vector store (`vstore`), LD/ST units.
    VStore = 6,
    /// Simple vector integer op (`vsimple`): add/sub/max/compare, VI units.
    VSimple = 7,
    /// Vector permute/shift/merge (`vperm`), VPER units.
    VPerm = 8,
    /// Complex vector integer op (multiply, sum-across), VCMPLX units.
    VCmplx = 9,
    /// Vector floating point, VFP units.
    VFpu = 10,
    /// Anything else (system, sync, nop) — `other` in Fig. 1.
    Other = 11,
}

impl OpClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 12;

    /// All classes in discriminant order.
    pub const ALL: [OpClass; Self::COUNT] = [
        OpClass::IAlu,
        OpClass::ILoad,
        OpClass::IStore,
        OpClass::Branch,
        OpClass::Fpu,
        OpClass::VLoad,
        OpClass::VStore,
        OpClass::VSimple,
        OpClass::VPerm,
        OpClass::VCmplx,
        OpClass::VFpu,
        OpClass::Other,
    ];

    /// Stable index (0..COUNT).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a class from its index.
    pub const fn from_index(index: usize) -> Option<OpClass> {
        if index < Self::COUNT {
            Some(Self::ALL[index])
        } else {
            None
        }
    }

    /// Short lower-case label matching the paper's Figure 1 legend.
    pub const fn label(self) -> &'static str {
        match self {
            OpClass::IAlu => "ialu",
            OpClass::ILoad => "iload",
            OpClass::IStore => "istore",
            OpClass::Branch => "ctrl",
            OpClass::Fpu => "fpu",
            OpClass::VLoad => "vload",
            OpClass::VStore => "vstore",
            OpClass::VSimple => "vsimple",
            OpClass::VPerm => "vperm",
            OpClass::VCmplx => "vcmplx",
            OpClass::VFpu => "vfpu",
            OpClass::Other => "other",
        }
    }

    /// Whether the instruction accesses data memory.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(
            self,
            OpClass::ILoad | OpClass::IStore | OpClass::VLoad | OpClass::VStore
        )
    }

    /// Whether the instruction reads data memory.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, OpClass::ILoad | OpClass::VLoad)
    }

    /// Whether the instruction writes data memory.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, OpClass::IStore | OpClass::VStore)
    }

    /// Whether the instruction is a control transfer.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// Whether the instruction executes on a vector functional unit.
    #[inline]
    pub const fn is_vector(self) -> bool {
        matches!(
            self,
            OpClass::VLoad
                | OpClass::VStore
                | OpClass::VSimple
                | OpClass::VPerm
                | OpClass::VCmplx
                | OpClass::VFpu
        )
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Flag bits packed into [`Inst::flags`].
pub mod flags {
    /// The branch was taken.
    pub const TAKEN: u8 = 1 << 0;
    /// The branch is conditional (predictable); unset means an
    /// unconditional jump.
    pub const COND: u8 = 1 << 1;
    /// Bits 4..=7 hold `log2(access width in bytes)` for memory ops.
    pub const WIDTH_SHIFT: u32 = 4;
}

/// One dynamic instruction of a trace.
///
/// The record is deliberately compact (20 bytes) because traces run to
/// millions of instructions. All layout decisions are private to the
/// constructors on [`crate::trace::Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Byte address of the instruction (4-byte aligned, RISC-style).
    pub pc: u32,
    /// Effective address for memory ops; branch target for taken
    /// branches; 0 otherwise.
    pub ea: u32,
    /// Instruction class.
    pub op: OpClass,
    /// Destination register ([`Reg::NONE`] if none).
    pub dst: Reg,
    /// Source registers, padded with [`Reg::NONE`].
    pub srcs: [Reg; 3],
    /// Flag bits, see [`flags`].
    pub flags: u8,
}

impl Default for Inst {
    /// A do-nothing placeholder (`Other` at PC 0, no operands) for
    /// pre-sizing decode buffers that are overwritten before use.
    fn default() -> Self {
        Inst {
            pc: 0,
            ea: 0,
            op: OpClass::Other,
            dst: Reg::NONE,
            srcs: [Reg::NONE; 3],
            flags: 0,
        }
    }
}

impl Inst {
    /// Whether a conditional branch was taken (also true for jumps).
    #[inline]
    pub fn taken(&self) -> bool {
        self.flags & flags::TAKEN != 0
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.op.is_branch() && self.flags & flags::COND != 0
    }

    /// Memory access width in bytes (1 for non-memory ops).
    #[inline]
    pub fn width(&self) -> u32 {
        1 << (self.flags >> flags::WIDTH_SHIFT)
    }

    /// Iterates over the real (non-NONE) source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|r| r.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn class_indices_round_trip() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::from_index(c.index()), Some(c));
        }
        assert_eq!(OpClass::from_index(OpClass::COUNT), None);
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::ILoad.is_mem() && OpClass::ILoad.is_load());
        assert!(OpClass::VStore.is_mem() && OpClass::VStore.is_store());
        assert!(!OpClass::IAlu.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(OpClass::VPerm.is_vector());
        assert!(!OpClass::IAlu.is_vector());
    }

    #[test]
    fn labels_match_figure_1() {
        assert_eq!(OpClass::Branch.label(), "ctrl");
        assert_eq!(OpClass::VSimple.label(), "vsimple");
        assert_eq!(OpClass::IAlu.to_string(), "ialu");
    }

    #[test]
    fn width_encoding() {
        let mut i = Inst {
            pc: 0,
            ea: 0,
            op: OpClass::VLoad,
            dst: reg::vr(0),
            srcs: [Reg::NONE; 3],
            flags: (4 << flags::WIDTH_SHIFT), // 16-byte access
        };
        assert_eq!(i.width(), 16);
        i.flags = 5 << flags::WIDTH_SHIFT;
        assert_eq!(i.width(), 32);
    }

    #[test]
    fn sources_skips_none() {
        let i = Inst {
            pc: 0,
            ea: 0,
            op: OpClass::IAlu,
            dst: reg::gpr(0),
            srcs: [reg::gpr(1), Reg::NONE, reg::gpr(2)],
            flags: 0,
        };
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![reg::gpr(1), reg::gpr(2)]);
    }

    #[test]
    fn record_is_compact() {
        assert!(std::mem::size_of::<Inst>() <= 20);
    }
}
