//! `sapad` — the alignment search daemon.
//!
//! Binds the service from [`sapa_service::serve`] and runs until a
//! client sends the `shutdown` op (or the process is killed). Prints
//! the bound address on startup — scripts wait for that line — and a
//! final counter summary on orderly shutdown.

use std::process::ExitCode;
use std::time::Duration;

use sapa_core::fault::FaultPlan;
use sapa_service::{quiet_injected_panics, serve, QuotaConfig, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sapad [options]\n\
         \n\
         options:\n\
           --addr HOST:PORT       bind address (default 127.0.0.1:7731; port 0 = ephemeral)\n\
           --workers N            search worker threads (default 2)\n\
           --budget-cells N       admission budget in DP cells (default 256000000)\n\
           --max-queued N         max queued requests (default 64)\n\
           --quantum-cells N      DRR quantum in cells (default 4000000)\n\
           --quota-capacity N     per-tenant burst quota in cells (default: off)\n\
           --quota-refill N       per-tenant refill in cells/sec (with --quota-capacity)\n\
           --db-seqs N            synthetic corpus size (default 400)\n\
           --db-seed N            corpus seed (default 42)\n\
           --read-timeout-ms N    idle client timeout (default 10000)\n\
           --fault-rate R         arm all fault sites at rate R (chaos runs; default 0)\n\
           --fault-seed N         fault plan seed (default 2006)"
    );
    std::process::exit(2)
}

fn parse_args() -> ServiceConfig {
    let mut cfg = ServiceConfig {
        addr: "127.0.0.1:7731".to_string(),
        ..ServiceConfig::default()
    };
    let mut fault_rate = 0.0f64;
    let mut fault_seed = 2006u64;
    let mut quota_capacity: Option<u64> = None;
    let mut quota_refill = 0.0f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("sapad: {name} needs a value");
                    usage()
                })
                .clone()
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("sapad: invalid value '{v}' for {name}");
                usage()
            })
        }
        match flag {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = num("--workers", &value("--workers")),
            "--budget-cells" => {
                cfg.budget_cells = num("--budget-cells", &value("--budget-cells"));
            }
            "--max-queued" => cfg.max_queued = num("--max-queued", &value("--max-queued")),
            "--quantum-cells" => {
                cfg.quantum_cells = num("--quantum-cells", &value("--quantum-cells"));
            }
            "--quota-capacity" => {
                quota_capacity = Some(num("--quota-capacity", &value("--quota-capacity")));
            }
            "--quota-refill" => quota_refill = num("--quota-refill", &value("--quota-refill")),
            "--db-seqs" => cfg.db_seqs = num("--db-seqs", &value("--db-seqs")),
            "--db-seed" => cfg.db_seed = num("--db-seed", &value("--db-seed")),
            "--read-timeout-ms" => {
                cfg.read_timeout =
                    Duration::from_millis(num("--read-timeout-ms", &value("--read-timeout-ms")));
            }
            "--fault-rate" => fault_rate = num("--fault-rate", &value("--fault-rate")),
            "--fault-seed" => fault_seed = num("--fault-seed", &value("--fault-seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sapad: unknown flag '{other}'");
                usage()
            }
        }
        i += 1;
    }
    if fault_rate > 0.0 {
        cfg.fault_plan = FaultPlan::new(fault_seed, fault_rate);
    }
    if let Some(capacity_cells) = quota_capacity {
        cfg.quota = Some(QuotaConfig {
            capacity_cells,
            refill_cells_per_sec: quota_refill,
        });
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    if !cfg.fault_plan.is_disabled() {
        quiet_injected_panics();
    }
    let server = match serve(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sapad: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sapad listening on {} ({} sequences)",
        server.addr(),
        server.db_seqs()
    );
    let stats = server.wait();
    println!("sapad stopped: {}", stats.to_json().render());
    if stats.balances() {
        ExitCode::SUCCESS
    } else {
        eprintln!("sapad: accounting invariant violated at shutdown");
        ExitCode::FAILURE
    }
}
