//! Alignment-kernel throughput plus the unified engine sweep.
//!
//! Groups:
//!
//! * `smith_waterman` / `other_kernels` — single-pair throughput of the
//!   four Smith-Waterman machines plus global and banded alignment,
//!   complementing Table III (relative work per aligned cell);
//! * `engine_scan_200seqs` — every registry engine scanning the same
//!   200-sequence database through the unified
//!   [`AlignmentEngine`](sapa_core::align::engine::AlignmentEngine) +
//!   `parallel::engine_scores` pipeline, the apples-to-apples
//!   comparison the paper makes across its five applications.
//!
//! Outside `--test` mode the run writes `BENCH_engines.json` at the
//! repository root (same shape as `BENCH_striped.json`) with per-engine
//! cells-per-second and derived cross-engine speedups.

use sapa_bench::harness::{BenchmarkId, Criterion, Throughput};
use sapa_bench::{bench_db, bench_query, slices};
use sapa_core::align::engine::{
    AlignmentEngine, AntiDiagonalEngine, BlastEngine, Engine, FastaEngine, StripedEngine, SwEngine,
    SwLazyEngine,
};
use sapa_core::align::{banded, blast, fasta, nw, parallel, simd_sw, sw};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::SubstitutionMatrix;

fn sw_variants(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();
    let cells = (query.len() * subject.len()) as u64;

    let mut group = c.benchmark_group("smith_waterman");
    group.throughput(Throughput::Elements(cells));
    group.bench_function("scalar_gotoh", |b| {
        b.iter(|| sw::score(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lazy_f_ssearch", |b| {
        b.iter(|| sw::score_lazy_f(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("simd_vmx128", |b| {
        b.iter(|| simd_sw::score::<8>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("simd_vmx256", |b| {
        b.iter(|| simd_sw::score::<16>(query.residues(), subject, &matrix, gaps))
    });
    group.finish();
}

fn other_kernels(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("other_kernels");
    group.bench_function("needleman_wunsch", |b| {
        b.iter(|| nw::score(query.residues(), subject, &matrix, gaps))
    });
    for width in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("banded_sw", width), &width, |b, &w| {
            b.iter(|| banded::score(query.residues(), subject, &matrix, gaps, 0, w))
        });
    }
    group.bench_function("traceback_alignment", |b| {
        b.iter(|| {
            sw::align(
                &query.residues()[..64],
                &subject[..64.min(subject.len())],
                &matrix,
                gaps,
            )
        })
    });
    group.finish();
}

/// The engine sweep: every registry backend runs the identical scan
/// through `parallel::engine_scores`, serially, with its query context
/// (profile / word index / k-tuple table) built once up front — the
/// amortized serving configuration.
fn engines(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(200);
    let subjects = slices(&db);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
    let cells = query.len() as u64 * residues;

    fn bench_one<E: AlignmentEngine>(
        group: &mut sapa_bench::harness::BenchmarkGroup<'_>,
        name: &str,
        engine: &E,
        subjects: &[&[sapa_core::bioseq::AminoAcid]],
    ) {
        group.bench_function(name, |b| {
            b.iter(|| parallel::engine_scores(engine, subjects, 1))
        });
    }

    let mut group = c.benchmark_group("engine_scan_200seqs");
    group.throughput(Throughput::Elements(cells));
    let q = query.residues();
    bench_one(
        &mut group,
        Engine::Sw.name(),
        &SwEngine::new(q, &matrix, gaps),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::SwLazy.name(),
        &SwLazyEngine::new(q, &matrix, gaps),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::Striped.name(),
        &StripedEngine::<16, 8>::from_query(q, &matrix, gaps),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::Vmx128.name(),
        &AntiDiagonalEngine::<8>::new(q, &matrix, gaps),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::Vmx256.name(),
        &AntiDiagonalEngine::<16>::new(q, &matrix, gaps),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::Fasta.name(),
        &FastaEngine::new(q, &matrix, gaps, fasta::FastaParams::default()),
        &subjects,
    );
    bench_one(
        &mut group,
        Engine::Blast.name(),
        &BlastEngine::new(q, &matrix, gaps, blast::BlastParams::default()),
        &subjects,
    );
    group.finish();
}

fn write_json(c: &Criterion, query_len: usize, residues: u64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engines.json");
    let mut entries = String::new();
    for (i, r) in c
        .results()
        .iter()
        .filter(|r| r.group == "engine_scan_200seqs")
        .enumerate()
    {
        if i > 0 {
            entries.push_str(",\n");
        }
        let rate = r
            .elements_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        entries.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"cells_per_sec\": {}}}",
            r.group, r.name, r.median_ns, rate
        ));
    }
    let speedup = |fast: &str, slow: &str| -> String {
        match (
            c.result("engine_scan_200seqs", slow),
            c.result("engine_scan_200seqs", fast),
        ) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    // Residues/s of the striped scan, directly comparable to
    // BENCH_striped.json's striped_cached_profile_serial entry.
    let striped_res_per_sec = c
        .result("engine_scan_200seqs", "striped")
        .map_or("null".to_string(), |r| {
            format!("{:.1}", residues as f64 / r.median_ns * 1e9)
        });
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"engines\",\n  \"query\": \"GST-222aa\",\n  \"query_len\": {query_len},\n  \"db_residues\": {residues},\n  \"host_cpus\": {cpus},\n  \"results\": [\n{entries}\n  ],\n  \"derived\": {{\n    \"striped_residues_per_sec\": {striped_res_per_sec},\n    \"speedup_striped_vs_sw\": {},\n    \"speedup_striped_vs_vmx128\": {},\n    \"speedup_vmx256_vs_vmx128\": {},\n    \"speedup_sw_vs_sw_lazy\": {}\n  }}\n}}\n",
        speedup("striped", "sw"),
        speedup("striped", "vmx128"),
        speedup("vmx256", "vmx128"),
        speedup("sw", "sw-lazy"),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::from_args().sample_size(15);
    sw_variants(&mut c);
    other_kernels(&mut c);
    engines(&mut c);
    if !c.is_test_mode() {
        let query = bench_query();
        let db = bench_db(200);
        let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
        write_json(&c, query.len(), residues);
    }
}
