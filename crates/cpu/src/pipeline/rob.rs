//! The reorder buffer: retirement-ordered owner of all in-flight
//! instruction state.
//!
//! Entries are indexed by *sequence number* — the position of the
//! instruction in the dynamic trace. The ROB is a contiguous window
//! `head_seq .. head_seq + len`, so a sequence number maps to an entry
//! with one subtraction and numbers below `head_seq` are known-retired
//! without a lookup.

use std::collections::VecDeque;

use sapa_isa::inst::Inst;

use crate::cache::ServedBy;
use crate::config::UnitClass;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum State {
    /// Dispatched, waiting in a reservation station.
    Waiting,
    /// Issued; result available at `done_at`.
    Executing,
    /// Completed.
    Done,
}

#[derive(Debug, Clone)]
pub(crate) struct RobEntry {
    pub inst: Inst,
    pub state: State,
    pub queue: UnitClass,
    pub done_at: u64,
    pub dispatch_cycle: u64,
    pub deps: [u64; 4],
    pub ndeps: u8,
    pub served: Option<ServedBy>,
    pub tlb_miss: bool,
    pub mispredicted: bool,
    pub is_cond_branch: bool,
    /// Set when the only thing stopping issue was a full MSHR file.
    pub mshr_blocked: bool,
    /// The instruction has issued at least once: its cache access (for
    /// memory ops) and its issue-slot count have already happened, so a
    /// disambiguation replay must not repeat them.
    pub probed: bool,
    /// A load squashed by memory disambiguation: an older store
    /// resolved to the same granule after the load issued, and the load
    /// is waiting to re-issue with the store's data.
    pub replayed: bool,
}

/// The retirement-ordered window.
#[derive(Debug)]
pub(crate) struct Rob {
    entries: VecDeque<RobEntry>,
    head_seq: u64,
}

impl Rob {
    pub fn new(capacity: usize) -> Self {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            head_seq: 0,
        }
    }

    /// Sequence number of the oldest in-flight instruction (equals the
    /// number of retired instructions).
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Sequence number the next dispatched instruction will get.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.head_seq + self.entries.len() as u64
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn front(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    #[inline]
    pub fn entry(&self, seq: u64) -> Option<&RobEntry> {
        if seq < self.head_seq {
            return None; // already retired
        }
        self.entries.get((seq - self.head_seq) as usize)
    }

    #[inline]
    pub fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        if seq < self.head_seq {
            return None;
        }
        self.entries.get_mut((seq - self.head_seq) as usize)
    }

    /// A dependency is satisfied when its producer has left the window
    /// or has completed execution.
    #[inline]
    pub fn dep_ready(&self, seq: u64, cycle: u64) -> bool {
        match self.entry(seq) {
            None => true,
            Some(e) => {
                e.state == State::Done || (e.state == State::Executing && e.done_at <= cycle)
            }
        }
    }

    #[inline]
    pub fn push(&mut self, entry: RobEntry) {
        self.entries.push_back(entry);
    }

    /// Retires the head entry, returning its sequence number and state.
    #[inline]
    pub fn pop_front(&mut self) -> Option<(u64, RobEntry)> {
        let entry = self.entries.pop_front()?;
        let seq = self.head_seq;
        self.head_seq += 1;
        Some((seq, entry))
    }
}
