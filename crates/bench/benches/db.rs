//! The preprocessed-database pipeline: index construction cost and the
//! end-to-end payoff of the k-mer seed prefilter over the exhaustive
//! striped scan.
//!
//! Groups:
//!
//! * `db_build` — serializing the corpus into the on-disk format
//!   (packing, length-sorted sharding, seed-index construction) and
//!   the metadata-only open of the result;
//! * `db_search` — one full query against the indexed database through
//!   `Engine::search_indexed`: the exhaustive streaming scan, the
//!   default single-seed prefilter, and the x-drop `SeedExtend` gate,
//!   all on the adaptive striped engine.
//!
//! Before any timing the run *asserts* ranking equivalence: at the
//! significance-level `min_score` the default seed prefilter must
//! reproduce the exhaustive hit list bit for bit, so the speedup below
//! is never bought with lost hits.
//!
//! Outside `--test` mode the run writes `BENCH_db.json` at the
//! repository root: per-bench medians plus the index size, the
//! prefilter survival rate, and `prefilter_end_to_end_speedup`
//! (exhaustive median / prefiltered median — the number the CI gate
//! checks). The full corpus is 4000 sequences, ten times the suite's
//! standard 400-sequence evaluation database; `--smoke` cuts it to 800
//! sequences and writes `BENCH_db_smoke.json` (gitignored) for CI.

use std::io::Cursor;

use sapa_bench::harness::{Criterion, Throughput};
use sapa_bench::{bench_db, bench_query};
use sapa_core::align::engine::{Engine, Prefilter, SearchRequest};
use sapa_core::bioseq::index::{IndexBuilder, IndexReader};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::{Sequence, SubstitutionMatrix};

const SEED_EXTEND: Prefilter = Prefilter::SeedExtend {
    min_diag_seeds: 1,
    x: 20,
    min_extended: 15,
};

fn request<'a>(
    query: &'a [sapa_core::bioseq::AminoAcid],
    matrix: &'a SubstitutionMatrix,
    prefilter: Prefilter,
) -> SearchRequest<'a> {
    SearchRequest {
        query,
        matrix,
        gaps: GapPenalties::paper(),
        top_k: 50,
        // Deep-significance cutoff: prefilter/exhaustive equivalence
        // holds above the chance-alignment noise floor (see
        // `sapa_align::indexed`). On this corpus the strongest
        // measured word-free chance hit scored 69 (E ~ 1e-2), so 100
        // leaves a wide margin while every planted homolog (400+)
        // clears it.
        min_score: 100,
        deadline: None,
        report_alignments: false,
        prefilter,
    }
}

fn build(c: &mut Criterion, db: &[Sequence], residues: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    IndexBuilder::new().write(db, &mut bytes).unwrap();
    let index_bytes = bytes.len();

    let mut group = c.benchmark_group("db_build");
    group.throughput(Throughput::Elements(residues));
    group.bench_function("pack_shard_index", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(index_bytes);
            IndexBuilder::new().write(db, &mut out).unwrap();
            out.len()
        })
    });
    group.bench_function("open_metadata_only", |b| {
        b.iter(|| {
            IndexReader::from_reader(Cursor::new(bytes.clone()))
                .unwrap()
                .seq_count()
        })
    });
    group.finish();
    bytes
}

/// The prefilter survival rate on this corpus: scored / database size.
fn search(c: &mut Criterion, bytes: Vec<u8>, residues: u64) -> f64 {
    let matrix = SubstitutionMatrix::blosum62();
    let query = bench_query();
    let mut db = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
    let seq_count = db.seq_count();

    let off = request(query.residues(), &matrix, Prefilter::Off);
    let seeded = request(query.residues(), &matrix, Prefilter::DEFAULT_SEED);
    let extended = request(query.residues(), &matrix, SEED_EXTEND);

    // Equivalence first: the speedup below must not be bought with
    // lost hits.
    let exhaustive = Engine::Striped.search_indexed(&off, &mut db, 1).unwrap();
    let filtered = Engine::Striped.search_indexed(&seeded, &mut db, 1).unwrap();
    assert!(
        !exhaustive.hits.is_empty(),
        "bench corpus must contain significant hits"
    );
    assert_eq!(
        filtered.hits, exhaustive.hits,
        "seed prefilter lost ranked hits — the speedup would be meaningless"
    );
    let survival =
        filtered.stats.subjects as f64 / (filtered.stats.subjects + filtered.stats.pruned) as f64;
    println!(
        "corpus: {seq_count} sequences, {residues} residues; prefilter keeps \
         {}/{seq_count} subjects ({:.1}%)",
        filtered.stats.subjects,
        100.0 * survival
    );

    let mut group = c.benchmark_group("db_search");
    group.throughput(Throughput::Elements(residues));
    group.bench_function("exhaustive_striped", |b| {
        b.iter(|| {
            Engine::Striped
                .search_indexed(&off, &mut db, 1)
                .unwrap()
                .hits
                .len()
        })
    });
    group.bench_function("prefilter_seed_striped", |b| {
        b.iter(|| {
            Engine::Striped
                .search_indexed(&seeded, &mut db, 1)
                .unwrap()
                .hits
                .len()
        })
    });
    group.bench_function("prefilter_seed_extend_striped", |b| {
        b.iter(|| {
            Engine::Striped
                .search_indexed(&extended, &mut db, 1)
                .unwrap()
                .hits
                .len()
        })
    });
    group.finish();
    survival
}

fn write_json(
    c: &Criterion,
    path: &str,
    seqs: usize,
    residues: u64,
    index_bytes: usize,
    survival: f64,
) {
    let mut entries = String::new();
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let rate = r
            .elements_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        entries.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"elements_per_sec\": {}}}",
            r.group, r.name, r.median_ns, rate
        ));
    }
    let ratio = |fast: &str, slow: &str| -> String {
        match (c.result("db_search", slow), c.result("db_search", fast)) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    let build_ms = c
        .result("db_build", "pack_shard_index")
        .map_or("null".to_string(), |r| format!("{:.2}", r.median_ns / 1e6));
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"db\",\n  \"query\": \"GST-222aa\",\n  \"host_cpus\": {cpus},\n  \"db_seqs\": {seqs},\n  \"db_residues\": {residues},\n  \"index_bytes\": {index_bytes},\n  \"results\": [\n{entries}\n  ],\n  \"derived\": {{\n    \"build_ms\": {build_ms},\n    \"index_bytes_per_residue\": {:.3},\n    \"prefilter_survival_rate\": {survival:.4},\n    \"prefilter_end_to_end_speedup\": {},\n    \"seed_extend_end_to_end_speedup\": {}\n  }}\n}}\n",
        index_bytes as f64 / residues.max(1) as f64,
        ratio("prefilter_seed_striped", "exhaustive_striped"),
        ratio("prefilter_seed_extend_striped", "exhaustive_striped"),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = Criterion::from_args().sample_size(if smoke { 5 } else { 15 });
    // Full mode uses 4000 sequences — 10x the suite's standard
    // 400-sequence evaluation database.
    let db = bench_db(if smoke { 800 } else { 4000 });
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();

    let bytes = build(&mut c, &db, residues);
    let index_bytes = bytes.len();
    let survival = search(&mut c, bytes, residues);

    if !c.is_test_mode() {
        let path = if smoke {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_db_smoke.json")
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_db.json")
        };
        write_json(&c, path, db.len(), residues, index_bytes, survival);
    }
}
