//! Shared fixtures and harness for the SAPA benchmark suite.
//!
//! The actual benchmarks live in `benches/`; this library provides the
//! deterministic inputs they share so every bench measures the same
//! data, plus [`harness`] — a dependency-free Criterion-shaped timing
//! harness (the container the suite builds in has no crates.io access).

pub mod harness;

use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::{AminoAcid, Sequence};

/// The default benchmark query (Glutathione S-transferase stand-in,
/// 222 residues — the paper's reporting query).
pub fn bench_query() -> Sequence {
    QuerySet::paper().default_query().clone()
}

/// A deterministic benchmark database of `n` sequences with planted
/// homologs of the benchmark query.
pub fn bench_db(n: usize) -> Vec<Sequence> {
    let query = bench_query();
    DatabaseBuilder::new()
        .seed(0xBE7C)
        .sequences(n)
        .homolog_template(query)
        .build()
        .sequences()
        .to_vec()
}

/// Residue slices of a database (the form the search APIs take).
pub fn slices(db: &[Sequence]) -> Vec<&[AminoAcid]> {
    db.iter().map(|s| s.residues()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bench_query().len(), 222);
        assert_eq!(bench_db(5), bench_db(5));
    }
}
