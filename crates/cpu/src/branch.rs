//! Branch prediction: bimodal, gshare, and the combined "GP" predictor
//! of Table VI, plus the BTB/NFA and a standalone accuracy evaluator
//! for Figure 11.

use sapa_isa::{Inst, OpClass};

use crate::config::{BranchConfig, PredictorKind};

/// Two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAK_TAKEN: Counter2 = Counter2(2);

    #[inline]
    fn predict(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }
}

/// A dynamic direction predictor.
///
/// The trace carries actual outcomes, so callers predict and then
/// immediately train with the truth (speculative-update model).
#[derive(Debug, Clone)]
pub struct Predictor {
    kind: PredictorKind,
    mask: u32,
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    /// Chooser for the combined predictor: ≥2 selects gshare.
    meta: Vec<Counter2>,
    history: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Predictor {
    /// Builds a predictor of `kind` with `table_size` entries (power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is not a power of two.
    pub fn new(kind: PredictorKind, table_size: u32) -> Self {
        assert!(
            table_size.is_power_of_two(),
            "table size must be a power of two"
        );
        let n = table_size as usize;
        Predictor {
            kind,
            mask: table_size - 1,
            bimodal: vec![Counter2::WEAK_TAKEN; n],
            gshare: vec![Counter2::WEAK_TAKEN; n],
            meta: vec![Counter2::WEAK_TAKEN; n],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Builds the predictor described by `cfg`.
    pub fn from_config(cfg: &BranchConfig) -> Self {
        Self::new(cfg.kind, cfg.table_size)
    }

    #[inline]
    fn bim_index(&self, pc: u32) -> usize {
        (((pc >> 2) & self.mask) as usize) % self.bimodal.len()
    }

    #[inline]
    fn gs_index(&self, pc: u32) -> usize {
        ((((pc >> 2) ^ self.history) & self.mask) as usize) % self.gshare.len()
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// trains the predictor with the actual outcome `taken`. Returns
    /// whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        self.predictions += 1;
        let predicted = match self.kind {
            PredictorKind::Perfect => taken,
            PredictorKind::Bimodal => {
                let i = self.bim_index(pc);
                let p = self.bimodal[i].predict();
                self.bimodal[i].update(taken);
                p
            }
            PredictorKind::Gshare => {
                let i = self.gs_index(pc);
                let p = self.gshare[i].predict();
                self.gshare[i].update(taken);
                self.history = (self.history << 1) | taken as u32;
                p
            }
            PredictorKind::Gp => {
                let bi = self.bim_index(pc);
                let gi = self.gs_index(pc);
                let pb = self.bimodal[bi].predict();
                let pg = self.gshare[gi].predict();
                let use_gshare = self.meta[bi].predict();
                let p = if use_gshare { pg } else { pb };
                // Train the chooser toward whichever component was right.
                if pb != pg {
                    self.meta[bi].update(pg == taken);
                }
                self.bimodal[bi].update(taken);
                self.gshare[gi].update(taken);
                self.history = (self.history << 1) | taken as u32;
                p
            }
        };
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Number of predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in `[0, 1]` (1.0 when nothing was predicted).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The Next-Fetch-Address table (BTB): a set-associative cache of
/// branch PCs to targets. A taken branch whose PC misses costs the
/// configured redirect bubble (`if_nfa` trauma).
#[derive(Debug, Clone)]
pub struct NfaTable {
    sets: usize,
    assoc: usize,
    tags: Vec<u32>,
    stamps: Vec<u64>,
    clock: u64,
}

impl NfaTable {
    /// Builds a table with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(entries: u32, assoc: u32) -> Self {
        assert!(assoc > 0 && entries > 0 && entries.is_multiple_of(assoc));
        let sets = (entries / assoc) as usize;
        NfaTable {
            sets,
            assoc: assoc as usize,
            tags: vec![u32::MAX; (entries) as usize],
            stamps: vec![0; entries as usize],
            clock: 0,
        }
    }

    /// Looks up the branch at `pc`, inserting it on a miss. Returns
    /// `true` on hit.
    pub fn lookup_insert(&mut self, pc: u32) -> bool {
        let key = pc >> 2;
        let set = (key as usize) % self.sets;
        let base = set * self.assoc;
        self.clock += 1;
        for w in 0..self.assoc {
            if self.tags[base + w] == key {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == u32::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = key;
        self.stamps[base + victim] = self.clock;
        false
    }
}

/// Figure 11's standalone experiment: runs every conditional branch of
/// `insts` through a predictor of each requested size and strategy,
/// without the rest of the pipeline, and reports accuracy.
pub fn standalone_accuracy(insts: &[Inst], kind: PredictorKind, table_size: u32) -> f64 {
    standalone_accuracy_iter(insts.iter().copied(), kind, table_size)
}

/// Streaming form of [`standalone_accuracy`]: consumes any instruction
/// iterator, so a [`sapa_isa::PackedTrace`] can be replayed through the
/// predictor directly without unpacking to a `Vec<Inst>` first.
pub fn standalone_accuracy_iter(
    insts: impl IntoIterator<Item = Inst>,
    kind: PredictorKind,
    table_size: u32,
) -> f64 {
    let mut p = Predictor::new(kind, table_size);
    for inst in insts {
        if inst.op == OpClass::Branch && inst.is_cond_branch() {
            p.predict_and_update(inst.pc, inst.taken());
        }
    }
    p.accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::trace::Tracer;

    #[test]
    fn perfect_never_missses() {
        let mut p = Predictor::new(PredictorKind::Perfect, 16);
        for i in 0..100 {
            assert!(p.predict_and_update(4 * i, i % 3 == 0));
        }
        assert_eq!(p.accuracy(), 1.0);
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Predictor::new(PredictorKind::Bimodal, 1024);
        for _ in 0..1000 {
            p.predict_and_update(0x100, true);
        }
        assert!(p.accuracy() > 0.99);
    }

    #[test]
    fn bimodal_fails_on_alternation() {
        let mut p = Predictor::new(PredictorKind::Bimodal, 1024);
        let mut taken = false;
        for _ in 0..1000 {
            taken = !taken;
            p.predict_and_update(0x100, taken);
        }
        assert!(p.accuracy() < 0.7, "accuracy {}", p.accuracy());
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = Predictor::new(PredictorKind::Gshare, 1024);
        let mut taken = false;
        for _ in 0..1000 {
            taken = !taken;
            p.predict_and_update(0x100, taken);
        }
        assert!(p.accuracy() > 0.9, "accuracy {}", p.accuracy());
    }

    #[test]
    fn gp_at_least_tracks_the_better_component_on_patterns() {
        // Alternation: gshare wins; GP should converge near it.
        let mut gp = Predictor::new(PredictorKind::Gp, 1024);
        let mut taken = false;
        for _ in 0..2000 {
            taken = !taken;
            gp.predict_and_update(0x100, taken);
        }
        assert!(gp.accuracy() > 0.85, "gp accuracy {}", gp.accuracy());
    }

    #[test]
    fn random_outcomes_are_hard_for_everyone() {
        // A data-dependent pseudo-random pattern: accuracy should be
        // well below the biased-branch regime — the paper's explanation
        // for SSEARCH/FASTA/BLAST prediction rates.
        let mut p = Predictor::new(PredictorKind::Gp, 16 * 1024);
        let mut x = 0x12345u32;
        for _ in 0..20_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            p.predict_and_update(0x200, (x >> 16) & 1 == 1);
        }
        assert!(p.accuracy() < 0.65, "accuracy {}", p.accuracy());
    }

    #[test]
    fn nfa_hits_after_insert() {
        let mut nfa = NfaTable::new(64, 4);
        assert!(!nfa.lookup_insert(0x400));
        assert!(nfa.lookup_insert(0x400));
    }

    #[test]
    fn nfa_capacity_evicts() {
        let mut nfa = NfaTable::new(4, 1); // 4 sets, direct-mapped
        assert!(!nfa.lookup_insert(0x0));
        assert!(!nfa.lookup_insert(0x40)); // same set (pc>>2 = 16, %4 = 0)
        assert!(!nfa.lookup_insert(0x0));
    }

    #[test]
    fn standalone_matches_direct_use() {
        let mut t = Tracer::new();
        for i in 0..500u32 {
            t.branch(3, i % 2 == 0, 0, &[]);
        }
        let tr = t.finish();
        let acc = standalone_accuracy(tr.insts(), PredictorKind::Gshare, 256);
        let mut p = Predictor::new(PredictorKind::Gshare, 256);
        for i in 0..500u32 {
            p.predict_and_update(sapa_isa::trace::CODE_BASE + 12, i % 2 == 0);
        }
        assert!((acc - p.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn larger_tables_do_not_hurt_aliased_branches() {
        // Two branches with opposite biases aliasing in a tiny table
        // but not in a big one.
        let run = |size: u32| {
            let mut p = Predictor::new(PredictorKind::Bimodal, size);
            for _ in 0..2000 {
                p.predict_and_update(0x104, true);
                p.predict_and_update(0x104 + 8, false); // aliases when size = 2
            }
            p.accuracy()
        };
        assert!(run(4096) >= run(2) - 1e-9);
    }
}
