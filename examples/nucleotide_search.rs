//! Nucleotide search over a 2-bit packed database — the data layout of
//! the paper's Listing 1 (`READDB_UNPACK_BASE`, four bases per byte).
//!
//! ```text
//! cargo run --release --example nucleotide_search
//! ```

use sapa_core::align::blastn::{self, BlastnParams, NtWordIndex};
use sapa_core::bioseq::dna::{random_dna, DnaSequence, PackedDna};

fn main() {
    // A 120-base query and a small packed database with the query
    // planted into one subject (plus its reverse complement in
    // another — found via the standard both-strands trick).
    let query = random_dna("query", 120, 42);

    let mut subjects: Vec<PackedDna> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for k in 0..8u64 {
        subjects.push(random_dna(format!("bg{k}"), 3_000, 100 + k).pack());
        names.push(format!("bg{k}"));
    }
    let mut forward = random_dna("fwd", 3_000, 900).bases().to_vec();
    forward[1000..1120].copy_from_slice(query.bases());
    subjects.push(DnaSequence::new("fwd", forward).pack());
    names.push("fwd (query planted)".into());

    let rc = query.reverse_complement();
    let mut reverse = random_dna("rev", 3_000, 901).bases().to_vec();
    reverse[2000..2120].copy_from_slice(rc.bases());
    subjects.push(DnaSequence::new("rev", reverse).pack());
    names.push("rev (reverse-complement planted)".into());

    let total_bases: usize = subjects.iter().map(PackedDna::len).sum();
    let packed_bytes: usize = subjects.iter().map(|s| s.bytes().len()).sum();
    println!(
        "database: {} subjects, {} bases packed into {} bytes (4 bases/byte)\n",
        subjects.len(),
        total_bases,
        packed_bytes
    );

    let params = BlastnParams::default();

    // Forward strand.
    let idx = NtWordIndex::build(&query, params.word_len);
    let fwd_hits = blastn::search(&idx, subjects.iter(), &params, 10);
    println!("forward-strand hits:");
    for hit in fwd_hits.hits() {
        println!("  {:<30} score {}", names[hit.seq_index], hit.score);
    }

    // Reverse strand: search with the query's reverse complement.
    let idx_rc = NtWordIndex::build(&query.reverse_complement(), params.word_len);
    let rev_hits = blastn::search(&idx_rc, subjects.iter(), &params, 10);
    println!("reverse-strand hits:");
    for hit in rev_hits.hits() {
        println!("  {:<30} score {}", names[hit.seq_index], hit.score);
    }
}
