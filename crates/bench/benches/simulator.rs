//! Cycle-accurate-simulator throughput: trace generation per workload
//! and simulated instructions per second for the configurations the
//! figures sweep. One entry per paper artifact family (Figs. 2–10 all
//! reduce to these pipelines).

use sapa_bench::harness::{BenchmarkId, Criterion, Throughput};
use sapa_bench::{criterion_group, criterion_main};
use sapa_core::cpu::config::{BranchConfig, CpuConfig, MemConfig, SimConfig};
use sapa_core::cpu::Simulator;
use sapa_core::workloads::{StandardInputs, Workload};

fn trace_generation(c: &mut Criterion) {
    let inputs = StandardInputs::with_db_size(60, 2);
    let mut group = c.benchmark_group("trace_generation");
    for w in Workload::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(w.label()), &w, |b, &w| {
            b.iter(|| w.trace(&inputs))
        });
    }
    group.finish();
}

fn simulation_throughput(c: &mut Criterion) {
    let inputs = StandardInputs::with_db_size(60, 2);
    let mut group = c.benchmark_group("simulate_4way_me1");
    for w in Workload::ALL {
        let bundle = w.trace(&inputs);
        group.throughput(Throughput::Elements(bundle.trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(w.label()),
            &bundle,
            |b, bundle| b.iter(|| Simulator::new(SimConfig::four_way()).run(&bundle.trace)),
        );
    }
    group.finish();
}

fn simulation_configs(c: &mut Criterion) {
    // The config families the figures sweep, run on one mid-size trace.
    let inputs = StandardInputs::with_db_size(60, 2);
    let bundle = Workload::Fasta34.trace(&inputs);

    let mut group = c.benchmark_group("simulate_config_sweeps");
    group.throughput(Throughput::Elements(bundle.trace.len() as u64));
    for (name, cpu) in [
        ("fig3_4way", CpuConfig::four_way()),
        ("fig3_8way", CpuConfig::eight_way()),
        ("fig3_16way", CpuConfig::sixteen_way()),
    ] {
        let cfg = SimConfig {
            cpu,
            mem: MemConfig::me1(),
            branch: BranchConfig::table_vi(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| Simulator::new(cfg.clone()).run(&bundle.trace))
        });
    }
    for (name, mem) in [
        ("fig5_tiny_dl1", MemConfig::me1()),
        ("fig5_ideal", MemConfig::meinf()),
    ] {
        let cfg = SimConfig {
            cpu: CpuConfig::four_way(),
            mem,
            branch: BranchConfig::table_vi(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| Simulator::new(cfg.clone()).run(&bundle.trace))
        });
    }
    let perfect = SimConfig {
        cpu: CpuConfig::four_way(),
        mem: MemConfig::me1(),
        branch: BranchConfig::perfect(),
    };
    group.bench_with_input(
        BenchmarkId::from_parameter("fig9_perfect_bp"),
        &perfect,
        |b, cfg| b.iter(|| Simulator::new(cfg.clone()).run(&bundle.trace)),
    );
    group.finish();
}

fn standalone_predictors(c: &mut Criterion) {
    // Figure 11's pipeline: predictor-only replay of a trace.
    use sapa_core::cpu::branch::standalone_accuracy;
    use sapa_core::cpu::config::PredictorKind;
    let inputs = StandardInputs::with_db_size(60, 2);
    let bundle = Workload::Ssearch34.trace(&inputs);

    let mut group = c.benchmark_group("fig11_standalone_bp");
    group.throughput(Throughput::Elements(bundle.trace.len() as u64));
    for kind in [
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
        PredictorKind::Gp,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| standalone_accuracy(bundle.trace.insts(), kind, 16 * 1024)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = trace_generation, simulation_throughput, simulation_configs, standalone_predictors
}
criterion_main!(benches);
