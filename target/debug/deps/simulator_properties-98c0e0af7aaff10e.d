/root/repo/target/debug/deps/simulator_properties-98c0e0af7aaff10e.d: crates/core/../../tests/simulator_properties.rs

/root/repo/target/debug/deps/simulator_properties-98c0e0af7aaff10e: crates/core/../../tests/simulator_properties.rs

crates/core/../../tests/simulator_properties.rs:
