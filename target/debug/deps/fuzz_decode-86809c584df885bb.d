/root/repo/target/debug/deps/fuzz_decode-86809c584df885bb.d: crates/isa/tests/fuzz_decode.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_decode-86809c584df885bb.rmeta: crates/isa/tests/fuzz_decode.rs Cargo.toml

crates/isa/tests/fuzz_decode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
