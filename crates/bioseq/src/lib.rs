//! Biological sequence substrate for the SAPA workload-characterization
//! suite.
//!
//! This crate provides everything the alignment applications need that the
//! original paper took from the biology world:
//!
//! * a typed amino-acid [`alphabet`] (the 24-symbol NCBI protein alphabet),
//! * owned [`seq::Sequence`]s and streaming [`fasta`] I/O,
//! * substitution [`matrix::SubstitutionMatrix`] support including the
//!   canonical BLOSUM62 table used throughout the paper,
//! * a deterministic [`db`] generator that synthesizes a SwissProt-like
//!   protein database (background composition, log-normal lengths, planted
//!   homologs), and
//! * the paper's Table II [`queries`] reproduced at the same lengths.
//!
//! # Quick example
//!
//! ```
//! use sapa_bioseq::db::DatabaseBuilder;
//! use sapa_bioseq::queries::QuerySet;
//!
//! let queries = QuerySet::paper();
//! let gst = queries.by_family("Glutathione S-transferase").unwrap();
//! assert_eq!(gst.len(), 222);
//!
//! let db = DatabaseBuilder::new().seed(42).sequences(100).build();
//! assert_eq!(db.len(), 100);
//! assert!(db.total_residues() > 10_000);
//! ```

pub mod alphabet;
pub mod compose;
pub mod db;
pub mod dna;
pub mod fasta;
pub mod index;
pub mod matrix;
pub mod profile;
pub mod queries;
pub mod rng;
pub mod seq;

pub use alphabet::AminoAcid;
pub use db::{Database, DatabaseBuilder};
pub use matrix::SubstitutionMatrix;
pub use profile::{ProfileCache, QueryProfile};
pub use seq::Sequence;

/// Errors produced by this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A byte could not be interpreted as an amino-acid code.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Zero-based position in the input at which it occurred.
        position: usize,
    },
    /// A FASTA stream was structurally malformed.
    MalformedFasta {
        /// Human-readable description of the problem.
        reason: String,
        /// One-based line number of the problem, if known.
        line: Option<usize>,
    },
    /// An on-disk database index was corrupt or structurally invalid.
    InvalidIndex {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidResidue { byte, position } => {
                write!(
                    f,
                    "invalid amino-acid byte {byte:#04x} ({:?}) at position {position}",
                    *byte as char
                )
            }
            Error::MalformedFasta { reason, line } => match line {
                Some(line) => write!(f, "malformed FASTA at line {line}: {reason}"),
                None => write!(f, "malformed FASTA: {reason}"),
            },
            Error::InvalidIndex { reason } => write!(f, "invalid database index: {reason}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
