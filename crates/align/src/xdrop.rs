//! Gapped X-drop extension (Zhang et al. / NCBI `ALIGN_EX`): the
//! dynamic-programming extension real gapped BLAST runs from a seed,
//! exploring only cells whose score stays within `x` of the running
//! best. Provided as the higher-fidelity alternative to the banded
//! rescoring [`crate::blast`] uses by default; the ablation benches
//! compare the two.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::sw::NEG;

/// Score of the best gapped extension *rightwards* from the origin:
/// the maximum, over all `(i, j)`, of the best alignment of prefixes
/// `a[..i]` / `b[..j]` that starts exactly at the origin. Cells whose
/// score falls more than `x` below the running best are pruned, so the
/// explored region adapts to the data instead of using a fixed band.
pub fn extend_right(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    x: i32,
) -> i32 {
    assert!(x >= 0, "X-drop must be non-negative");
    let n = b.len();
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    // Row 0: gaps in `a` along `b`.
    let mut h: Vec<i32> = (0..=n).map(|j| -gaps.gap_cost(j as u32)).collect();
    let mut f = vec![NEG; n + 1];
    let mut best = 0i32;

    // Live column window [lo, hi] of the previous row.
    let mut lo = 0usize;
    let mut hi = n.min((x / ext.max(1)) as usize + 1);
    // Prune row 0 by the drop condition.
    while hi > 0 && h[hi] < -x {
        hi -= 1;
    }

    for (i, &ai) in a.iter().enumerate() {
        let mut new_h = vec![NEG; n + 1];
        let mut new_f = vec![NEG; n + 1];
        // Column 0: vertical gap from the origin.
        if lo == 0 {
            new_f[0] = (f[0] - ext).max(h[0] - open_ext);
            new_h[0] = -gaps.gap_cost((i + 1) as u32);
        }

        let row_hi = (hi + 1).min(n);
        let mut e_left = NEG;
        let mut any_live = false;
        let (mut next_lo, mut next_hi) = (usize::MAX, 0usize);
        for j in lo.max(1)..=row_hi {
            let h_left = new_h[j - 1];
            let e_ij = (e_left - ext).max(h_left - open_ext);
            let f_ij = (f[j] - ext).max(h[j] - open_ext);
            let diag = if j >= 1 { h[j - 1] } else { NEG };
            let v = (diag + matrix.score(ai, b[j - 1])).max(e_ij).max(f_ij);
            new_h[j] = v;
            new_f[j] = f_ij;
            e_left = e_ij;
            if v > best {
                best = v;
            }
            if v >= best - x || e_ij >= best - x || f_ij >= best - x {
                any_live = true;
                if j < next_lo {
                    next_lo = j;
                }
                if j > next_hi {
                    next_hi = j;
                }
            }
        }
        if !any_live {
            break;
        }
        // Keep one column of fringe on the left so diagonal moves into
        // the live region stay reachable.
        lo = next_lo.saturating_sub(1);
        hi = next_hi;
        h = new_h;
        f = new_f;
    }
    best
}

/// Score of the best gapped alignment through a seed word match at
/// query offset `qi`, subject offset `sj` (word starts, `word_len`
/// long): seed score + gapped X-drop extensions in both directions.
#[allow(clippy::too_many_arguments)]
pub fn extend_seed(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    qi: usize,
    sj: usize,
    word_len: usize,
    x: i32,
) -> i32 {
    let seed: i32 = (0..word_len)
        .map(|k| matrix.score(a[qi + k], b[sj + k]))
        .sum();

    // Rightwards from the word end.
    let right = extend_right(&a[qi + word_len..], &b[sj + word_len..], matrix, gaps, x);

    // Leftwards: extend right over the reversed prefixes.
    let ra: Vec<AminoAcid> = a[..qi].iter().rev().copied().collect();
    let rb: Vec<AminoAcid> = b[..sj].iter().rev().copied().collect();
    let left = extend_right(&ra, &rb, matrix, gaps, x);

    seed + right + left
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    /// Oracle: unbounded "extension" score (best prefix-vs-prefix
    /// alignment anchored at the origin), full DP.
    fn naive_extend(
        a: &[AminoAcid],
        b: &[AminoAcid],
        m: &SubstitutionMatrix,
        g: GapPenalties,
    ) -> i32 {
        let (la, lb) = (a.len(), b.len());
        let idx = |i: usize, j: usize| i * (lb + 1) + j;
        let oe = g.open + g.extend;
        let ex = g.extend;
        let mut h = vec![NEG; (la + 1) * (lb + 1)];
        let mut e = vec![NEG; (la + 1) * (lb + 1)];
        let mut f = vec![NEG; (la + 1) * (lb + 1)];
        h[0] = 0;
        for j in 1..=lb {
            e[idx(0, j)] = -g.gap_cost(j as u32);
            h[idx(0, j)] = e[idx(0, j)];
        }
        for i in 1..=la {
            f[idx(i, 0)] = -g.gap_cost(i as u32);
            h[idx(i, 0)] = f[idx(i, 0)];
        }
        let mut best = 0;
        for i in 1..=la {
            for j in 1..=lb {
                e[idx(i, j)] = (e[idx(i, j - 1)] - ex).max(h[idx(i, j - 1)] - oe);
                f[idx(i, j)] = (f[idx(i - 1, j)] - ex).max(h[idx(i - 1, j)] - oe);
                h[idx(i, j)] = (h[idx(i - 1, j - 1)] + m.score(a[i - 1], b[j - 1]))
                    .max(e[idx(i, j)])
                    .max(f[idx(i, j)]);
                best = best.max(h[idx(i, j)]);
            }
        }
        best
    }

    #[test]
    fn huge_x_matches_exhaustive_dp() {
        let m = bl62();
        let g = GapPenalties::paper();
        let cases = [
            ("MKWVTFISLL", "MKWVTFISLL"),
            ("MKWVTFISLL", "MKWVTAFISLL"),
            ("HEAGAWGHEE", "PAWHEAE"),
            ("ACDEFG", "ACDEFGHIKL"),
            ("WWWW", "AAAA"),
        ];
        for (x, y) in cases {
            let a = seq(x);
            let b = seq(y);
            assert_eq!(
                extend_right(&a, &b, &m, g, 10_000),
                naive_extend(&a, &b, &m, g),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn small_x_never_exceeds_large_x() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let b = seq("MKWVTFISLLPPPPFLFSSAYSRGVFRR");
        let tight = extend_right(&a, &b, &m, g, 5);
        let loose = extend_right(&a, &b, &m, g, 10_000);
        assert!(tight <= loose, "{tight} > {loose}");
        assert!(loose > 0);
    }

    #[test]
    fn seed_extension_recovers_identity() {
        let m = bl62();
        let g = GapPenalties::paper();
        let core = seq("MKWVTFISLLFLF");
        let a = core.clone();
        let b = seq(&format!("PGP{}NDN", "MKWVTFISLLFLF"));
        // Seed at word (0, 3), length 3.
        let score = extend_seed(&a, &b, &m, g, 0, 3, 3, 40);
        let self_score: i32 = core.iter().map(|&x| m.score(x, x)).sum();
        assert!(score >= self_score, "{score} < {self_score}");
    }

    #[test]
    fn gapped_extension_beats_ungapped_when_an_indel_interrupts() {
        let m = bl62();
        let g = GapPenalties::paper();
        // Subject = query with one inserted residue in the middle.
        let a = seq("MKWVTFISLLWWYHEAGAWGHEE");
        let b = seq("MKWVTFISLLPWWYHEAGAWGHEE");
        let gapped = extend_seed(&a, &b, &m, g, 0, 0, 3, 40);
        let ungapped = crate::blast::ungapped_extend(&a, &b, &m, 0, 0, 40);
        assert!(gapped > ungapped, "gapped {gapped} !> ungapped {ungapped}");
    }

    #[test]
    fn empty_suffixes() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(extend_right(&[], &seq("ACD"), &m, g, 20), 0);
        assert_eq!(extend_right(&seq("ACD"), &[], &m, g, 20), 0);
    }

    #[test]
    #[should_panic(expected = "X-drop")]
    fn negative_x_rejected() {
        let m = bl62();
        let _ = extend_right(&[], &[], &m, GapPenalties::paper(), -1);
    }
}
