//! A FASTA-like heuristic database search.
//!
//! Follows the classic FASTA pipeline (Pearson & Lipman 1988) that the
//! paper's `fasta34` workload implements:
//!
//! 1. **k-tuple lookup** — a table of query positions for every length-
//!    `ktup` word; each identical word match in the subject marks a
//!    diagonal.
//! 2. **Diagonal scoring (`init1`)** — per-diagonal accumulation finds
//!    the best run of word matches; the ten best regions are rescored
//!    with the substitution matrix.
//! 3. **Region joining (`initn`)** — compatible regions on nearby
//!    diagonals are chained with a gap-join penalty.
//! 4. **Banded optimization (`opt`)** — a banded Smith-Waterman around
//!    the best region's diagonal produces the reported score.
//!
//! The pipeline's branchy bookkeeping (per-diagonal run tracking, region
//! selection) is what gives FASTA its branch-predictor-limited profile
//! in the paper.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::banded;
use crate::result::{Hit, SearchResults, TopK};

/// Tunable parameters; defaults follow `fasta34 -p` conventions for
/// protein search (ktup 2, banded opt of half-width 16).
#[derive(Debug, Clone, PartialEq)]
pub struct FastaParams {
    /// Word length; protein FASTA uses 1 or 2.
    pub ktup: usize,
    /// Number of top regions rescored per subject (FASTA keeps 10).
    pub max_regions: usize,
    /// Penalty for joining regions on different diagonals (`initn`).
    pub join_penalty: i32,
    /// Half-width of the banded `opt` rescoring.
    pub band_width: usize,
    /// `initn` value required before `opt` rescoring happens.
    pub opt_threshold: i32,
    /// Minimum reported score.
    pub min_report_score: i32,
}

impl Default for FastaParams {
    fn default() -> Self {
        FastaParams {
            ktup: 2,
            max_regions: 10,
            join_penalty: 20,
            band_width: 16,
            opt_threshold: 24,
            min_report_score: 25,
        }
    }
}

/// Query k-tuple lookup table: `positions(word)` lists the query offsets
/// where `word` occurs.
#[derive(Debug, Clone)]
pub struct KtupIndex {
    ktup: usize,
    starts: Vec<u32>,
    positions: Vec<u32>,
    query: Vec<AminoAcid>,
}

impl KtupIndex {
    /// Builds the lookup table for `query`.
    ///
    /// # Panics
    ///
    /// Panics if `ktup` is 0 or greater than 3 (table size 20^ktup).
    pub fn build(query: &[AminoAcid], ktup: usize) -> Self {
        assert!((1..=3).contains(&ktup), "ktup must be 1..=3");
        let table = 20usize.pow(ktup as u32);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); table];
        if query.len() >= ktup {
            for i in 0..=(query.len() - ktup) {
                if let Some(w) = pack(query, i, ktup) {
                    buckets[w].push(i as u32);
                }
            }
        }
        let mut starts = Vec::with_capacity(table + 1);
        let mut positions = Vec::new();
        starts.push(0u32);
        for bucket in &buckets {
            positions.extend_from_slice(bucket);
            starts.push(positions.len() as u32);
        }
        KtupIndex {
            ktup,
            starts,
            positions,
            query: query.to_vec(),
        }
    }

    /// Word length of the table.
    pub fn ktup(&self) -> usize {
        self.ktup
    }

    /// Query offsets at which `word` occurs.
    #[inline]
    pub fn lookup(&self, word: usize) -> &[u32] {
        let lo = self.starts[word] as usize;
        let hi = self.starts[word + 1] as usize;
        &self.positions[lo..hi]
    }

    /// The indexed query.
    pub fn query(&self) -> &[AminoAcid] {
        &self.query
    }
}

/// Packs a standard-residue word of length `ktup` starting at `s[i]`.
#[inline]
pub fn pack(s: &[AminoAcid], i: usize, ktup: usize) -> Option<usize> {
    if i + ktup > s.len() {
        return None;
    }
    let mut word = 0usize;
    for k in 0..ktup {
        let aa = s[i + k];
        if !aa.is_standard() {
            return None;
        }
        word = word * 20 + aa.index();
    }
    Some(word)
}

/// One scored diagonal region (an `init1` candidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Diagonal `j - i` of the region.
    pub diag: isize,
    /// Matrix-rescored segment score.
    pub score: i32,
    /// Subject start of the region.
    pub start: usize,
    /// Subject end (inclusive) of the region.
    pub end: usize,
}

/// Heuristic scores of one subject, mirroring FASTA's reported triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FastaScores {
    /// Best single-region score.
    pub init1: i32,
    /// Best joined-region score.
    pub initn: i32,
    /// Banded-optimization score (0 when below the `opt` threshold).
    pub opt: i32,
}

/// Scores one subject against the indexed query.
pub fn score_subject(
    index: &KtupIndex,
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &FastaParams,
) -> FastaScores {
    let query = index.query();
    let m = query.len();
    let n = subject.len();
    let ktup = index.ktup();
    if m < ktup || n < ktup {
        return FastaScores::default();
    }

    // Phase 1+2: diagonal run accumulation. For each diagonal, track a
    // running score of word matches with decay for gaps between them,
    // FASTA's "dot on diagonal" scan.
    let ndiag = m + n;
    // last word-match end and running run score per diagonal
    let mut run_score = vec![0i32; ndiag];
    let mut run_start = vec![0usize; ndiag];
    let mut last_end = vec![-1i32; ndiag];
    let mut regions: Vec<Region> = Vec::new();
    const WORD_BONUS: i32 = 4; // score per matched word in the scan phase
    const GAP_DECAY: i32 = 1; // per-residue decay between matches

    for j in 0..=(n - ktup) {
        let Some(word) = pack(subject, j, ktup) else {
            continue;
        };
        for &qi in index.lookup(word) {
            let i = qi as usize;
            let d = j + m - i;
            let jj = j as i32;
            let gap = jj - last_end[d];
            let decayed = run_score[d] - gap.max(0) * GAP_DECAY;
            if decayed <= 0 {
                run_score[d] = WORD_BONUS;
                run_start[d] = j;
            } else {
                run_score[d] = decayed + WORD_BONUS;
            }
            last_end[d] = jj + ktup as i32;
            // Track candidate regions as they peak.
            if run_score[d] >= WORD_BONUS * 2 {
                regions.push(Region {
                    diag: j as isize - i as isize,
                    score: run_score[d],
                    start: run_start[d],
                    end: j + ktup - 1,
                });
            }
        }
    }
    if regions.is_empty() {
        return FastaScores::default();
    }

    // Keep the best region per diagonal, then the overall top
    // `max_regions` — FASTA's "savemax" bookkeeping.
    regions.sort_by(|a, b| {
        a.diag
            .cmp(&b.diag)
            .then(b.score.cmp(&a.score))
            .then(a.start.cmp(&b.start))
    });
    regions.dedup_by_key(|r| r.diag);
    regions.sort_by(|a, b| b.score.cmp(&a.score).then(a.diag.cmp(&b.diag)));
    regions.truncate(params.max_regions);

    // Rescore each region with the matrix over its subject span.
    for r in regions.iter_mut() {
        let mut score = 0i32;
        let mut best = 0i32;
        #[allow(clippy::needless_range_loop)] // index pairs with the diagonal offset
        for j in r.start..=r.end {
            let i = j as isize - r.diag;
            if i < 0 || i as usize >= m {
                continue;
            }
            score = (score + matrix.score(query[i as usize], subject[j])).max(0);
            if score > best {
                best = score;
            }
        }
        r.score = best;
    }
    regions.sort_by(|a, b| b.score.cmp(&a.score).then(a.diag.cmp(&b.diag)));

    let init1 = regions.first().map_or(0, |r| r.score);

    // Phase 3 (`initn`): chain compatible regions (increasing subject
    // coordinates) paying the join penalty per chained pair.
    let mut initn = init1;
    let mut by_start = regions.clone();
    by_start.sort_by(|a, b| a.start.cmp(&b.start).then(a.diag.cmp(&b.diag)));
    // O(k^2) chain over at most max_regions regions.
    let k = by_start.len();
    let mut chain = vec![0i32; k];
    for x in 0..k {
        chain[x] = by_start[x].score;
        for y in 0..x {
            if by_start[y].end < by_start[x].start && by_start[y].diag != by_start[x].diag {
                let cand = chain[y] + by_start[x].score - params.join_penalty;
                if cand > chain[x] {
                    chain[x] = cand;
                }
            }
        }
        if chain[x] > initn {
            initn = chain[x];
        }
    }

    // Phase 4 (`opt`): banded SW around the best region's diagonal.
    let opt = if initn >= params.opt_threshold {
        banded::score(
            query,
            subject,
            matrix,
            gaps,
            regions[0].diag,
            params.band_width,
        )
    } else {
        0
    };

    FastaScores { init1, initn, opt }
}

/// A full FASTA-style search of `db`.
///
/// Subjects are ranked by `opt` when available, otherwise by `initn`.
pub fn search<'a, I>(
    index: &KtupIndex,
    db: I,
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &FastaParams,
    keep: usize,
) -> SearchResults
where
    I: IntoIterator<Item = &'a [AminoAcid]>,
{
    let mut results = TopK::new(keep);
    for (seq_index, subject) in db.into_iter().enumerate() {
        let s = score_subject(index, subject, matrix, gaps, params);
        let reported = s.opt.max(s.initn);
        if reported >= params.min_report_score {
            results.push(Hit {
                seq_index,
                score: reported,
            });
        }
    }
    results.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn pack_rejects_nonstandard() {
        let s = seq("AXA");
        assert_eq!(pack(&s, 0, 2), None);
        assert_eq!(pack(&s, 1, 2), None);
        let t = seq("AR");
        assert_eq!(pack(&t, 0, 2), Some(1));
    }

    #[test]
    fn index_lists_all_occurrences() {
        let q = seq("ARARAR");
        let idx = KtupIndex::build(&q, 2);
        let ar = pack(&q, 0, 2).unwrap();
        assert_eq!(idx.lookup(ar), &[0, 2, 4]);
        let ra = pack(&q, 1, 2).unwrap();
        assert_eq!(idx.lookup(ra), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "ktup")]
    fn bad_ktup_rejected() {
        let _ = KtupIndex::build(&[], 0);
    }

    #[test]
    fn identical_sequences_score_high() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
        let idx = KtupIndex::build(&q, 2);
        let m = bl62();
        let s = score_subject(&idx, &q, &m, GapPenalties::paper(), &FastaParams::default());
        assert!(s.init1 > 0);
        assert!(s.initn >= s.init1);
        let self_score: i32 = q.iter().map(|&x| m.score(x, x)).sum();
        // Banded opt on diagonal 0 recovers the full self score.
        assert_eq!(s.opt, self_score);
    }

    #[test]
    fn dissimilar_sequences_score_zero() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let idx = KtupIndex::build(&q, 2);
        let junk = seq("GGGGGGGGGGGGGGGGGGGGGG");
        let s = score_subject(
            &idx,
            &junk,
            &bl62(),
            GapPenalties::paper(),
            &FastaParams::default(),
        );
        assert_eq!(s, FastaScores::default());
    }

    #[test]
    fn search_ranks_homolog_first() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK");
        let idx = KtupIndex::build(&q, 2);
        let m = bl62();
        let hom = q.clone();
        let junk1 = seq("PGPGPGPGPGPGPGPGPGPGPGPGPG");
        let junk2 = seq("NDNDNDNDNDNDNDNDNDNDNDNDND");
        let db: Vec<&[AminoAcid]> = vec![&junk1, &hom, &junk2];
        let res = search(
            &idx,
            db,
            &m,
            GapPenalties::paper(),
            &FastaParams::default(),
            10,
        );
        let hits = res.hits();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].seq_index, 1);
    }

    #[test]
    fn opt_below_threshold_is_zero() {
        let q = seq("MKWVTFISLL");
        let idx = KtupIndex::build(&q, 2);
        // One common word only: initn stays below the default threshold.
        let subj = seq("GGGGMKGGGG");
        let s = score_subject(
            &idx,
            &subj,
            &bl62(),
            GapPenalties::paper(),
            &FastaParams::default(),
        );
        assert_eq!(s.opt, 0);
    }

    #[test]
    fn short_inputs_are_safe() {
        let q = seq("M");
        let idx = KtupIndex::build(&q, 2);
        let s = score_subject(
            &idx,
            &seq("MK"),
            &bl62(),
            GapPenalties::paper(),
            &FastaParams::default(),
        );
        assert_eq!(s, FastaScores::default());
    }
}
