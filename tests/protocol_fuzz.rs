//! Protocol fuzz hardening (ISSUE 10, satellite 1).
//!
//! Feeds the live daemon a seeded corpus of malformed, truncated, and
//! oversized frames and holds it to the connection-hardening contract:
//! every received line is answered with exactly one typed error line
//! (or the connection is closed cleanly, for oversized frames), the
//! process keeps serving well-formed requests afterwards, and no
//! hostile byte sequence ever panics the parser.

use std::time::Duration;

use sapa_core::fault::{garble_frame, FaultPlan};
use sapa_service::json::{self, Json};
use sapa_service::{serve, Client, SearchParams, ServiceConfig};

const TIMEOUT: Duration = Duration::from_secs(20);

fn small_server() -> sapa_service::ServiceHandle {
    serve(ServiceConfig {
        db_seqs: 30,
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral service")
}

fn probe(addr: std::net::SocketAddr) -> String {
    let mut c = Client::connect(addr, TIMEOUT).expect("probe connect");
    c.search(&SearchParams {
        id: 999_999,
        tenant: "probe",
        engine: "striped",
        query: "MKWVTFISLLFLFSSAYSRGVFRRDAHKSE",
        top_k: 3,
        min_score: 1,
        deadline_cells: None,
        deadline_ms: None,
    })
    .expect("probe search")
}

fn assert_typed_error(reply: &str) {
    let v = json::parse(reply).expect("error reply must itself be valid JSON");
    assert_eq!(
        v.get("type").and_then(Json::as_str),
        Some("error"),
        "reply: {reply}"
    );
    let code = v
        .get("code")
        .and_then(Json::as_str)
        .expect("error has a code");
    assert!(
        sapa_service::ErrorCode::from_name(code).is_some(),
        "unknown error code {code:?} in {reply}"
    );
}

/// Deterministic byte-mangling PRNG for the pure-parser fuzz below.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hand-written hostile frames: each must draw one typed error and
/// leave the connection usable for the next line.
#[test]
fn handwritten_malformed_corpus_gets_typed_errors() {
    let server = small_server();
    let mut c = Client::connect(server.addr(), TIMEOUT).unwrap();
    let corpus: &[&str] = &[
        "",
        " ",
        "{",
        "}",
        "nul",
        "nullx",
        "[]",
        "[1,2,",
        "42",
        "\"just a string\"",
        "{\"op\":}",
        "{\"op\" \"search\"}",
        "{\"op\":\"search\"",                        // truncated object
        "{\"op\":\"search\",\"query\":\"ACDEF\"}{}", // trailing bytes
        "{\"op\":\"launch-missiles\"}",
        "{\"op\":\"search\",\"id\":1,\"query\":\"ACDEF\",\"engine\":\"warp\"}",
        "{\"op\":\"search\",\"id\":2,\"query\":\"not residues 123!\"}",
        "{\"op\":\"search\",\"id\":3,\"query\":\"\"}",
        "{\"op\":\"search\",\"id\":4,\"query\":\"ACDEF\",\"top_k\":0}",
        "{\"op\":\"search\",\"id\":5,\"query\":\"ACDEF\",\"top_k\":1000000000}",
        "{\"op\":\"search\",\"id\":6,\"query\":\"ACDEF\",\"min_score\":1e300}",
        "{\"op\":\"search\",\"id\":7,\"query\":\"ACDEF\",\"tenant\":\"../../etc\"}",
        "{\"op\":\"search\",\"id\":8,\"query\":\"ACDEF\",\"tenant\":\"\"}",
        "{\"op\":\"search\",\"id\":9,\"query\":\"ACDEF\",\"deadline_cells\":0}",
        "{\"op\":\"search\",\"id\":10,\"query\":\"ACDEF\",\"deadline_cells\":1,\"deadline_ms\":1}",
        "{\"op\":\"search\",\"id\":11,\"query\":\"ACDEF\",\"id\":\"eleven\"}",
        "{\"op\":\"search\",\"id\":-5,\"query\":\"ACDEF\"}",
        "{\"op\":\"search\",\"id\":1.5,\"query\":\"ACDEF\"}",
        "{\"op\":\"search\",\"id\":12,\"query\":[\"A\",\"C\"]}",
        "{\"op\":\"search\",\"id\":13,\"query\":\"ACDEF\",\"min_score\":\"high\"}",
        "{\"op\":\"stats\",\"extra\":\"\\ud800\"}", // lone surrogate
        "{\"op\":\"search\",\"id\":14,\"query\":\"AC\\u0000DEF\"}",
    ];
    for line in corpus {
        let reply = c
            .request(line)
            .unwrap_or_else(|e| panic!("no reply to {line:?}: {e}"));
        assert_typed_error(&reply);
    }
    // Deeply nested arrays past MAX_DEPTH.
    let bomb = format!("{}{}", "[".repeat(200), "]".repeat(200));
    assert_typed_error(&c.request(&bomb).unwrap());

    // The same connection still serves a clean request.
    let reply =
        c.request("{\"op\":\"search\",\"id\":77,\"query\":\"MKWVTFISLLFLFSSAYSRGVFRRDAHKSE\"}");
    let v = json::parse(&reply.unwrap()).unwrap();
    assert_eq!(v.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(77));

    let snap = server.shutdown();
    assert!(snap.balances(), "accounting must balance: {:?}", snap);
    assert!(snap.protocol_errors >= corpus.len() as u64 - 2);
}

/// Raw non-UTF-8 bytes on the wire draw a typed error, not a hang or a
/// crash.
#[test]
fn non_utf8_frames_get_typed_errors() {
    let server = small_server();
    let mut c = Client::connect(server.addr(), TIMEOUT).unwrap();
    for frame in [
        &[0xFFu8, 0xFE, 0x00, 0x01][..],
        &[0xC3, 0x28][..],             // invalid 2-byte sequence
        &[0xE2, 0x82][..],             // truncated 3-byte sequence
        b"{\"op\":\"stats\"\xF0\x9F}", // mid-frame garbage
    ] {
        c.send_frame(frame).unwrap();
        let reply = c.recv_line().unwrap().expect("reply before close");
        assert_typed_error(&reply);
    }
    probe(server.addr());
    assert!(server.shutdown().balances());
}

/// An oversized frame draws one `oversized` error and a clean close —
/// never unbounded buffering.
#[test]
fn oversized_frame_rejected_and_connection_closed() {
    let server = small_server();
    let addr = server.addr();
    let mut c = Client::connect(addr, TIMEOUT).unwrap();
    let huge = "A".repeat(sapa_service::Limits::default().max_line_bytes + 1);
    c.send_line(&huge).unwrap();
    let reply = c.recv_line().unwrap().expect("typed error before close");
    let v = json::parse(&reply).unwrap();
    assert_eq!(v.get("code").and_then(Json::as_str), Some("oversized"));
    assert_eq!(
        c.recv_line().unwrap(),
        None,
        "connection must be closed after oversized"
    );
    // A half-finished oversized line with no newline at all also may
    // not wedge the reader: the server cuts it off at the limit.
    let mut c2 = Client::connect(addr, TIMEOUT).unwrap();
    c2.send_frame(huge.as_bytes()).unwrap(); // send_frame appends \n, but limit hits first
    let reply = c2.recv_line().unwrap().expect("typed error before close");
    assert_eq!(
        json::parse(&reply)
            .unwrap()
            .get("code")
            .and_then(Json::as_str),
        Some("oversized")
    );
    probe(addr);
    let snap = server.shutdown();
    assert!(snap.oversized >= 2, "oversized counter: {:?}", snap);
    assert!(snap.balances());
}

/// Seeded garbled frames: mutate a valid request with the chaos suite's
/// own frame corruptor and hold the one-line-in/one-line-out contract.
#[test]
fn seeded_garble_corpus_is_survivable() {
    let server = small_server();
    let addr = server.addr();
    // Rate 1.0: every key triggers, so each iteration yields a mutant.
    let plan = FaultPlan::new(0xF022_CAFE, 1.0);
    let base = SearchParams {
        id: 0,
        tenant: "fuzz",
        engine: "striped",
        query: "MKWVTFISLLFLFSSAYSRGVFRRDAHKSE",
        top_k: 5,
        min_score: 1,
        deadline_cells: None,
        deadline_ms: None,
    };
    let mut c = Client::connect(addr, TIMEOUT).unwrap();
    let mut replies = 0u32;
    for key in 0..200u64 {
        let mut p = base.clone();
        p.id = key;
        let frame = p.render();
        let garbled = garble_frame(frame.as_bytes(), &plan, key)
            .expect("rate-1.0 plan must garble every frame");
        assert!(
            !garbled.contains(&b'\n') && !garbled.contains(&b'\r'),
            "garbled frame must stay a single line"
        );
        c.send_frame(&garbled).unwrap();
        match c.recv_line().unwrap() {
            Some(reply) => {
                // Either a typed error or — if the mutation happened to
                // keep the frame valid — an ordinary reply.
                let v = json::parse(&reply)
                    .unwrap_or_else(|e| panic!("unparseable reply to key {key}: {e:?}"));
                assert!(v.get("type").and_then(Json::as_str).is_some());
                replies += 1;
            }
            None => {
                // Clean close (e.g. the mutation overran a limit);
                // reconnect and continue the sweep.
                c = Client::connect(addr, TIMEOUT).unwrap();
            }
        }
    }
    assert!(replies > 0, "corpus never drew a reply");
    probe(addr);
    assert!(server.shutdown().balances());
}

/// Pure-parser fuzz: random byte edits of valid documents must never
/// panic `json::parse`, and anything it accepts must re-render cleanly.
#[test]
fn json_parser_survives_mutation_fuzz() {
    let seeds = [
        r#"{"op":"search","id":7,"tenant":"t0","engine":"blast","query":"ACDEFGHIKLMNPQRSTVWY","top_k":10,"min_score":1,"deadline_cells":123456}"#,
        r#"{"type":"result","id":7,"completed":false,"truncated_by":"cells","coverage":0.25,"hits":[{"index":3,"score":41,"bits":20.5,"evalue":1.2e-4}]}"#,
        r#"[null,true,false,0,-1,3.5e2,"\u00e9\ud83d\ude00\"\\/\b\f\n\r\t",[],{}]"#,
    ];
    let mut rng = SplitMix64(0x5EED_F00D);
    for round in 0..4000u32 {
        let seed = seeds[(round as usize) % seeds.len()];
        let mut bytes = seed.as_bytes().to_vec();
        for _ in 0..=(rng.next() % 4) {
            match rng.next() % 4 {
                0 => {
                    // Flip one byte to an arbitrary value.
                    let i = (rng.next() as usize) % bytes.len();
                    bytes[i] = (rng.next() & 0xFF) as u8;
                }
                1 => {
                    // Truncate.
                    let i = (rng.next() as usize) % bytes.len();
                    bytes.truncate(i);
                    if bytes.is_empty() {
                        bytes.push(b'{');
                    }
                }
                2 => {
                    // Duplicate a slice (structural confusion).
                    let i = (rng.next() as usize) % bytes.len();
                    let j = i + ((rng.next() as usize) % (bytes.len() - i));
                    let slice = bytes[i..=j.min(bytes.len() - 1)].to_vec();
                    bytes.extend_from_slice(&slice);
                }
                _ => {
                    // Insert a hostile byte.
                    let i = (rng.next() as usize) % (bytes.len() + 1);
                    let b = [b'"', b'\\', b'{', b'[', 0x00, 0xFF, b'e', b'-']
                        [(rng.next() % 8) as usize];
                    bytes.insert(i, b);
                }
            }
        }
        let Ok(text) = std::str::from_utf8(&bytes) else {
            continue;
        };
        if let Ok(v) = json::parse(text) {
            let rendered = v.render();
            json::parse(&rendered)
                .unwrap_or_else(|e| panic!("round {round}: re-parse of own render failed: {e:?}"));
        }
    }
}
