/root/repo/target/release/deps/striped-aa442f818c4b7a5a.d: crates/bench/benches/striped.rs

/root/repo/target/release/deps/striped-aa442f818c4b7a5a: crates/bench/benches/striped.rs

crates/bench/benches/striped.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
