/root/repo/target/release/deps/sapa_repro-6016fe231e9585a1.d: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ext_blastn.rs crates/repro/src/experiments/ext_prefetch.rs crates/repro/src/experiments/ext_queries.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig10.rs crates/repro/src/experiments/fig11.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig34.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/fig9.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs crates/repro/src/experiments/table7.rs crates/repro/src/experiments/tables456.rs crates/repro/src/format.rs crates/repro/src/sweep.rs

/root/repo/target/release/deps/libsapa_repro-6016fe231e9585a1.rlib: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ext_blastn.rs crates/repro/src/experiments/ext_prefetch.rs crates/repro/src/experiments/ext_queries.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig10.rs crates/repro/src/experiments/fig11.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig34.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/fig9.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs crates/repro/src/experiments/table7.rs crates/repro/src/experiments/tables456.rs crates/repro/src/format.rs crates/repro/src/sweep.rs

/root/repo/target/release/deps/libsapa_repro-6016fe231e9585a1.rmeta: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ext_blastn.rs crates/repro/src/experiments/ext_prefetch.rs crates/repro/src/experiments/ext_queries.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig10.rs crates/repro/src/experiments/fig11.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig34.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/fig9.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs crates/repro/src/experiments/table7.rs crates/repro/src/experiments/tables456.rs crates/repro/src/format.rs crates/repro/src/sweep.rs

crates/repro/src/lib.rs:
crates/repro/src/context.rs:
crates/repro/src/experiments/mod.rs:
crates/repro/src/experiments/ext_blastn.rs:
crates/repro/src/experiments/ext_prefetch.rs:
crates/repro/src/experiments/ext_queries.rs:
crates/repro/src/experiments/fig1.rs:
crates/repro/src/experiments/fig10.rs:
crates/repro/src/experiments/fig11.rs:
crates/repro/src/experiments/fig2.rs:
crates/repro/src/experiments/fig34.rs:
crates/repro/src/experiments/fig5.rs:
crates/repro/src/experiments/fig6.rs:
crates/repro/src/experiments/fig7.rs:
crates/repro/src/experiments/fig8.rs:
crates/repro/src/experiments/fig9.rs:
crates/repro/src/experiments/table1.rs:
crates/repro/src/experiments/table2.rs:
crates/repro/src/experiments/table3.rs:
crates/repro/src/experiments/table7.rs:
crates/repro/src/experiments/tables456.rs:
crates/repro/src/format.rs:
crates/repro/src/sweep.rs:
