/root/repo/target/debug/deps/sapa_repro-bd6b59e54a54957b.d: crates/repro/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_repro-bd6b59e54a54957b.rmeta: crates/repro/src/main.rs Cargo.toml

crates/repro/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
