//! Simulator replay and sweep throughput — the headline measurements
//! for the parallel-sweep PR.
//!
//! Groups:
//!
//! * `sim_replay` — one BLAST trace through the 4-way baseline, as an
//!   array-of-structs `Trace` vs the compact `PackedTrace`, reported in
//!   simulated instructions per second;
//! * `sim_sweep` — a 12-point grid (3 widths × 2 memories × 2
//!   predictors) over one shared packed trace, serial vs 2 and 4 sweep
//!   threads.
//!
//! Outside `--test` mode the run writes `BENCH_sim.json` at the
//! repository root: per-bench medians, simulated-instructions-per-
//! second rates, the packed-vs-AoS trace footprint, and the measured
//! sweep speedups (bounded by `host_cpus` — on a single-core host the
//! threaded points measure scheduling overhead, not speedup).

use std::sync::Arc;

use sapa_bench::harness::{Criterion, Throughput};
use sapa_core::cpu::config::{BranchConfig, CpuConfig, MemConfig, SimConfig};
use sapa_core::cpu::sweep::{run_jobs, SweepJob};
use sapa_core::cpu::Simulator;
use sapa_core::isa::{PackedTrace, Trace};
use sapa_core::workloads::{StandardInputs, Workload};

fn bench_trace() -> Trace {
    // BLAST at a reduced database: a few hundred thousand instructions,
    // large enough to dwarf per-run setup, small enough to iterate.
    Workload::Blast
        .trace(&StandardInputs::with_db_size(60, 2))
        .trace
}

fn sweep_grid() -> Vec<SimConfig> {
    let mut grid = Vec::new();
    for cpu in [
        CpuConfig::four_way(),
        CpuConfig::eight_way(),
        CpuConfig::sixteen_way(),
    ] {
        for mem in [MemConfig::me1(), MemConfig::meinf()] {
            for branch in [BranchConfig::table_vi(), BranchConfig::perfect()] {
                grid.push(SimConfig {
                    cpu: cpu.clone(),
                    mem: mem.clone(),
                    branch,
                });
            }
        }
    }
    grid
}

fn replay(c: &mut Criterion, trace: &Trace, packed: &Arc<PackedTrace>) {
    let sim = Simulator::new(SimConfig::four_way());
    let mut group = c.benchmark_group("sim_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("aos_trace", |b| b.iter(|| sim.run(trace)));
    group.bench_function("packed_trace", |b| b.iter(|| sim.run_packed(packed)));
    group.finish();
}

fn sweep(c: &mut Criterion, packed: &Arc<PackedTrace>) {
    let jobs: Vec<SweepJob> = sweep_grid()
        .into_iter()
        .map(|cfg| SweepJob::new(Arc::clone(packed), cfg))
        .collect();
    let insts = packed.len() as u64 * jobs.len() as u64;
    let mut group = c.benchmark_group("sim_sweep_12pt");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("serial", |b| b.iter(|| run_jobs(&jobs, 1)));
    for threads in [2usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| run_jobs(&jobs, threads))
        });
    }
    group.finish();
}

fn write_json(c: &Criterion, trace: &Trace, packed: &PackedTrace) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let mut entries = String::new();
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let rate = r
            .elements_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        entries.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"sim_insts_per_sec\": {}}}",
            r.group, r.name, r.median_ns, rate
        ));
    }
    let ratio = |fast: &str, slow: &str| -> String {
        match (
            c.result("sim_sweep_12pt", slow),
            c.result("sim_sweep_12pt", fast),
        ) {
            (Some(s), Some(f)) if f.median_ns > 0.0 => {
                format!("{:.3}", s.median_ns / f.median_ns)
            }
            _ => "null".to_string(),
        }
    };
    let replay_ratio = match (
        c.result("sim_replay", "aos_trace"),
        c.result("sim_replay", "packed_trace"),
    ) {
        (Some(aos), Some(p)) if p.median_ns > 0.0 => format!("{:.3}", aos.median_ns / p.median_ns),
        _ => "null".to_string(),
    };
    let aos_bytes = trace.len() * std::mem::size_of::<sapa_core::isa::Inst>();
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"workload\": \"BLAST\",\n  \"trace_insts\": {},\n  \"host_cpus\": {cpus},\n  \"trace_bytes_aos\": {aos_bytes},\n  \"trace_bytes_packed\": {},\n  \"results\": [\n{entries}\n  ],\n  \"derived\": {{\n    \"packed_vs_aos_replay_speed\": {replay_ratio},\n    \"trace_compression\": {:.3},\n    \"sweep_speedup_t2_vs_serial\": {},\n    \"sweep_speedup_t4_vs_serial\": {}\n  }}\n}}\n",
        trace.len(),
        packed.heap_bytes(),
        aos_bytes as f64 / packed.heap_bytes() as f64,
        ratio("threads_2", "serial"),
        ratio("threads_4", "serial"),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::from_args().sample_size(10);
    let trace = bench_trace();
    let packed = Arc::new(PackedTrace::from_trace(&trace));
    replay(&mut c, &trace, &packed);
    sweep(&mut c, &packed);
    if !c.is_test_mode() {
        write_json(&c, &trace, &packed);
    }
}
