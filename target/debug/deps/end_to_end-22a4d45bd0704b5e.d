/root/repo/target/debug/deps/end_to_end-22a4d45bd0704b5e.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-22a4d45bd0704b5e: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
