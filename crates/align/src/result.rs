//! Search-result containers shared by the database-search front ends.

/// One database hit: a sequence index and its alignment score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hit {
    /// Index of the sequence in the searched database.
    pub seq_index: usize,
    /// Alignment score (raw, matrix units).
    pub score: i32,
}

/// A ranked list of database hits.
///
/// Mirrors the `-b 500` behaviour of the paper's command lines: the list
/// keeps the best `capacity` hits, ordered by descending score with ties
/// broken by ascending sequence index (deterministic output).
///
/// ```
/// use sapa_align::{Hit, SearchResults};
///
/// let mut r = SearchResults::new(2);
/// r.push(Hit { seq_index: 0, score: 10 });
/// r.push(Hit { seq_index: 1, score: 30 });
/// r.push(Hit { seq_index: 2, score: 20 });
/// let best: Vec<i32> = r.hits().iter().map(|h| h.score).collect();
/// assert_eq!(best, vec![30, 20]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResults {
    capacity: usize,
    hits: Vec<Hit>,
    sorted: bool,
}

impl SearchResults {
    /// Creates an empty result list that retains the best `capacity`
    /// hits (the paper's runs use 500).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SearchResults {
            capacity,
            hits: Vec::new(),
            sorted: true,
        }
    }

    /// Records a hit.
    pub fn push(&mut self, hit: Hit) {
        self.hits.push(hit);
        self.sorted = false;
        // Compact lazily: only when we exceed twice the capacity, to
        // keep push O(1) amortized.
        if self.hits.len() > self.capacity * 2 {
            self.compact();
        }
    }

    /// The ranked hits (best first), truncated to capacity.
    pub fn hits(&mut self) -> &[Hit] {
        self.compact();
        &self.hits
    }

    /// The best score, if any hits were recorded.
    pub fn best_score(&mut self) -> Option<i32> {
        self.hits().first().map(|h| h.score)
    }

    /// Number of retained hits (≤ capacity once compacted).
    pub fn len(&mut self) -> usize {
        self.hits().len()
    }

    /// Whether no hits were recorded.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    fn compact(&mut self) {
        if !self.sorted {
            self.hits
                .sort_by(|a, b| b.score.cmp(&a.score).then(a.seq_index.cmp(&b.seq_index)));
            self.sorted = true;
        }
        self.hits.truncate(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_and_truncated() {
        let mut r = SearchResults::new(3);
        for (i, s) in [5, 1, 9, 7, 3].iter().enumerate() {
            r.push(Hit {
                seq_index: i,
                score: *s,
            });
        }
        let scores: Vec<i32> = r.hits().iter().map(|h| h.score).collect();
        assert_eq!(scores, vec![9, 7, 5]);
        assert_eq!(r.best_score(), Some(9));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ties_break_by_index() {
        let mut r = SearchResults::new(4);
        r.push(Hit {
            seq_index: 2,
            score: 5,
        });
        r.push(Hit {
            seq_index: 0,
            score: 5,
        });
        r.push(Hit {
            seq_index: 1,
            score: 5,
        });
        let idx: Vec<usize> = r.hits().iter().map(|h| h.seq_index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn empty_list() {
        let mut r = SearchResults::new(1);
        assert!(r.is_empty());
        assert_eq!(r.best_score(), None);
    }

    #[test]
    fn many_pushes_stay_bounded() {
        let mut r = SearchResults::new(10);
        for i in 0..10_000 {
            r.push(Hit {
                seq_index: i,
                score: (i % 100) as i32,
            });
        }
        assert_eq!(r.len(), 10);
        assert!(r.hits().iter().all(|h| h.score == 99));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SearchResults::new(0);
    }
}
