/root/repo/target/debug/examples/design_explorer-f0c1506dea2c3fc8.d: crates/core/../../examples/design_explorer.rs

/root/repo/target/debug/examples/design_explorer-f0c1506dea2c3fc8: crates/core/../../examples/design_explorer.rs

crates/core/../../examples/design_explorer.rs:
