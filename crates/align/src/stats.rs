//! Karlin-Altschul statistics: bit scores and expectation values.
//!
//! Every real member of the workload family (NCBI BLAST, FASTA's
//! SSEARCH) converts raw alignment scores into *bit scores* and
//! *E-values* via Karlin-Altschul theory: for a scoring system with
//! parameters `λ` and `K`, a raw score `S` in a search of a query of
//! length `m` against a database of `n` total residues has
//!
//! ```text
//! S' (bits) = (λ·S − ln K) / ln 2
//! E         = m·n · 2^(−S')
//! ```
//!
//! The (λ, K) pairs below are the published NCBI values for the
//! scoring systems this suite ships. They make hit lists comparable
//! across engines and databases — the `-b 500` style cutoffs of the
//! paper's command lines become statistically meaningful thresholds.

use sapa_bioseq::matrix::GapPenalties;

/// Karlin-Altschul parameters of one scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinAltschul {
    /// The scale parameter λ (nats per raw-score unit).
    pub lambda: f64,
    /// The search-space constant K.
    pub k: f64,
    /// Relative entropy H of the scoring system (nats/position); used
    /// for effective-length corrections.
    pub h: f64,
}

impl KarlinAltschul {
    /// Ungapped BLOSUM62 (NCBI's published values).
    pub const BLOSUM62_UNGAPPED: KarlinAltschul = KarlinAltschul {
        lambda: 0.3176,
        k: 0.134,
        h: 0.40,
    };

    /// Gapped BLOSUM62 with open 10 / extend 1 — the paper's scoring
    /// system (NCBI's published values for 11/1 in its open+first
    /// convention).
    pub const BLOSUM62_GAP_10_1: KarlinAltschul = KarlinAltschul {
        lambda: 0.267,
        k: 0.041,
        h: 0.14,
    };

    /// Parameters for the suite's scoring systems.
    ///
    /// Returns the gapped BLOSUM62 10/1 values for the paper's exact
    /// penalties, the ungapped values when gaps are prohibitively
    /// expensive (open ≥ 20), and a conservative interpolation
    /// otherwise.
    pub fn for_gaps(gaps: GapPenalties) -> KarlinAltschul {
        if gaps.open >= 20 {
            Self::BLOSUM62_UNGAPPED
        } else if gaps.open >= 10 {
            Self::BLOSUM62_GAP_10_1
        } else {
            // Cheaper gaps reduce λ; scale conservatively.
            KarlinAltschul {
                lambda: 0.244,
                k: 0.030,
                h: 0.12,
            }
        }
    }

    /// Converts a raw score to a bit score.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// Expectation value of a raw score in an `m × n` search space.
    ///
    /// Uses the effective-length correction `m' = max(m − l, 1)`,
    /// `n' = max(n − N·l, N)` with `l = ln(K·m·n)/H` (NCBI's standard
    /// edge correction), where `N` is the number of database
    /// sequences.
    pub fn evalue(&self, raw: i32, query_len: usize, db_residues: usize, db_seqs: usize) -> f64 {
        let m = query_len.max(1) as f64;
        let n = db_residues.max(1) as f64;
        let nseq = db_seqs.max(1) as f64;
        let l = ((self.k * m * n).ln() / self.h).max(0.0);
        let m_eff = (m - l).max(1.0);
        let n_eff = (n - nseq * l).max(nseq);
        let s_bits = self.bit_score(raw);
        m_eff * n_eff * 2f64.powf(-s_bits)
    }

    /// The raw score needed for an E-value of `e` in an `m × n` space
    /// (inverse of [`KarlinAltschul::evalue`], without edge
    /// correction; used for report thresholds).
    pub fn score_for_evalue(&self, e: f64, query_len: usize, db_residues: usize) -> i32 {
        let m = query_len.max(1) as f64;
        let n = db_residues.max(1) as f64;
        assert!(e > 0.0, "E-value threshold must be positive");
        // E = K·m·n·exp(−λS)  ⇒  S = ln(K·m·n / E) / λ
        ((self.k * m * n / e).ln() / self.lambda).ceil() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_scores_increase_with_raw() {
        let ka = KarlinAltschul::BLOSUM62_GAP_10_1;
        assert!(ka.bit_score(100) > ka.bit_score(50));
        // Raw 100 with gapped BLOSUM62 is about 43 bits (NCBI tables).
        let bits = ka.bit_score(100);
        assert!((40.0..46.0).contains(&bits), "bits {bits}");
    }

    #[test]
    fn evalue_decreases_with_score_and_increases_with_space() {
        let ka = KarlinAltschul::BLOSUM62_GAP_10_1;
        let e_small = ka.evalue(80, 222, 60_000, 200);
        let e_big = ka.evalue(60, 222, 60_000, 200);
        assert!(e_small < e_big);
        let e_wide = ka.evalue(80, 222, 60_000_000, 172_000);
        assert!(e_wide > e_small);
    }

    #[test]
    fn self_match_is_overwhelmingly_significant() {
        // A 222-residue self-match scores ≈1200 raw — E must be ~0.
        let ka = KarlinAltschul::BLOSUM62_GAP_10_1;
        let e = ka.evalue(1200, 222, 62_000_000, 172_000);
        assert!(e < 1e-100, "E {e}");
    }

    #[test]
    fn random_level_scores_are_insignificant() {
        // ~30 raw in a SwissProt-size space: E ≫ 1.
        let ka = KarlinAltschul::BLOSUM62_GAP_10_1;
        let e = ka.evalue(30, 222, 62_000_000, 172_000);
        assert!(e > 10.0, "E {e}");
    }

    #[test]
    fn threshold_inverts_evalue() {
        let ka = KarlinAltschul::BLOSUM62_GAP_10_1;
        let s = ka.score_for_evalue(0.001, 222, 160_000);
        // Check the threshold actually achieves E ≤ 0.001 (without the
        // edge correction the direct formula applies).
        let m = 222f64;
        let n = 160_000f64;
        let e = ka.k * m * n * (-ka.lambda * s as f64).exp();
        assert!(e <= 0.001, "E {e}");
        // And one point less does not.
        let e1 = ka.k * m * n * (-ka.lambda * (s - 1) as f64).exp();
        assert!(e1 > 0.0009, "E {e1}");
    }

    #[test]
    fn for_gaps_selects_sensible_regimes() {
        use sapa_bioseq::matrix::GapPenalties;
        assert_eq!(
            KarlinAltschul::for_gaps(GapPenalties::paper()),
            KarlinAltschul::BLOSUM62_GAP_10_1
        );
        assert_eq!(
            KarlinAltschul::for_gaps(GapPenalties::new(25, 2)),
            KarlinAltschul::BLOSUM62_UNGAPPED
        );
        let cheap = KarlinAltschul::for_gaps(GapPenalties::new(5, 1));
        assert!(cheap.lambda < KarlinAltschul::BLOSUM62_GAP_10_1.lambda);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_evalue_threshold_rejected() {
        let _ = KarlinAltschul::BLOSUM62_GAP_10_1.score_for_evalue(0.0, 10, 10);
    }
}
