/root/repo/target/release/deps/ablations-d2be8a6fe97505b7.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-d2be8a6fe97505b7: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
