/root/repo/target/release/deps/heuristics-e342fa1a8af4b322.d: crates/bench/benches/heuristics.rs

/root/repo/target/release/deps/heuristics-e342fa1a8af4b322: crates/bench/benches/heuristics.rs

crates/bench/benches/heuristics.rs:
