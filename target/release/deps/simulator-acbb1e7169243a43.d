/root/repo/target/release/deps/simulator-acbb1e7169243a43.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-acbb1e7169243a43: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
