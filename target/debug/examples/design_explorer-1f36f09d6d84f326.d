/root/repo/target/debug/examples/design_explorer-1f36f09d6d84f326.d: crates/core/../../examples/design_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_explorer-1f36f09d6d84f326.rmeta: crates/core/../../examples/design_explorer.rs Cargo.toml

crates/core/../../examples/design_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
