//! Figure 6: DL1 miss rate and IPC vs associativity (1/2/4/8-way
//! set-associative 32K DL1, 4-way core).

use crate::context::Context;
use crate::format::{f2, heading, pct, Table};
use sapa_cpu::config::{BranchConfig, CacheConfig, MemConfig, SimConfig};
use sapa_workloads::Workload;

/// Swept associativities.
pub const ASSOCS: [u32; 4] = [1, 2, 4, 8];

fn config_for(assoc: u32) -> SimConfig {
    let mut mem = MemConfig::me1();
    mem.name = format!("assoc-{assoc}");
    mem.dl1 = CacheConfig {
        size: Some(32 << 10),
        assoc,
        line: 128,
        latency: 1,
    };
    SimConfig {
        cpu: sapa_cpu::config::CpuConfig::four_way(),
        mem,
        branch: BranchConfig::table_vi(),
    }
}

/// One measured point.
pub fn point(ctx: &mut Context, w: Workload, assoc: u32) -> (f64, f64) {
    let r = ctx.sim(w, &config_for(assoc));
    (r.dl1.miss_rate(), r.ipc())
}

/// Renders Figure 6.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 6 — DL1 miss rate and IPC vs associativity (32K DL1)");
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .flat_map(|w| ASSOCS.into_iter().map(move |a| (w, config_for(a))))
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["workload", "assoc", "miss rate", "IPC"]);
    for w in Workload::ALL {
        for assoc in ASSOCS {
            let (miss, ipc) = point(ctx, w, assoc);
            t.row_owned(vec![
                w.label().to_string(),
                assoc.to_string(),
                pct(miss),
                f2(ipc),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn associativity_helps_or_is_neutral_for_blast_misses() {
        let mut ctx = Context::new(Scale::Tiny);
        let direct = point(&mut ctx, Workload::Blast, 1).0;
        let eight = point(&mut ctx, Workload::Blast, 8).0;
        assert!(eight <= direct + 0.02, "{eight} vs {direct}");
    }
}
