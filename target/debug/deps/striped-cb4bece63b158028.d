/root/repo/target/debug/deps/striped-cb4bece63b158028.d: crates/bench/benches/striped.rs Cargo.toml

/root/repo/target/debug/deps/libstriped-cb4bece63b158028.rmeta: crates/bench/benches/striped.rs Cargo.toml

crates/bench/benches/striped.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
