/root/repo/target/debug/deps/sapa_bench-78a9c6fb12b86507.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libsapa_bench-78a9c6fb12b86507.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libsapa_bench-78a9c6fb12b86507.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
