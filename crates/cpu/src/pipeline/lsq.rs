//! The load–store queue and its memory-disambiguation policy.
//!
//! Both queues hold age-ordered entries keyed by sequence number and a
//! 16-byte address granule (`ea >> 4`, the store-forwarding width).
//!
//! * **Stores** enter the store queue at dispatch with their address
//!   *unresolved* — the model's stand-in for an uncomputed effective
//!   address — and resolve when they issue.
//! * **Loads** enter the load queue at dispatch and may issue past
//!   older stores whose addresses are unresolved or do not match
//!   (speculative bypass). A load that issues while a matching older
//!   store is already resolved forwards from it instead of trusting
//!   the cache.
//! * When a store resolves, any *younger* load that already issued to
//!   the same granule was mis-speculated: the engine squashes it and
//!   re-issues it with a dependence on the store (a replay).
//!
//! The scoreboard oracle uses only the store half, fully resolved at
//! dispatch, reproducing the original conservative policy (loads take
//! a dispatch-time dependence, nothing ever replays).

use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct SqEntry {
    seq: u64,
    granule: u32,
    resolved: bool,
}

#[derive(Debug, Clone, Copy)]
struct LqEntry {
    seq: u64,
    granule: u32,
    issued: bool,
}

/// The load and store queues.
#[derive(Debug)]
pub(crate) struct Lsq {
    loads: VecDeque<LqEntry>,
    stores: VecDeque<SqEntry>,
    load_cap: usize,
    store_cap: usize,
}

impl Lsq {
    pub fn new(load_cap: usize, store_cap: usize) -> Self {
        Lsq {
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            load_cap,
            store_cap,
        }
    }

    #[inline]
    pub fn loads_full(&self) -> bool {
        self.loads.len() >= self.load_cap
    }

    #[inline]
    pub fn stores_full(&self) -> bool {
        self.stores.len() >= self.store_cap
    }

    #[inline]
    pub fn loads_len(&self) -> usize {
        self.loads.len()
    }

    #[inline]
    pub fn stores_len(&self) -> usize {
        self.stores.len()
    }

    /// Enters a load at dispatch (out-of-order model only).
    #[inline]
    pub fn push_load(&mut self, seq: u64, granule: u32) {
        self.loads.push_back(LqEntry {
            seq,
            granule,
            issued: false,
        });
    }

    /// Enters a store at dispatch. The scoreboard model passes
    /// `resolved = true` (its addresses are known at dispatch); the
    /// out-of-order model passes `false` and resolves at issue.
    #[inline]
    pub fn push_store(&mut self, seq: u64, granule: u32, resolved: bool) {
        self.stores.push_back(SqEntry {
            seq,
            granule,
            resolved,
        });
    }

    /// Youngest in-flight store to `granule` regardless of resolution —
    /// the scoreboard's conservative dispatch-time dependence.
    #[inline]
    pub fn youngest_store_to(&self, granule: u32) -> Option<u64> {
        self.stores
            .iter()
            .rev()
            .find(|s| s.granule == granule)
            .map(|s| s.seq)
    }

    /// Youngest *resolved* store older than `load_seq` to the same
    /// granule — the forwarding source for an issuing load. Unresolved
    /// older stores are speculatively bypassed.
    #[inline]
    pub fn forward_source(&self, load_seq: u64, granule: u32) -> Option<u64> {
        self.stores
            .iter()
            .rev()
            .filter(|s| s.seq < load_seq)
            .find(|s| s.resolved && s.granule == granule)
            .map(|s| s.seq)
    }

    /// Marks a load issued (or un-issued again, when it replays).
    pub fn set_load_issued(&mut self, seq: u64, issued: bool) {
        if let Some(l) = self.loads.iter_mut().find(|l| l.seq == seq) {
            l.issued = issued;
        }
    }

    /// Resolves `seq`'s address at store issue and returns the
    /// sequence numbers of younger loads that already issued to the
    /// same granule — the mis-speculated loads the engine must replay.
    pub fn resolve_store(&mut self, seq: u64, granule: u32) -> Vec<u64> {
        if let Some(s) = self.stores.iter_mut().find(|s| s.seq == seq) {
            s.resolved = true;
            s.granule = granule;
        }
        self.loads
            .iter()
            .filter(|l| l.seq > seq && l.issued && l.granule == granule)
            .map(|l| l.seq)
            .collect()
    }

    /// Drops the head store at retire.
    #[inline]
    pub fn retire_store(&mut self, seq: u64) {
        let popped = self.stores.pop_front();
        debug_assert_eq!(popped.map(|s| s.seq), Some(seq));
    }

    /// Drops the head load at retire (out-of-order model only).
    #[inline]
    pub fn retire_load(&mut self, seq: u64) {
        let popped = self.loads.pop_front();
        debug_assert_eq!(popped.map(|l| l.seq), Some(seq));
    }
}
