//! Preprocessed on-disk sequence database with a k-mer seed index.
//!
//! The paper's database-search applications (BLAST, FASTA) owe their
//! speed to work they *avoid*: the database is preprocessed once, and a
//! cheap exact-match filter prunes most subjects before any dynamic
//! programming runs. This module gives the suite the same two-stage
//! shape at the storage layer:
//!
//! * **Packed residues** — sequences are stored 5 bits per residue
//!   (the 24-symbol alphabet fits with room to spare), ~37% smaller
//!   than index bytes and far smaller than FASTA text;
//! * **Length-sorted shards** — sequences are sorted by length and cut
//!   into shards of roughly [`IndexBuilder::shard_residues`] residues,
//!   so a striped SIMD batch working through one shard sees uniform
//!   subject lengths (minimal per-batch padding/rescale variance), and
//!   a scan's working set is one shard, not the database;
//! * **Per-shard background statistics** — each shard directory entry
//!   carries its residue composition and length range, the inputs
//!   Karlin-Altschul E-value machinery needs, so significance can be
//!   computed from the header without touching sequence data;
//! * **A k-mer seed index** — every overlapping word of
//!   [`IndexBuilder::word_len`] standard residues is indexed as
//!   `(sequence, position)` postings sorted by word hash. At search
//!   time, [`SeedIndex::candidates`] turns a query into the subject
//!   set sharing at least `min_diag_seeds` words on one diagonal — the
//!   BLAST-like prefilter that lets rescoring skip most of the
//!   database (`sapa_align::indexed` builds the full pipeline on top).
//!
//! The [`IndexReader`] is a *streaming* reader: opening a database
//! loads only metadata (lengths, ids, shard directory, seed index);
//! packed residue data stays on disk and is decoded one shard at a
//! time into a caller-owned reusable [`ShardBuf`]. Residues dominate
//! real databases (SwissProt in the paper: 62.6 M residues), so peak
//! memory is O(largest shard), not O(database).
//!
//! ```
//! use sapa_bioseq::db::DatabaseBuilder;
//! use sapa_bioseq::index::{IndexBuilder, IndexReader, ShardBuf};
//!
//! # fn main() -> sapa_bioseq::Result<()> {
//! let db = DatabaseBuilder::new().seed(11).sequences(40).build();
//! let mut file = Vec::new();
//! IndexBuilder::new().write(db.sequences(), &mut file)?;
//!
//! let mut reader = IndexReader::from_reader(std::io::Cursor::new(file))?;
//! assert_eq!(reader.seq_count(), 40);
//! let mut buf = ShardBuf::new();
//! reader.read_shard(0, &mut buf)?;          // only this shard is resident
//! assert!(buf.seq_count() > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::alphabet::AminoAcid;
use crate::seq::Sequence;
use crate::{Error, Result};

/// File magic: identifies a SAPA database, version-stamped separately.
pub const MAGIC: [u8; 8] = *b"SAPADB1\0";

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Default seed-word length (protein alphabet). Five residues is the
/// shortest word that prunes effectively on SwissProt-like composition
/// (expected random word sharing per subject well below one) while
/// still being found in homologs of moderate identity.
pub const DEFAULT_WORD_LEN: usize = 5;

/// Default shard size in residues.
pub const DEFAULT_SHARD_RESIDUES: usize = 64 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn corrupt(reason: impl Into<String>) -> Error {
    Error::InvalidIndex {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Residue packing: 5 bits per residue, LSB-first, per-sequence byte aligned.
// ---------------------------------------------------------------------------

/// Bytes needed to pack `len` residues at 5 bits each.
pub fn packed_len(len: usize) -> usize {
    (5 * len).div_ceil(8)
}

fn pack_into(out: &mut Vec<u8>, residues: &[AminoAcid]) {
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for &aa in residues {
        acc |= (aa.index() as u32) << bits;
        bits += 5;
        while bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push(acc as u8);
    }
}

fn unpack_into(out: &mut Vec<AminoAcid>, bytes: &[u8], len: usize) -> Result<()> {
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    let mut it = bytes.iter();
    for _ in 0..len {
        while bits < 5 {
            let b = *it
                .next()
                .ok_or_else(|| corrupt("packed sequence data ends early"))?;
            acc |= (b as u32) << bits;
            bits += 8;
        }
        let idx = (acc & 0x1f) as usize;
        acc >>= 5;
        bits -= 5;
        out.push(
            AminoAcid::from_index(idx)
                .ok_or_else(|| corrupt(format!("invalid packed residue code {idx}")))?,
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Little-endian write/read helpers.
// ---------------------------------------------------------------------------

fn w16<W: Write>(w: &mut W, v: u16) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}
fn w32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}
fn w64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}
fn r16<R: Read>(r: &mut R) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn r32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// Seed index.
// ---------------------------------------------------------------------------

/// Base-20 hash of a window of standard residues; `None` if the window
/// contains an ambiguity code (`B`/`Z`/`X`/`*`), which is not indexed —
/// the NCBI convention for seed words.
pub fn word_hash(window: &[AminoAcid]) -> Option<u32> {
    debug_assert!(window.len() <= 7, "word hash overflows u32 beyond k=7");
    let mut h: u32 = 0;
    for &aa in window {
        if !aa.is_standard() {
            return None;
        }
        h = h * 20 + aa.index() as u32;
    }
    Some(h)
}

/// One subject that survived seeding: its best seed diagonal and a
/// representative seed on it (for downstream X-drop extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedCandidate {
    /// Global sequence index (length-sorted database order).
    pub seq: u32,
    /// Word matches on the best diagonal.
    pub seeds: u32,
    /// Query offset of the first seed on the best diagonal.
    pub qpos: u32,
    /// Subject offset of the first seed on the best diagonal.
    pub spos: u32,
}

/// The outcome of one query's seed lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedScan {
    /// Surviving subjects, ascending by sequence index.
    pub candidates: Vec<SeedCandidate>,
    /// Indexable words in the query (windows of standard residues).
    pub query_words: usize,
}

/// Exact-match k-mer index over a database: `(word hash) → (sequence,
/// position)` postings, the structure behind the seed-and-extend
/// prefilter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedIndex {
    word_len: usize,
    /// `(hash, postings_start)` sorted by hash; end = next entry's
    /// start (or `postings.len()` for the last).
    keys: Vec<(u32, u32)>,
    /// `(sequence, position)` pairs, grouped by word hash, each group
    /// ascending by `(sequence, position)`.
    postings: Vec<(u32, u32)>,
}

impl SeedIndex {
    /// Indexes every word of `word_len` standard residues in
    /// `sequences` (global index = position in the slice).
    ///
    /// # Panics
    ///
    /// Panics if `word_len` is outside `1..=7`.
    pub fn build<'a, I>(sequences: I, word_len: usize) -> SeedIndex
    where
        I: IntoIterator<Item = &'a [AminoAcid]>,
    {
        assert!((1..=7).contains(&word_len), "word length must be 1..=7");
        let mut raw: Vec<(u32, u32, u32)> = Vec::new();
        for (seq, residues) in sequences.into_iter().enumerate() {
            if residues.len() < word_len {
                continue;
            }
            for pos in 0..=(residues.len() - word_len) {
                if let Some(h) = word_hash(&residues[pos..pos + word_len]) {
                    raw.push((h, seq as u32, pos as u32));
                }
            }
        }
        raw.sort_unstable();
        let mut keys = Vec::new();
        let mut postings = Vec::with_capacity(raw.len());
        for (h, seq, pos) in raw {
            if keys.last().map(|&(kh, _)| kh) != Some(h) {
                keys.push((h, postings.len() as u32));
            }
            postings.push((seq, pos));
        }
        SeedIndex {
            word_len,
            keys,
            postings,
        }
    }

    /// The indexed word length.
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// Number of distinct word hashes present.
    pub fn unique_words(&self) -> usize {
        self.keys.len()
    }

    /// Total `(sequence, position)` postings.
    pub fn posting_count(&self) -> usize {
        self.postings.len()
    }

    /// The postings for one word hash (possibly empty).
    pub fn postings(&self, hash: u32) -> &[(u32, u32)] {
        match self.keys.binary_search_by_key(&hash, |&(h, _)| h) {
            Ok(i) => {
                let start = self.keys[i].1 as usize;
                let end = self
                    .keys
                    .get(i + 1)
                    .map_or(self.postings.len(), |&(_, s)| s as usize);
                &self.postings[start..end]
            }
            Err(_) => &[],
        }
    }

    /// Runs the seed stage of a search: every subject sharing at least
    /// `min_diag_seeds` exact words with `query` *on one diagonal*
    /// survives, with the first seed of its best diagonal recorded for
    /// extension. Deterministic: output depends only on the data.
    ///
    /// Subjects shorter than the word length can never be seeded and
    /// are **not** returned here — admission policy for them belongs to
    /// the caller (the alignment-layer prefilter admits them
    /// unconditionally).
    pub fn candidates(&self, query: &[AminoAcid], min_diag_seeds: u32) -> SeedScan {
        let k = self.word_len;
        let mut query_words = 0usize;
        // (seq, diagonal) → (count, qpos, spos of first seed).
        let mut diags: HashMap<(u32, u32), (u32, u32, u32)> = HashMap::new();
        if query.len() >= k {
            for qpos in 0..=(query.len() - k) {
                let Some(h) = word_hash(&query[qpos..qpos + k]) else {
                    continue;
                };
                query_words += 1;
                for &(seq, spos) in self.postings(h) {
                    // Diagonal id offset by the query length keeps it
                    // non-negative: spos - qpos + |q|.
                    let diag = spos + query.len() as u32 - qpos as u32;
                    let entry = diags.entry((seq, diag)).or_insert((0, qpos as u32, spos));
                    entry.0 += 1;
                }
            }
        }
        // Fold diagonals to the best per sequence, with deterministic
        // tie-breaks (more seeds, then lower diagonal id).
        let mut best: HashMap<u32, (u32, u32, u32, u32)> = HashMap::new();
        for (&(seq, diag), &(count, qpos, spos)) in &diags {
            let cand = (count, diag, qpos, spos);
            match best.get_mut(&seq) {
                None => {
                    best.insert(seq, cand);
                }
                Some(cur) => {
                    if count > cur.0 || (count == cur.0 && diag < cur.1) {
                        *cur = cand;
                    }
                }
            }
        }
        let mut candidates: Vec<SeedCandidate> = best
            .into_iter()
            .filter(|&(_, (count, _, _, _))| count >= min_diag_seeds)
            .map(|(seq, (seeds, _, qpos, spos))| SeedCandidate {
                seq,
                seeds,
                qpos,
                spos,
            })
            .collect();
        candidates.sort_unstable_by_key(|c| c.seq);
        SeedScan {
            candidates,
            query_words,
        }
    }

    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        w64(w, self.keys.len() as u64)?;
        for &(h, start) in &self.keys {
            w32(w, h)?;
            w32(w, start)?;
        }
        w64(w, self.postings.len() as u64)?;
        for &(seq, pos) in &self.postings {
            w32(w, seq)?;
            w32(w, pos)?;
        }
        Ok(())
    }

    fn byte_len(&self) -> u64 {
        16 + 8 * (self.keys.len() as u64 + self.postings.len() as u64)
    }

    fn read_from<R: Read>(r: &mut R, word_len: usize, seq_count: usize) -> Result<SeedIndex> {
        let n_keys = r64(r)? as usize;
        let mut keys = Vec::with_capacity(n_keys.min(1 << 24));
        let mut prev_hash: Option<u32> = None;
        for _ in 0..n_keys {
            let h = r32(r)?;
            let start = r32(r)?;
            if prev_hash.is_some_and(|p| p >= h) {
                return Err(corrupt("seed-index hashes not strictly ascending"));
            }
            prev_hash = Some(h);
            keys.push((h, start));
        }
        let n_postings = r64(r)? as usize;
        if let Some(&(_, start)) = keys.last() {
            if (start as usize) > n_postings {
                return Err(corrupt("seed-index key points past postings"));
            }
        }
        let mut postings = Vec::with_capacity(n_postings.min(1 << 26));
        for _ in 0..n_postings {
            let seq = r32(r)?;
            let pos = r32(r)?;
            if seq as usize >= seq_count {
                return Err(corrupt("seed-index posting references unknown sequence"));
            }
            postings.push((seq, pos));
        }
        Ok(SeedIndex {
            word_len,
            keys,
            postings,
        })
    }
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

/// Directory entry for one shard (a contiguous run of length-sorted
/// sequences whose packed residues live together on disk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Absolute file offset of the shard's packed residue data.
    pub data_offset: u64,
    /// Packed data length in bytes.
    pub data_len: u64,
    /// FNV-1a checksum of the packed data.
    pub checksum: u64,
    /// Global index of the shard's first sequence.
    pub seq_start: usize,
    /// Number of sequences in the shard.
    pub seq_count: usize,
    /// Shortest sequence length in the shard.
    pub min_len: u32,
    /// Longest sequence length in the shard.
    pub max_len: u32,
    /// Total residues in the shard.
    pub residues: u64,
    /// Per-residue counts — the Karlin-Altschul background
    /// composition of this shard.
    pub composition: [u64; AminoAcid::COUNT],
}

/// Summary returned by a successful [`IndexBuilder::write`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Total bytes written.
    pub bytes_written: u64,
    /// Sequences indexed.
    pub seq_count: usize,
    /// Total residues indexed.
    pub total_residues: u64,
    /// Shards created.
    pub shard_count: usize,
    /// Distinct seed words.
    pub unique_words: usize,
    /// Seed postings (≈ indexable residue positions).
    pub postings: usize,
}

/// Builds the on-disk database: length-sorts the input, cuts shards,
/// packs residues, and writes the seed index.
///
/// The byte output is fully deterministic in the input sequences and
/// builder parameters.
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    word_len: usize,
    shard_residues: usize,
}

impl IndexBuilder {
    /// A builder with [`DEFAULT_WORD_LEN`] / [`DEFAULT_SHARD_RESIDUES`].
    pub fn new() -> Self {
        IndexBuilder {
            word_len: DEFAULT_WORD_LEN,
            shard_residues: DEFAULT_SHARD_RESIDUES,
        }
    }

    /// Sets the seed-word length (protein alphabet, `1..=7`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=7`.
    pub fn word_len(mut self, k: usize) -> Self {
        assert!((1..=7).contains(&k), "word length must be 1..=7");
        self.word_len = k;
        self
    }

    /// Sets the target shard size in residues (each shard holds at
    /// least one sequence regardless).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn shard_residues(mut self, n: usize) -> Self {
        assert!(n > 0, "shard size must be positive");
        self.shard_residues = n;
        self
    }

    /// Length-sorts `sequences` the way the builder will store them:
    /// ascending length, ties in input order. The returned indices map
    /// database order → input order.
    pub fn sorted_order(sequences: &[Sequence]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        order.sort_by_key(|&i| sequences[i].len());
        order
    }

    /// Writes the complete database to `w`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidIndex`] if a sequence id or description exceeds
    /// 65,535 bytes or the input has ≥ 2³² sequences; [`Error::Io`] on
    /// write failure.
    pub fn write<W: Write>(&self, sequences: &[Sequence], w: W) -> Result<BuildReport> {
        if sequences.len() >= u32::MAX as usize {
            return Err(corrupt("too many sequences for the index format"));
        }
        let order = Self::sorted_order(sequences);
        let sorted: Vec<&Sequence> = order.iter().map(|&i| &sequences[i]).collect();
        let total_residues: u64 = sorted.iter().map(|s| s.len() as u64).sum();

        // Cut shards over the sorted run.
        let mut shards: Vec<ShardInfo> = Vec::new();
        {
            let mut start = 0usize;
            while start < sorted.len() {
                let mut end = start;
                let mut residues = 0u64;
                let mut composition = [0u64; AminoAcid::COUNT];
                let mut min_len = u32::MAX;
                let mut max_len = 0u32;
                while end < sorted.len()
                    && (end == start || (residues as usize) < self.shard_residues)
                {
                    let s = sorted[end];
                    residues += s.len() as u64;
                    for aa in s.iter() {
                        composition[aa.index()] += 1;
                    }
                    min_len = min_len.min(s.len() as u32);
                    max_len = max_len.max(s.len() as u32);
                    end += 1;
                }
                let data_len: u64 = sorted[start..end]
                    .iter()
                    .map(|s| packed_len(s.len()) as u64)
                    .sum();
                shards.push(ShardInfo {
                    data_offset: 0, // fixed up below
                    data_len,
                    checksum: 0, // computed while packing
                    seq_start: start,
                    seq_count: end - start,
                    min_len: if min_len == u32::MAX { 0 } else { min_len },
                    max_len,
                    residues,
                    composition,
                });
                start = end;
            }
        }

        let seed = SeedIndex::build(sorted.iter().map(|s| s.residues()), self.word_len);

        // Metadata sizes, so shard data offsets are known up front.
        let header_len = 40u64;
        let lengths_len = 4 * sorted.len() as u64;
        let mut ids_len = 0u64;
        for s in &sorted {
            if s.id().len() > u16::MAX as usize || s.description().len() > u16::MAX as usize {
                return Err(corrupt(format!(
                    "sequence id/description too long: {}",
                    s.id()
                )));
            }
            ids_len += 4 + s.id().len() as u64 + s.description().len() as u64;
        }
        let dir_len = shards.len() as u64 * SHARD_DIR_ENTRY_LEN;
        let seed_len = seed.byte_len();
        let mut data_offset = header_len + lengths_len + ids_len + dir_len + seed_len;
        for shard in &mut shards {
            shard.data_offset = data_offset;
            data_offset += shard.data_len;
        }
        let bytes_written = data_offset;

        // Pack shard data (and checksums) before writing the directory.
        let mut packed: Vec<Vec<u8>> = Vec::with_capacity(shards.len());
        for shard in &mut shards {
            let mut blob = Vec::with_capacity(shard.data_len as usize);
            for s in &sorted[shard.seq_start..shard.seq_start + shard.seq_count] {
                pack_into(&mut blob, s.residues());
            }
            debug_assert_eq!(blob.len() as u64, shard.data_len);
            shard.checksum = fnv1a(&blob, FNV_OFFSET);
            packed.push(blob);
        }

        let mut w = BufWriter::new(w);
        w.write_all(&MAGIC)?;
        w32(&mut w, FORMAT_VERSION)?;
        w32(&mut w, self.word_len as u32)?;
        w32(&mut w, shards.len() as u32)?;
        w32(&mut w, 0)?; // reserved
        w64(&mut w, sorted.len() as u64)?;
        w64(&mut w, total_residues)?;
        for s in &sorted {
            w32(&mut w, s.len() as u32)?;
        }
        for s in &sorted {
            w16(&mut w, s.id().len() as u16)?;
            w.write_all(s.id().as_bytes())?;
            w16(&mut w, s.description().len() as u16)?;
            w.write_all(s.description().as_bytes())?;
        }
        for shard in &shards {
            w64(&mut w, shard.data_offset)?;
            w64(&mut w, shard.data_len)?;
            w64(&mut w, shard.checksum)?;
            w64(&mut w, shard.residues)?;
            w32(&mut w, shard.seq_start as u32)?;
            w32(&mut w, shard.seq_count as u32)?;
            w32(&mut w, shard.min_len)?;
            w32(&mut w, shard.max_len)?;
            for &c in &shard.composition {
                w64(&mut w, c)?;
            }
        }
        seed.write_to(&mut w)?;
        for blob in &packed {
            w.write_all(blob)?;
        }
        w.flush()?;

        Ok(BuildReport {
            bytes_written,
            seq_count: sorted.len(),
            total_residues,
            shard_count: shards.len(),
            unique_words: seed.unique_words(),
            postings: seed.posting_count(),
        })
    }

    /// [`IndexBuilder::write`] to a file path.
    pub fn write_file(
        &self,
        sequences: &[Sequence],
        path: impl AsRef<Path>,
    ) -> Result<BuildReport> {
        let file = File::create(path)?;
        self.write(sequences, file)
    }
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

/// Bytes per shard-directory entry: 4×u64 + 4×u32 + 24×u64 composition.
const SHARD_DIR_ENTRY_LEN: u64 = 8 * 4 + 4 * 4 + 8 * (AminoAcid::COUNT as u64);

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Reusable decode buffer for one shard: residues plus per-sequence
/// boundaries. Reusing one `ShardBuf` across [`IndexReader::read_shard`]
/// calls makes a full-database scan allocation-free after the first
/// (largest) shard.
#[derive(Debug, Clone, Default)]
pub struct ShardBuf {
    residues: Vec<AminoAcid>,
    bounds: Vec<usize>,
    raw: Vec<u8>,
}

impl ShardBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        ShardBuf::default()
    }

    /// Sequences currently decoded.
    pub fn seq_count(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// The residues of the `local`-th sequence of the decoded shard.
    ///
    /// # Panics
    ///
    /// Panics if `local >= seq_count()`.
    pub fn sequence(&self, local: usize) -> &[AminoAcid] {
        &self.residues[self.bounds[local]..self.bounds[local + 1]]
    }
}

/// Streaming reader over an on-disk database: metadata (lengths, ids,
/// shard directory, seed index) is resident; packed residues are
/// decoded shard-at-a-time via [`IndexReader::read_shard`].
#[derive(Debug)]
pub struct IndexReader<R> {
    src: R,
    word_len: usize,
    seq_count: usize,
    total_residues: u64,
    lengths: Vec<u32>,
    names: Vec<(String, String)>,
    shards: Vec<ShardInfo>,
    seed: SeedIndex,
}

impl IndexReader<BufReader<File>> {
    /// Opens a database file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_reader(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> IndexReader<R> {
    /// Parses the metadata sections of `src` and validates their
    /// structure. Sequence data is *not* read.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidIndex`] on bad magic, version, or any structural
    /// inconsistency; [`Error::Io`] on read failure.
    pub fn from_reader(mut src: R) -> Result<Self> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(corrupt("not a SAPA database (bad magic)"));
        }
        let version = r32(&mut src)?;
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let word_len = r32(&mut src)? as usize;
        if !(1..=7).contains(&word_len) {
            return Err(corrupt(format!("invalid word length {word_len}")));
        }
        let shard_count = r32(&mut src)? as usize;
        let _reserved = r32(&mut src)?;
        let seq_count = r64(&mut src)? as usize;
        let total_residues = r64(&mut src)?;
        if seq_count == 0 && shard_count != 0 {
            return Err(corrupt("shards present but no sequences"));
        }

        let mut lengths = Vec::with_capacity(seq_count.min(1 << 24));
        for _ in 0..seq_count {
            lengths.push(r32(&mut src)?);
        }
        if lengths.iter().map(|&l| l as u64).sum::<u64>() != total_residues {
            return Err(corrupt("length table does not sum to total residues"));
        }
        if lengths.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("sequences are not length-sorted"));
        }

        let mut names = Vec::with_capacity(seq_count.min(1 << 24));
        for _ in 0..seq_count {
            let id_len = r16(&mut src)? as usize;
            let mut id = vec![0u8; id_len];
            src.read_exact(&mut id)?;
            let desc_len = r16(&mut src)? as usize;
            let mut desc = vec![0u8; desc_len];
            src.read_exact(&mut desc)?;
            let id = String::from_utf8(id).map_err(|_| corrupt("sequence id is not UTF-8"))?;
            let desc = String::from_utf8(desc).map_err(|_| corrupt("description is not UTF-8"))?;
            names.push((id, desc));
        }

        let mut shards = Vec::with_capacity(shard_count);
        let mut expect_start = 0usize;
        for _ in 0..shard_count {
            let data_offset = r64(&mut src)?;
            let data_len = r64(&mut src)?;
            let checksum = r64(&mut src)?;
            let residues = r64(&mut src)?;
            let seq_start = r32(&mut src)? as usize;
            let shard_seqs = r32(&mut src)? as usize;
            let min_len = r32(&mut src)?;
            let max_len = r32(&mut src)?;
            let mut composition = [0u64; AminoAcid::COUNT];
            for c in composition.iter_mut() {
                *c = r64(&mut src)?;
            }
            if seq_start != expect_start || shard_seqs == 0 {
                return Err(corrupt("shard directory does not tile the database"));
            }
            expect_start += shard_seqs;
            if expect_start > seq_count {
                return Err(corrupt("shard directory exceeds the sequence count"));
            }
            let span = &lengths[seq_start..seq_start + shard_seqs];
            if span.iter().map(|&l| l as u64).sum::<u64>() != residues
                || composition.iter().sum::<u64>() != residues
                || span
                    .iter()
                    .map(|&l| packed_len(l as usize) as u64)
                    .sum::<u64>()
                    != data_len
            {
                return Err(corrupt("shard directory entry is inconsistent"));
            }
            shards.push(ShardInfo {
                data_offset,
                data_len,
                checksum,
                seq_start,
                seq_count: shard_seqs,
                min_len,
                max_len,
                residues,
                composition,
            });
        }
        if expect_start != seq_count {
            return Err(corrupt("shard directory does not cover every sequence"));
        }

        let seed = SeedIndex::read_from(&mut src, word_len, seq_count)?;

        Ok(IndexReader {
            src,
            word_len,
            seq_count,
            total_residues,
            lengths,
            names,
            shards,
            seed,
        })
    }

    /// The indexed seed-word length.
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// Number of sequences in the database.
    pub fn seq_count(&self) -> usize {
        self.seq_count
    }

    /// Total residues in the database — the Karlin-Altschul search
    /// space, available without touching sequence data.
    pub fn total_residues(&self) -> u64 {
        self.total_residues
    }

    /// Per-sequence lengths in database (length-sorted) order.
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// The id of sequence `seq`.
    pub fn id(&self, seq: usize) -> &str {
        &self.names[seq].0
    }

    /// The description of sequence `seq`.
    pub fn description(&self, seq: usize) -> &str {
        &self.names[seq].1
    }

    /// The shard directory.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// The shard holding sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of bounds.
    pub fn shard_of(&self, seq: usize) -> usize {
        assert!(seq < self.seq_count, "sequence index out of bounds");
        match self.shards.binary_search_by_key(&seq, |s| s.seq_start) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// The seed index.
    pub fn seed_index(&self) -> &SeedIndex {
        &self.seed
    }

    /// Database-wide background residue frequencies (summed over
    /// shards), for Karlin-Altschul parameter estimation.
    pub fn background_frequencies(&self) -> [f64; AminoAcid::COUNT] {
        let mut counts = [0u64; AminoAcid::COUNT];
        for shard in &self.shards {
            for (acc, &c) in counts.iter_mut().zip(&shard.composition) {
                *acc += c;
            }
        }
        let total: u64 = counts.iter().sum();
        let mut freqs = [0.0; AminoAcid::COUNT];
        if total > 0 {
            for (f, &c) in freqs.iter_mut().zip(&counts) {
                *f = c as f64 / total as f64;
            }
        }
        freqs
    }

    /// Decodes shard `shard` into `buf`, replacing its contents. The
    /// packed bytes are checksum-verified before decoding, so a
    /// corrupted file yields [`Error::InvalidIndex`], never garbage
    /// residues or a panic.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of bounds.
    pub fn read_shard(&mut self, shard: usize, buf: &mut ShardBuf) -> Result<()> {
        let info = &self.shards[shard];
        buf.raw.clear();
        buf.raw.resize(info.data_len as usize, 0);
        self.src.seek(SeekFrom::Start(info.data_offset))?;
        self.src.read_exact(&mut buf.raw)?;
        if fnv1a(&buf.raw, FNV_OFFSET) != info.checksum {
            return Err(corrupt(format!("shard {shard} checksum mismatch")));
        }
        buf.residues.clear();
        buf.residues.reserve(info.residues as usize);
        buf.bounds.clear();
        buf.bounds.push(0);
        let mut at = 0usize;
        for &len in &self.lengths[info.seq_start..info.seq_start + info.seq_count] {
            let len = len as usize;
            let nbytes = packed_len(len);
            unpack_into(&mut buf.residues, &buf.raw[at..at + nbytes], len)?;
            at += nbytes;
            buf.bounds.push(buf.residues.len());
        }
        Ok(())
    }

    /// Decodes the whole database back into owned [`Sequence`]s, in
    /// database (length-sorted) order. Convenience for tests, tools,
    /// and exhaustive-scan baselines — defeats the streaming design on
    /// purpose.
    pub fn read_all(&mut self) -> Result<Vec<Sequence>> {
        let mut out = Vec::with_capacity(self.seq_count);
        let mut buf = ShardBuf::new();
        for shard in 0..self.shards.len() {
            self.read_shard(shard, &mut buf)?;
            let start = self.shards[shard].seq_start;
            for local in 0..buf.seq_count() {
                let (id, desc) = &self.names[start + local];
                out.push(Sequence::new(
                    id.clone(),
                    desc.clone(),
                    buf.sequence(local).to_vec(),
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DatabaseBuilder;
    use crate::queries::QuerySet;
    use std::io::Cursor;

    fn build_bytes(seqs: &[Sequence], builder: &IndexBuilder) -> (Vec<u8>, BuildReport) {
        let mut out = Vec::new();
        let report = builder.write(seqs, &mut out).unwrap();
        (out, report)
    }

    #[test]
    fn packing_round_trips_every_symbol() {
        for len in [0usize, 1, 2, 7, 8, 9, 24, 100] {
            let residues: Vec<AminoAcid> = (0..len)
                .map(|i| AminoAcid::from_index(i % AminoAcid::COUNT).unwrap())
                .collect();
            let mut packed = Vec::new();
            pack_into(&mut packed, &residues);
            assert_eq!(packed.len(), packed_len(len));
            let mut back = Vec::new();
            unpack_into(&mut back, &packed, len).unwrap();
            assert_eq!(back, residues);
        }
    }

    #[test]
    fn unpack_rejects_truncated_and_invalid_codes() {
        let residues = vec![AminoAcid::Trp; 10];
        let mut packed = Vec::new();
        pack_into(&mut packed, &residues);
        let mut out = Vec::new();
        assert!(unpack_into(&mut out, &packed[..packed.len() - 1], 10).is_err());
        // Code 31 (0b11111) is not a residue.
        let bad = vec![0xff; 5];
        out.clear();
        assert!(unpack_into(&mut out, &bad, 8).is_err());
    }

    #[test]
    fn round_trip_through_the_format() {
        let db = DatabaseBuilder::new().seed(21).sequences(60).build();
        let (bytes, report) = build_bytes(db.sequences(), &IndexBuilder::new());
        assert_eq!(report.bytes_written as usize, bytes.len());
        assert_eq!(report.seq_count, 60);

        let mut reader = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.seq_count(), 60);
        assert_eq!(reader.total_residues(), db.total_residues() as u64);
        assert_eq!(reader.word_len(), DEFAULT_WORD_LEN);

        // Decoded contents equal the length-sorted input, ids included.
        let order = IndexBuilder::sorted_order(db.sequences());
        let sorted: Vec<Sequence> = order.iter().map(|&i| db.sequences()[i].clone()).collect();
        let back = reader.read_all().unwrap();
        assert_eq!(back, sorted);
    }

    #[test]
    fn shards_are_length_sorted_and_tile_the_database() {
        let db = DatabaseBuilder::new().seed(3).sequences(120).build();
        let builder = IndexBuilder::new().shard_residues(8 * 1024);
        let (bytes, report) = build_bytes(db.sequences(), &builder);
        assert!(report.shard_count > 1, "want multiple shards");

        let reader = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
        let shards = reader.shards();
        let mut at = 0usize;
        let mut prev_max = 0u32;
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.seq_start, at, "shard {i}");
            assert!(s.min_len <= s.max_len);
            assert!(s.min_len >= prev_max.min(s.min_len));
            assert!(prev_max <= s.max_len, "length sorting broken at shard {i}");
            prev_max = s.max_len;
            at += s.seq_count;
            assert_eq!(
                s.composition.iter().sum::<u64>(),
                s.residues,
                "shard {i} composition"
            );
        }
        assert_eq!(at, reader.seq_count());
        // shard_of agrees with the directory.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(reader.shard_of(s.seq_start), i);
            assert_eq!(reader.shard_of(s.seq_start + s.seq_count - 1), i);
        }
    }

    #[test]
    fn builder_output_is_deterministic() {
        let db = DatabaseBuilder::new().seed(9).sequences(40).build();
        let (a, _) = build_bytes(db.sequences(), &IndexBuilder::new());
        let (b, _) = build_bytes(db.sequences(), &IndexBuilder::new());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_database_round_trips() {
        let (bytes, report) = build_bytes(&[], &IndexBuilder::new());
        assert_eq!(report.seq_count, 0);
        assert_eq!(report.shard_count, 0);
        let mut reader = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.seq_count(), 0);
        assert!(reader.read_all().unwrap().is_empty());
    }

    #[test]
    fn corrupted_bytes_error_instead_of_panicking() {
        let db = DatabaseBuilder::new().seed(5).sequences(25).build();
        let (bytes, _) = build_bytes(db.sequences(), &IndexBuilder::new());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(IndexReader::from_reader(Cursor::new(bad)).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(IndexReader::from_reader(Cursor::new(bad)).is_err());
        // Flip one bit in every byte position in the metadata region
        // and demand an error or a consistent reader — never a panic.
        for at in (0..bytes.len().min(2000)).step_by(37) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match IndexReader::from_reader(Cursor::new(bad)) {
                Ok(mut r) => {
                    // Metadata happened to stay structurally valid (or
                    // the flip hit sequence data); shard reads must
                    // still either succeed or error cleanly.
                    let mut buf = ShardBuf::new();
                    for s in 0..r.shards().len() {
                        let _ = r.read_shard(s, &mut buf);
                    }
                }
                Err(Error::InvalidIndex { .. }) | Err(Error::Io(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn shard_data_corruption_is_caught_by_checksum() {
        let db = DatabaseBuilder::new().seed(6).sequences(20).build();
        let (bytes, _) = build_bytes(db.sequences(), &IndexBuilder::new());
        let reader = IndexReader::from_reader(Cursor::new(bytes.clone())).unwrap();
        let off = reader.shards()[0].data_offset as usize;
        let mut bad = bytes;
        bad[off + 3] ^= 0x40;
        let mut reader = IndexReader::from_reader(Cursor::new(bad)).unwrap();
        let mut buf = ShardBuf::new();
        let err = reader.read_shard(0, &mut buf).unwrap_err();
        assert!(matches!(err, Error::InvalidIndex { .. }), "{err}");
    }

    #[test]
    fn seed_index_finds_exact_words() {
        let seqs = [
            Sequence::from_str("a", "MKWVTFISLL").unwrap(),
            Sequence::from_str("b", "AAAAMKWVTAAAA").unwrap(),
            Sequence::from_str("c", "CCCCCCCC").unwrap(),
        ];
        let idx = SeedIndex::build(seqs.iter().map(|s| s.residues()), 5);
        let h = word_hash(&seqs[0].residues()[..5]).unwrap();
        let hits = idx.postings(h);
        // "MKWVT" occurs in a at 0 and b at 4.
        assert_eq!(hits, &[(0, 0), (1, 4)]);
        assert!(idx.unique_words() > 0);
    }

    #[test]
    fn ambiguity_codes_are_not_indexed() {
        let seqs = [Sequence::from_str("x", "MKXVTMKWVT").unwrap()];
        let idx = SeedIndex::build(seqs.iter().map(|s| s.residues()), 5);
        // Windows containing X (positions 0..=2 cover it) are skipped:
        // only MKWVT (pos 5) and the windows before it without X.
        for (h, _) in idx.keys.iter() {
            for &(_, pos) in idx.postings(*h) {
                let w = &seqs[0].residues()[pos as usize..pos as usize + 5];
                assert!(w.iter().all(|aa| aa.is_standard()));
            }
        }
    }

    #[test]
    fn candidates_require_a_shared_diagonal_word() {
        let query = QuerySet::paper().default_query().clone();
        let db = DatabaseBuilder::new()
            .seed(31)
            .sequences(80)
            .homolog_template(query.clone())
            .homolog_fraction(0.2)
            .build();
        let idx = SeedIndex::build(db.iter().map(|s| s.residues()), 5);
        let scan = idx.candidates(query.residues(), 1);
        assert!(scan.query_words > 0);
        assert!(!scan.candidates.is_empty());
        assert!(scan.candidates.len() < db.len(), "prefilter must prune");
        // Every planted homolog must survive seeding.
        let survivors: Vec<u32> = scan.candidates.iter().map(|c| c.seq).collect();
        for (i, s) in db.iter().enumerate() {
            if s.description().contains("homolog") {
                assert!(survivors.contains(&(i as u32)), "homolog {i} pruned");
            }
        }
        // Candidates are sorted and their seeds verifiable.
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
        for c in &scan.candidates {
            let subj = db.sequences()[c.seq as usize].residues();
            let q = &query.residues()[c.qpos as usize..c.qpos as usize + 5];
            let s = &subj[c.spos as usize..c.spos as usize + 5];
            assert_eq!(q, s, "recorded seed is not an exact match");
            assert!(c.seeds >= 1);
        }
    }

    #[test]
    fn two_hit_seeding_is_stricter() {
        let query = QuerySet::paper().default_query().clone();
        let db = DatabaseBuilder::new()
            .seed(33)
            .sequences(120)
            .homolog_template(query.clone())
            .homolog_fraction(0.1)
            .build();
        let idx = SeedIndex::build(db.iter().map(|s| s.residues()), 4);
        let one = idx.candidates(query.residues(), 1);
        let two = idx.candidates(query.residues(), 2);
        assert!(two.candidates.len() <= one.candidates.len());
        let one_set: Vec<u32> = one.candidates.iter().map(|c| c.seq).collect();
        for c in &two.candidates {
            assert!(one_set.contains(&c.seq));
            assert!(c.seeds >= 2);
        }
    }

    #[test]
    fn short_query_yields_no_words() {
        let idx = SeedIndex::build(
            [Sequence::from_str("a", "MKWVTFISLL").unwrap().residues()],
            5,
        );
        let scan = idx.candidates(&[AminoAcid::Met, AminoAcid::Lys], 1);
        assert_eq!(scan.query_words, 0);
        assert!(scan.candidates.is_empty());
    }

    #[test]
    fn seed_index_survives_serialization() {
        let db = DatabaseBuilder::new().seed(13).sequences(30).build();
        let (bytes, _) = build_bytes(db.sequences(), &IndexBuilder::new().word_len(4));
        let reader = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
        let order = IndexBuilder::sorted_order(db.sequences());
        let sorted: Vec<&[AminoAcid]> = order
            .iter()
            .map(|&i| db.sequences()[i].residues())
            .collect();
        let rebuilt = SeedIndex::build(sorted.iter().copied(), 4);
        assert_eq!(reader.seed_index(), &rebuilt);
    }

    #[test]
    fn background_frequencies_sum_to_one() {
        let db = DatabaseBuilder::new().seed(17).sequences(50).build();
        let (bytes, _) = build_bytes(db.sequences(), &IndexBuilder::new());
        let reader = IndexReader::from_reader(Cursor::new(bytes)).unwrap();
        let freqs = reader.background_frequencies();
        let sum: f64 = freqs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // Leucine is the most common residue in SwissProt-like data.
        assert!(freqs[AminoAcid::Leu.index()] > freqs[AminoAcid::Trp.index()]);
    }

    #[test]
    fn file_round_trip() {
        let db = DatabaseBuilder::new().seed(23).sequences(35).build();
        let dir = std::env::temp_dir().join("sapa_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.sapadb");
        let report = IndexBuilder::new()
            .write_file(db.sequences(), &path)
            .unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            report.bytes_written
        );
        let mut reader = IndexReader::open(&path).unwrap();
        assert_eq!(reader.seq_count(), 35);
        assert_eq!(reader.read_all().unwrap().len(), 35);
        std::fs::remove_file(&path).ok();
    }
}
