//! Amino-acid substitution scoring matrices.
//!
//! The paper runs every search with BLOSUM62 (`-s BL62`), gap open 10 and
//! gap extension 1; [`SubstitutionMatrix::blosum62`] embeds the canonical
//! NCBI table. Parametric matrices are provided for ablation studies.

use crate::alphabet::AminoAcid;

const N: usize = AminoAcid::COUNT;

/// A 24×24 integer scoring matrix over the protein alphabet.
///
/// ```
/// use sapa_bioseq::{AminoAcid, SubstitutionMatrix};
/// let m = SubstitutionMatrix::blosum62();
/// assert_eq!(m.score(AminoAcid::Trp, AminoAcid::Trp), 11);
/// assert_eq!(m.score(AminoAcid::Ala, AminoAcid::Arg), -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    name: &'static str,
    scores: [[i8; N]; N],
}

/// The canonical NCBI BLOSUM62 table, row/column order
/// `A R N D C Q E G H I L K M F P S T W Y V B Z X *`.
#[rustfmt::skip]
const BLOSUM62: [[i8; N]; N] = [
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4], // A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4], // R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4], // N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4], // D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4], // C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4], // Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4], // G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4], // H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4], // I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4], // L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4], // K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4], // M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4], // F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4], // P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4], // S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4], // T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4], // W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4], // Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4], // V
    [ -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4], // B
    [ -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // Z
    [  0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4], // X
    [ -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1], // *
];

impl SubstitutionMatrix {
    /// The canonical BLOSUM62 matrix used by the paper's `-s BL62` runs.
    pub fn blosum62() -> Self {
        SubstitutionMatrix {
            name: "BLOSUM62",
            scores: BLOSUM62,
        }
    }

    /// A parametric match/mismatch matrix over the standard residues.
    ///
    /// Ambiguity codes score `mismatch` against everything; `X`/`*`
    /// likewise. Useful for ablations and for nucleotide-style scoring.
    ///
    /// # Panics
    ///
    /// Panics if `match_score <= mismatch_score`.
    pub fn uniform(match_score: i8, mismatch_score: i8) -> Self {
        assert!(
            match_score > mismatch_score,
            "match score must exceed mismatch score"
        );
        let mut scores = [[mismatch_score; N]; N];
        for aa in AminoAcid::STANDARD {
            scores[aa.index()][aa.index()] = match_score;
        }
        SubstitutionMatrix {
            name: "uniform",
            scores,
        }
    }

    /// A BLOSUM62 variant rescaled by `num/den` (rounded to nearest),
    /// used by the ablation benches to explore matrix "sharpness"
    /// without fabricating new biological data.
    pub fn blosum62_scaled(num: i32, den: i32) -> Self {
        assert!(den > 0 && num > 0, "scale must be positive");
        let mut scores = BLOSUM62;
        for row in scores.iter_mut() {
            for s in row.iter_mut() {
                let v = (*s as i32 * num + if *s >= 0 { den / 2 } else { -den / 2 }) / den;
                *s = v.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            }
        }
        SubstitutionMatrix {
            name: "BLOSUM62-scaled",
            scores,
        }
    }

    /// Human-readable matrix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Score for aligning residues `a` and `b`.
    #[inline]
    pub fn score(&self, a: AminoAcid, b: AminoAcid) -> i32 {
        self.scores[a.index()][b.index()] as i32
    }

    /// Score by raw alphabet indices.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= AminoAcid::COUNT`.
    #[inline]
    pub fn score_by_index(&self, a: usize, b: usize) -> i32 {
        self.scores[a][b] as i32
    }

    /// The largest score in the matrix (e.g. 11 for BLOSUM62's W/W).
    pub fn max_score(&self) -> i32 {
        self.scores.iter().flatten().copied().max().unwrap_or(0) as i32
    }

    /// The smallest score in the matrix.
    pub fn min_score(&self) -> i32 {
        self.scores.iter().flatten().copied().min().unwrap_or(0) as i32
    }

    /// Builds the position-specific query profile used by SSEARCH-style
    /// inner loops: `profile[pos * 24 + residue_index]` is the score of
    /// aligning query position `pos` against `residue_index`.
    ///
    /// Laying the profile out query-major matches the memory layout the
    /// real SSEARCH `pwaa` pointer walks, which the instrumented
    /// workloads rely on for realistic addresses.
    pub fn query_profile(&self, query: &[AminoAcid]) -> Vec<i8> {
        let mut profile = vec![0i8; query.len() * N];
        for (pos, &q) in query.iter().enumerate() {
            for aa in AminoAcid::ALL {
                profile[pos * N + aa.index()] = self.scores[q.index()][aa.index()];
            }
        }
        profile
    }
}

impl Default for SubstitutionMatrix {
    /// Defaults to [`SubstitutionMatrix::blosum62`], the paper's matrix.
    fn default() -> Self {
        SubstitutionMatrix::blosum62()
    }
}

/// Affine gap penalties, expressed as positive costs.
///
/// The paper uses gap open 10, gap extension 1 (`-f 11 -g 1` in FASTA's
/// convention charges open+extend = 11 for the first gap residue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GapPenalties {
    /// Cost of opening a gap (charged once per gap, in addition to the
    /// first residue's extension cost).
    pub open: i32,
    /// Cost of each gapped residue.
    pub extend: i32,
}

impl GapPenalties {
    /// Creates a penalty pair.
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative.
    pub fn new(open: i32, extend: i32) -> Self {
        assert!(open >= 0 && extend >= 0, "gap penalties are positive costs");
        GapPenalties { open, extend }
    }

    /// The paper's configuration: open 10, extend 1.
    pub const fn paper() -> Self {
        GapPenalties {
            open: 10,
            extend: 1,
        }
    }

    /// Total cost of a gap of `len` residues.
    pub fn gap_cost(&self, len: u32) -> i32 {
        if len == 0 {
            0
        } else {
            self.open + self.extend * len as i32
        }
    }
}

impl Default for GapPenalties {
    fn default() -> Self {
        GapPenalties::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_is_symmetric() {
        let m = SubstitutionMatrix::blosum62();
        for a in AminoAcid::ALL {
            for b in AminoAcid::ALL {
                assert_eq!(m.score(a, b), m.score(b, a), "{a}/{b}");
            }
        }
    }

    #[test]
    fn blosum62_diagonal_dominates_row() {
        let m = SubstitutionMatrix::blosum62();
        for a in AminoAcid::STANDARD {
            for b in AminoAcid::STANDARD {
                if a != b {
                    assert!(m.score(a, a) > m.score(a, b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let m = SubstitutionMatrix::blosum62();
        use AminoAcid::*;
        assert_eq!(m.score(Trp, Trp), 11);
        assert_eq!(m.score(Cys, Cys), 9);
        assert_eq!(m.score(Ile, Leu), 2);
        assert_eq!(m.score(Glu, Asp), 2);
        assert_eq!(m.score(Gly, Trp), -2);
        assert_eq!(m.score(Stop, Stop), 1);
        assert_eq!(m.score(Ala, Stop), -4);
        assert_eq!(m.max_score(), 11);
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    fn uniform_matrix() {
        let m = SubstitutionMatrix::uniform(5, -4);
        use AminoAcid::*;
        assert_eq!(m.score(Ala, Ala), 5);
        assert_eq!(m.score(Ala, Arg), -4);
        assert_eq!(m.score(Xaa, Xaa), -4);
    }

    #[test]
    #[should_panic(expected = "match score must exceed")]
    fn uniform_rejects_inverted_scores() {
        let _ = SubstitutionMatrix::uniform(-1, 1);
    }

    #[test]
    fn scaled_matrix_preserves_sign() {
        let m = SubstitutionMatrix::blosum62_scaled(2, 1);
        let base = SubstitutionMatrix::blosum62();
        for a in AminoAcid::ALL {
            for b in AminoAcid::ALL {
                assert_eq!(m.score(a, b), base.score(a, b) * 2);
            }
        }
    }

    #[test]
    fn profile_layout() {
        let m = SubstitutionMatrix::blosum62();
        let q = [AminoAcid::Trp, AminoAcid::Ala];
        let p = m.query_profile(&q);
        assert_eq!(p.len(), 2 * AminoAcid::COUNT);
        assert_eq!(p[AminoAcid::Trp.index()], 11);
        assert_eq!(p[AminoAcid::COUNT + AminoAcid::Ala.index()], 4);
    }

    #[test]
    fn gap_costs() {
        let g = GapPenalties::paper();
        assert_eq!(g.gap_cost(0), 0);
        assert_eq!(g.gap_cost(1), 11);
        assert_eq!(g.gap_cost(3), 13);
    }

    #[test]
    #[should_panic(expected = "positive costs")]
    fn negative_gap_penalty_rejected() {
        let _ = GapPenalties::new(-1, 0);
    }
}
