//! Explore processor design points: how much does each application gain
//! from a wider pipeline, and from a perfect branch predictor? (A
//! miniature of the paper's Figures 3 and 9, on all five workloads.)
//!
//! ```text
//! cargo run --release --example design_explorer
//! ```

use sapa_core::cpu::config::{BranchConfig, CpuConfig, SimConfig};
use sapa_core::cpu::Simulator;
use sapa_core::workloads::{StandardInputs, Workload};

fn main() {
    let inputs = StandardInputs::with_db_size(150, 2);
    println!("workload    4-way   8-way  16-way  perfect-BP(4w)  bp-accuracy");
    println!("----------------------------------------------------------------");

    for w in Workload::ALL {
        let bundle = w.trace(&inputs);

        let ipc = |cpu: CpuConfig, branch: BranchConfig| {
            let cfg = SimConfig {
                cpu,
                mem: sapa_core::cpu::config::MemConfig::me1(),
                branch,
            };
            Simulator::new(cfg).run(&bundle.trace)
        };

        let r4 = ipc(CpuConfig::four_way(), BranchConfig::table_vi());
        let r8 = ipc(CpuConfig::eight_way(), BranchConfig::table_vi());
        let r16 = ipc(CpuConfig::sixteen_way(), BranchConfig::table_vi());
        let rp = ipc(CpuConfig::four_way(), BranchConfig::perfect());

        println!(
            "{:<10}  {:>5.2}  {:>5.2}  {:>5.2}        {:>5.2}        {:>5.1}%",
            w.label(),
            r4.ipc(),
            r8.ipc(),
            r16.ipc(),
            rp.ipc(),
            r4.bp_accuracy() * 100.0,
        );
    }

    println!(
        "\nReading guide: the SIMD codes barely react to the predictor\n\
         (≈2% branches) but scale with width; the heuristics are pinned\n\
         by data-dependent branches, exactly as IISWC 2006 reports."
    );
}
