//! Striped query profiles for Farrar-style SIMD Smith-Waterman.
//!
//! The anti-diagonal kernels gather one substitution score per cell per
//! diagonal — the per-cell `vperm` traffic the paper's trauma histograms
//! measure. Farrar's striped layout removes that cost entirely: the
//! substitution scores for the whole query are laid out **once** per
//! (query, matrix, lane-width) so that the inner loop loads a whole
//! vector of scores with a single aligned load per segment.
//!
//! Layout: for a query of length `m` processed with `L` lanes, the query
//! is split into `segs = ceil(m / L)` *segments*; lane `k` of segment
//! `s` covers query position `k * segs + s`. For each database residue
//! `c` the profile stores `segs` contiguous `L`-lane groups:
//!
//! ```text
//! row(c) = [ P[c][0][0..L] , P[c][1][0..L] , … , P[c][segs-1][0..L] ]
//! P[c][s][k] = score(query[k * segs + s], c)      (padding for k·segs+s ≥ m)
//! ```
//!
//! A [`QueryProfile`] carries two parallel layouts: 16-bit *word* lanes
//! (exact for every realistic score) and biased 8-bit *byte* lanes with
//! double the lane count (the fast first pass; the kernel detects
//! saturation and falls back to words). The byte layout is `None` when
//! the matrix's dynamic range cannot fit the biased-u8 scheme.
//!
//! Profiles are immutable and `Sync`; a database search builds one and
//! shares it across every worker thread, amortizing construction over
//! the whole scan. [`ProfileCache`] additionally memoizes profiles
//! across searches (multi-query servers hit the same (query, matrix)
//! pair repeatedly).

use std::collections::HashMap;
use std::sync::Arc;

use crate::alphabet::AminoAcid;
use crate::matrix::SubstitutionMatrix;

/// Padding value for word lanes covering positions past the query end:
/// deep enough that a padded lane can never influence a real score, yet
/// far from `i16::MIN` so repeated saturating subtraction stays sane.
pub const WORD_PAD: i16 = -25000;

/// A precomputed striped substitution-score layout for one
/// (query, matrix, lane-width) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    query_len: usize,
    matrix_name: &'static str,
    max_score: i32,
    word_lanes: usize,
    word_segments: usize,
    /// `[residue][segment][lane]`, row stride `word_segments * word_lanes`.
    words: Vec<i16>,
    byte_lanes: usize,
    byte_segments: usize,
    /// Biased byte layout, same indexing; `None` if the matrix's range
    /// does not fit the u8 scheme.
    bytes: Option<Vec<u8>>,
    bias: i32,
}

impl QueryProfile {
    /// Builds the striped profile for `query` under `matrix`.
    ///
    /// `word_lanes` is the 16-bit lane count of the target register
    /// (8 for the 128-bit Altivec model, 16 for the 256-bit extension);
    /// the byte layout uses `2 * word_lanes` lanes of the same register.
    ///
    /// # Panics
    ///
    /// Panics if `word_lanes` is zero.
    pub fn build(query: &[AminoAcid], matrix: &SubstitutionMatrix, word_lanes: usize) -> Self {
        assert!(word_lanes > 0, "need at least one lane");
        let m = query.len();
        let n_res = AminoAcid::COUNT;
        let byte_lanes = word_lanes * 2;
        let word_segments = m.div_ceil(word_lanes).max(1);
        let byte_segments = m.div_ceil(byte_lanes).max(1);
        let bias = (-matrix.min_score()).max(0);
        let max_score = matrix.max_score();

        let mut words = vec![WORD_PAD; n_res * word_segments * word_lanes];
        for c in AminoAcid::ALL.iter() {
            let row = c.index() * word_segments * word_lanes;
            for s in 0..word_segments {
                for k in 0..word_lanes {
                    let q = k * word_segments + s;
                    if q < m {
                        words[row + s * word_lanes + k] = matrix.score(query[q], *c) as i16;
                    }
                }
            }
        }

        // Byte layout is feasible when every biased score fits u8 with
        // enough headroom left for the kernel's saturation guard.
        let byte_ok = bias + max_score < 200 && bias <= 127;
        let bytes = byte_ok.then(|| {
            let mut bytes = vec![0u8; n_res * byte_segments * byte_lanes];
            for c in AminoAcid::ALL.iter() {
                let row = c.index() * byte_segments * byte_lanes;
                for s in 0..byte_segments {
                    for k in 0..byte_lanes {
                        let q = k * byte_segments + s;
                        if q < m {
                            bytes[row + s * byte_lanes + k] =
                                (matrix.score(query[q], *c) + bias) as u8;
                        }
                        // Padding stays 0 = true score −bias: at or
                        // below the matrix minimum, so padded lanes
                        // decay and never affect real cells.
                    }
                }
            }
            bytes
        });

        QueryProfile {
            query_len: m,
            matrix_name: matrix.name(),
            max_score,
            word_lanes,
            word_segments,
            words,
            byte_lanes,
            byte_segments,
            bytes,
            bias,
        }
    }

    /// [`build`](Self::build), wrapped in an [`Arc`] — the form the
    /// engine layer and multi-threaded scans share across workers.
    pub fn build_shared(
        query: &[AminoAcid],
        matrix: &SubstitutionMatrix,
        word_lanes: usize,
    ) -> Arc<Self> {
        Arc::new(Self::build(query, matrix, word_lanes))
    }

    /// Length of the profiled query.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Name of the matrix the profile was built from.
    pub fn matrix_name(&self) -> &'static str {
        self.matrix_name
    }

    /// Largest substitution score in the source matrix.
    #[inline]
    pub fn max_score(&self) -> i32 {
        self.max_score
    }

    /// 16-bit lane count the word layout targets.
    #[inline]
    pub fn word_lanes(&self) -> usize {
        self.word_lanes
    }

    /// Segment count of the word layout (`ceil(len / word_lanes)`).
    #[inline]
    pub fn word_segments(&self) -> usize {
        self.word_segments
    }

    /// The word-layout row for database residue `c`:
    /// `word_segments * word_lanes` scores, segment-major.
    #[inline]
    pub fn word_row(&self, c: AminoAcid) -> &[i16] {
        let stride = self.word_segments * self.word_lanes;
        let start = c.index() * stride;
        &self.words[start..start + stride]
    }

    /// 8-bit lane count the byte layout targets (`2 * word_lanes`).
    #[inline]
    pub fn byte_lanes(&self) -> usize {
        self.byte_lanes
    }

    /// Segment count of the byte layout (`ceil(len / byte_lanes)`).
    #[inline]
    pub fn byte_segments(&self) -> usize {
        self.byte_segments
    }

    /// Whether the byte layout exists (matrix range fits biased u8).
    #[inline]
    pub fn has_bytes(&self) -> bool {
        self.bytes.is_some()
    }

    /// The score bias added to every byte-layout entry.
    #[inline]
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// The byte-layout row for database residue `c`, or `None` when the
    /// byte layout is infeasible for this matrix.
    #[inline]
    pub fn byte_row(&self, c: AminoAcid) -> Option<&[u8]> {
        let bytes = self.bytes.as_ref()?;
        let stride = self.byte_segments * self.byte_lanes;
        let start = c.index() * stride;
        Some(&bytes[start..start + stride])
    }
}

/// Memoizes [`QueryProfile`]s across searches.
///
/// Keyed by (query residues, matrix name, word lane count); returns
/// shared [`Arc`]s so concurrent searches can hold the same profile.
/// The search driver keeps one of these so repeated searches with the
/// same query (the common server pattern) skip profile construction
/// entirely.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: HashMap<(Vec<u8>, &'static str, usize), Arc<QueryProfile>>,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached profile for (query, matrix, lane-width),
    /// building and storing it on first use.
    pub fn get_or_build(
        &mut self,
        query: &[AminoAcid],
        matrix: &SubstitutionMatrix,
        word_lanes: usize,
    ) -> Arc<QueryProfile> {
        let key = (
            query.iter().map(|a| a.index() as u8).collect::<Vec<u8>>(),
            matrix.name(),
            word_lanes,
        );
        self.map
            .entry(key)
            .or_insert_with(|| Arc::new(QueryProfile::build(query, matrix, word_lanes)))
            .clone()
    }

    /// Number of distinct profiles currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    #[test]
    fn word_layout_matches_matrix() {
        let m = SubstitutionMatrix::blosum62();
        let q = seq("HEAGAWGHEE");
        let p = QueryProfile::build(&q, &m, 8);
        assert_eq!(p.query_len(), 10);
        assert_eq!(p.word_lanes(), 8);
        assert_eq!(p.word_segments(), 2); // ceil(10 / 8)
        for c in AminoAcid::ALL {
            let row = p.word_row(c);
            assert_eq!(row.len(), 16);
            for s in 0..2 {
                for k in 0..8 {
                    let qpos = k * 2 + s;
                    let expect = if qpos < q.len() {
                        m.score(q[qpos], c) as i16
                    } else {
                        WORD_PAD
                    };
                    assert_eq!(row[s * 8 + k], expect, "{c} s{s} k{k}");
                }
            }
        }
    }

    #[test]
    fn byte_layout_is_biased_and_padded() {
        let m = SubstitutionMatrix::blosum62();
        let q = seq("WWAC");
        let p = QueryProfile::build(&q, &m, 8);
        assert!(p.has_bytes());
        assert_eq!(p.bias(), 4); // −min(BLOSUM62)
        assert_eq!(p.byte_lanes(), 16);
        assert_eq!(p.byte_segments(), 1);
        let row = p.byte_row(AminoAcid::Trp).unwrap();
        // Lane k covers query position k (segs = 1).
        assert_eq!(row[0], (11 + 4) as u8); // W vs W
        assert_eq!(row[4], 0); // padding
    }

    #[test]
    fn wide_matrix_disables_byte_layout() {
        // A huge dynamic range cannot fit the biased-u8 scheme.
        let m = SubstitutionMatrix::uniform(120, -120);
        let q = seq("ACDE");
        let p = QueryProfile::build(&q, &m, 8);
        assert!(!p.has_bytes());
        assert!(p.byte_row(AminoAcid::Ala).is_none());
    }

    #[test]
    fn empty_query_has_one_padded_segment() {
        let m = SubstitutionMatrix::blosum62();
        let p = QueryProfile::build(&[], &m, 8);
        assert_eq!(p.query_len(), 0);
        assert_eq!(p.word_segments(), 1);
        assert!(p.word_row(AminoAcid::Ala).iter().all(|&v| v == WORD_PAD));
    }

    #[test]
    fn cache_returns_shared_profiles() {
        let m = SubstitutionMatrix::blosum62();
        let q = seq("HEAGAWGHEE");
        let mut cache = ProfileCache::new();
        let a = cache.get_or_build(&q, &m, 8);
        let b = cache.get_or_build(&q, &m, 8);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Different lane width is a different entry.
        let c = cache.get_or_build(&q, &m, 16);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // Different matrix (name) is a different entry.
        let u = SubstitutionMatrix::uniform(5, -4);
        let d = cache.get_or_build(&q, &u, 8);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 3);
    }
}
