//! Property-based tests of the cycle-accurate simulator: for random
//! (but well-formed) traces, structural invariants must hold under any
//! preset configuration.
//!
//! Random programs come from the repo's deterministic xoshiro generator
//! (no external property-test framework is available offline), so every
//! run exercises the same corpus.

use sapa_core::bioseq::rng::Xoshiro256;
use sapa_core::cpu::config::{BranchConfig, SimConfig};
use sapa_core::cpu::Simulator;
use sapa_core::isa::reg;
use sapa_core::isa::trace::{Trace, Tracer};

/// A tiny random "program": a list of abstract ops turned into a trace.
#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8),
    Load(u8, u32),
    Store(u8, u32),
    Branch(bool),
    Vec(u8, u8),
}

fn random_op(rng: &mut Xoshiro256) -> Op {
    match rng.next_below(5) {
        0 => Op::Alu(rng.next_below(16) as u8, rng.next_below(16) as u8),
        1 => Op::Load(rng.next_below(16) as u8, rng.next_below(0x4000) as u32),
        2 => Op::Store(rng.next_below(16) as u8, rng.next_below(0x4000) as u32),
        3 => Op::Branch(rng.next_below(2) == 0),
        _ => Op::Vec(rng.next_below(16) as u8, rng.next_below(16) as u8),
    }
}

fn random_ops(rng: &mut Xoshiro256, min: usize, max: usize) -> Vec<Op> {
    let len = min + rng.next_below((max - min) as u64) as usize;
    (0..len).map(|_| random_op(rng)).collect()
}

fn build_trace(ops: &[Op]) -> Trace {
    let mut t = Tracer::new();
    for (i, op) in ops.iter().enumerate() {
        let site = (i % 37) as u32;
        match *op {
            Op::Alu(d, s) => t.ialu(site, reg::gpr(d), &[reg::gpr(s)]),
            Op::Load(d, a) => t.iload(site, reg::gpr(d), 0x1000_0000 + a, 4, &[reg::gpr(1)]),
            Op::Store(s, a) => t.istore(site, 0x1000_0000 + a, 4, &[reg::gpr(s)]),
            Op::Branch(taken) => t.branch(site, taken, 0, &[reg::gpr(2)]),
            Op::Vec(d, s) => t.vsimple(site, reg::vr(d), &[reg::vr(s)]),
        }
    }
    t.finish()
}

const CASES: usize = 48;

#[test]
fn every_instruction_retires_exactly_once() {
    let mut rng = Xoshiro256::new(0x4E714E);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 0, 400);
        let trace = build_trace(&ops);
        for cfg in [
            SimConfig::four_way(),
            SimConfig::eight_way(),
            SimConfig::sixteen_way(),
        ] {
            let r = Simulator::new(cfg).run(&trace);
            assert_eq!(r.instructions as usize, ops.len(), "case {case}");
        }
    }
}

#[test]
fn cycles_bound_below_by_width_and_above_by_worst_case() {
    let mut rng = Xoshiro256::new(0xC7C1E5);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 1, 400);
        let trace = build_trace(&ops);
        let cfg = SimConfig::four_way();
        let retire_width = cfg.cpu.retire_width as u64;
        let r = Simulator::new(cfg).run(&trace);
        let n = ops.len() as u64;
        assert!(r.cycles >= n / retire_width, "case {case}");
        // Worst case: every instruction serial through memory.
        assert!(
            r.cycles <= n * 400 + 10_000,
            "case {case}: cycles {}",
            r.cycles
        );
    }
}

#[test]
fn stall_cycles_never_exceed_total_cycles() {
    let mut rng = Xoshiro256::new(0x57A115);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 0, 300);
        let trace = build_trace(&ops);
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        assert!(r.traumas.total() <= r.cycles, "case {case}");
    }
}

#[test]
fn perfect_bp_never_slower() {
    let mut rng = Xoshiro256::new(0xBBBB01);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 1, 300);
        let trace = build_trace(&ops);
        let real = Simulator::new(SimConfig::four_way()).run(&trace);
        let mut cfg = SimConfig::four_way();
        cfg.branch = BranchConfig::perfect();
        let perfect = Simulator::new(cfg).run(&trace);
        assert!(
            perfect.cycles <= real.cycles,
            "case {case}: perfect {} > real {}",
            perfect.cycles,
            real.cycles
        );
    }
}

#[test]
fn wider_machines_never_lose_much() {
    // Wider presets have strictly more of every resource; allow a
    // small tolerance for scheduling-order artifacts.
    let mut rng = Xoshiro256::new(0x31DE41);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 1, 300);
        let trace = build_trace(&ops);
        let four = Simulator::new(SimConfig::four_way()).run(&trace);
        let sixteen = Simulator::new(SimConfig::sixteen_way()).run(&trace);
        assert!(
            sixteen.cycles as f64 <= four.cycles as f64 * 1.10 + 50.0,
            "case {case}: 16-way {} vs 4-way {}",
            sixteen.cycles,
            four.cycles
        );
    }
}

#[test]
fn cache_stats_are_consistent() {
    let mut rng = Xoshiro256::new(0xCAC4E5);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 0, 300);
        let trace = build_trace(&ops);
        let mem_ops = trace.stats().mem_ops();
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        assert_eq!(r.dl1.accesses, mem_ops, "case {case}");
        assert!(r.dl1.misses <= r.dl1.accesses, "case {case}");
        assert!(r.l2.misses <= r.l2.accesses, "case {case}");
    }
}

#[test]
fn branch_stats_match_trace() {
    let mut rng = Xoshiro256::new(0xB4A2C4);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 0, 300);
        let trace = build_trace(&ops);
        let cond = trace.insts().iter().filter(|i| i.is_cond_branch()).count() as u64;
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        assert_eq!(r.bp_predictions, cond, "case {case}");
        assert!(r.bp_mispredictions <= r.bp_predictions, "case {case}");
    }
}

#[test]
fn occupancy_histograms_account_every_cycle() {
    let mut rng = Xoshiro256::new(0x0CC09A);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 0, 300);
        let trace = build_trace(&ops);
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        let inflight: u64 = r.inflight_occupancy.as_slice().iter().sum();
        assert_eq!(inflight, r.cycles, "case {case}");
        let retq: u64 = r.retireq_occupancy.as_slice().iter().sum();
        assert_eq!(retq, r.cycles, "case {case}");
    }
}
