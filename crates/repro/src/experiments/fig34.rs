//! Figures 3 and 4: execution cycles and IPC across pipeline widths
//! (4/8/16-way) and memory configurations (me1 … meinf).

use crate::context::Context;
use crate::format::{f2, heading, Table};
use sapa_cpu::config::{BranchConfig, MemConfig};
use sapa_workloads::Workload;

const WIDTHS: [&str; 3] = ["4-way", "8-way", "16-way"];

fn mem_label(m: &MemConfig) -> String {
    let kb = |s: Option<u64>| match s {
        Some(b) if b >= 1 << 20 => format!("{}M", b >> 20),
        Some(b) => format!("{}k", b >> 10),
        None => "INF".to_string(),
    };
    format!("{}/{}/{}", kb(m.il1.size), kb(m.dl1.size), kb(m.l2.size))
}

fn grid(ctx: &mut Context) -> Vec<(Workload, String, String, u64, f64)> {
    // Hand the whole grid to the batch engine first so the points run
    // in parallel under --threads; the loop below is all memo hits.
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .flat_map(|w| {
            WIDTHS.into_iter().flat_map(move |width| {
                MemConfig::table_v()
                    .into_iter()
                    .map(move |mem| (w, Context::config(width, &mem, BranchConfig::table_vi())))
            })
        })
        .collect();
    ctx.sim_batch(&points);

    let mut rows = Vec::new();
    for w in Workload::ALL {
        for width in WIDTHS {
            for mem in MemConfig::table_v() {
                let cfg = Context::config(width, &mem, BranchConfig::table_vi());
                let r = ctx.sim(w, &cfg);
                rows.push((w, width.to_string(), mem_label(&mem), r.cycles, r.ipc()));
            }
        }
    }
    rows
}

/// Renders Figure 3 (cycles vs memory configuration).
pub fn run_fig3(ctx: &mut Context) -> String {
    let mut out = heading("Figure 3 — cycles vs memory configuration");
    let rows = grid(ctx);
    let mut t = Table::new(&["workload", "width", "mem (I1/D1/L2)", "cycles"]);
    for (w, width, mem, cycles, _) in &rows {
        t.row_owned(vec![
            w.label().to_string(),
            width.clone(),
            mem.clone(),
            cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Renders Figure 4 (IPC vs memory configuration).
pub fn run_fig4(ctx: &mut Context) -> String {
    let mut out = heading("Figure 4 — IPC vs memory configuration");
    let rows = grid(ctx);
    let mut t = Table::new(&["workload", "width", "mem (I1/D1/L2)", "IPC"]);
    for (w, width, mem, _, ipc) in &rows {
        t.row_owned(vec![
            w.label().to_string(),
            width.clone(),
            mem.clone(),
            f2(*ipc),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn blast_is_memory_sensitive_fasta_is_not() {
        // Small scale so the working sets are warm; point sims only
        // (the full grid is exercised by the binary, not unit tests).
        let mut ctx = Context::new(Scale::Small);
        let mut cycles = |w: Workload, mem: MemConfig| {
            let cfg = Context::config("4-way", &mem, BranchConfig::table_vi());
            ctx.sim(w, &cfg).cycles
        };
        // BLAST: 32k caches must cost noticeably more than ideal memory.
        let blast_me1 = cycles(Workload::Blast, MemConfig::me1());
        let blast_inf = cycles(Workload::Blast, MemConfig::meinf());
        assert!(
            blast_me1 as f64 > blast_inf as f64 * 1.10,
            "{blast_me1} vs {blast_inf}"
        );
        // FASTA: much less memory-sensitive than BLAST.
        let fasta_me1 = cycles(Workload::Fasta34, MemConfig::me1()) as f64;
        let fasta_inf = cycles(Workload::Fasta34, MemConfig::meinf()) as f64;
        let fasta_ratio = fasta_me1 / fasta_inf;
        let blast_ratio = blast_me1 as f64 / blast_inf as f64;
        assert!(fasta_ratio < blast_ratio, "{fasta_ratio} !< {blast_ratio}");
    }
}
