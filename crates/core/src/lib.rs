//! SAPA — Sequence Alignment Performance Analysis.
//!
//! A from-scratch Rust reproduction of *"Performance Analysis of
//! Sequence Alignment Applications"* (Sánchez, Salamí, Ramirez, Valero;
//! IISWC 2006): the five sequence-comparison workloads (SSEARCH,
//! SIMD Smith-Waterman at 128 and 256 bits, FASTA, BLAST), the
//! Turandot-like cycle-accurate out-of-order simulator they are
//! characterized on, and everything in between (sequences, scoring
//! matrices, synthetic databases, an Altivec emulation, a virtual ISA
//! with tracing).
//!
//! This crate is a facade: it re-exports the individual crates under
//! one roof so downstream users can depend on a single crate.
//!
//! # The 60-second tour
//!
//! Align two sequences:
//!
//! ```
//! use sapa_core::align::sw;
//! use sapa_core::bioseq::{Sequence, SubstitutionMatrix};
//! use sapa_core::bioseq::matrix::GapPenalties;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Sequence::from_str("a", "HEAGAWGHEE")?;
//! let b = Sequence::from_str("b", "PAWHEAE")?;
//! let score = sw::score(
//!     a.residues(),
//!     b.residues(),
//!     &SubstitutionMatrix::blosum62(),
//!     GapPenalties::paper(),
//! );
//! assert_eq!(score, 17);
//! # Ok(())
//! # }
//! ```
//!
//! Trace a workload and simulate it:
//!
//! ```
//! use sapa_core::workloads::{StandardInputs, Workload};
//! use sapa_core::cpu::{SimConfig, Simulator};
//!
//! let inputs = StandardInputs::small();
//! let bundle = Workload::Blast.trace(&inputs);
//! let report = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
//! assert!(report.ipc() > 0.0);
//! ```

/// Biological sequences, FASTA I/O, scoring matrices, synthetic
/// databases (re-export of `sapa-bioseq`).
pub use sapa_bioseq as bioseq;

/// Reference alignment algorithms (re-export of `sapa-align`).
pub use sapa_align as align;

/// Emulated Altivec vectors (re-export of `sapa-vsimd`).
pub use sapa_vsimd as vsimd;

/// Virtual ISA and instruction traces (re-export of `sapa-isa`).
pub use sapa_isa as isa;

/// Instrumented traced workloads (re-export of `sapa-workloads`).
pub use sapa_workloads as workloads;

/// The cycle-accurate simulator (re-export of `sapa-cpu`).
pub use sapa_cpu as cpu;

pub mod fault;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_paths_resolve() {
        let _ = crate::bioseq::SubstitutionMatrix::blosum62();
        let _ = crate::cpu::SimConfig::four_way();
        assert_eq!(crate::workloads::Workload::ALL.len(), 5);
        assert_eq!(crate::cpu::Trauma::COUNT, 56);
    }
}
