/root/repo/target/debug/deps/cross_engine-17e2a271ce02f82c.d: crates/core/../../tests/cross_engine.rs Cargo.toml

/root/repo/target/debug/deps/libcross_engine-17e2a271ce02f82c.rmeta: crates/core/../../tests/cross_engine.rs Cargo.toml

crates/core/../../tests/cross_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
