/root/repo/target/release/deps/sapa_align-4d04a6a0d7ed0eff.d: crates/align/src/lib.rs crates/align/src/banded.rs crates/align/src/blast.rs crates/align/src/blastn.rs crates/align/src/fasta.rs crates/align/src/nw.rs crates/align/src/parallel.rs crates/align/src/result.rs crates/align/src/simd_sw.rs crates/align/src/stats.rs crates/align/src/striped.rs crates/align/src/sw.rs crates/align/src/xdrop.rs

/root/repo/target/release/deps/sapa_align-4d04a6a0d7ed0eff: crates/align/src/lib.rs crates/align/src/banded.rs crates/align/src/blast.rs crates/align/src/blastn.rs crates/align/src/fasta.rs crates/align/src/nw.rs crates/align/src/parallel.rs crates/align/src/result.rs crates/align/src/simd_sw.rs crates/align/src/stats.rs crates/align/src/striped.rs crates/align/src/sw.rs crates/align/src/xdrop.rs

crates/align/src/lib.rs:
crates/align/src/banded.rs:
crates/align/src/blast.rs:
crates/align/src/blastn.rs:
crates/align/src/fasta.rs:
crates/align/src/nw.rs:
crates/align/src/parallel.rs:
crates/align/src/result.rs:
crates/align/src/simd_sw.rs:
crates/align/src/stats.rs:
crates/align/src/striped.rs:
crates/align/src/sw.rs:
crates/align/src/xdrop.rs:
