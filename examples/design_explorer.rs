//! Explore processor design points: how much does each application gain
//! from a wider pipeline, and from a perfect branch predictor? (A
//! miniature of the paper's Figures 3 and 9, on all five workloads.)
//!
//! ```text
//! cargo run --release --example design_explorer [-- --threads N]
//! ```
//!
//! The 5 workloads × 4 configurations grid runs through the parallel
//! sweep engine; `--threads N` fans it out over N workers with output
//! identical to the serial run.

use std::sync::Arc;

use sapa_core::cpu::config::{BranchConfig, CpuConfig, SimConfig};
use sapa_core::cpu::sweep::{run_jobs, SweepJob};
use sapa_core::isa::PackedTrace;
use sapa_core::workloads::{StandardInputs, Workload};

fn main() {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            threads = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads needs a positive integer");
        }
    }

    let inputs = StandardInputs::with_db_size(150, 2);
    let cfg = |cpu: CpuConfig, branch: BranchConfig| SimConfig {
        cpu,
        mem: sapa_core::cpu::config::MemConfig::me1(),
        branch,
    };
    let grid = [
        cfg(CpuConfig::four_way(), BranchConfig::table_vi()),
        cfg(CpuConfig::eight_way(), BranchConfig::table_vi()),
        cfg(CpuConfig::sixteen_way(), BranchConfig::table_vi()),
        cfg(CpuConfig::four_way(), BranchConfig::perfect()),
    ];

    // One packed trace per workload, shared by all four design points.
    let jobs: Vec<SweepJob> = Workload::ALL
        .into_iter()
        .flat_map(|w| {
            let trace = Arc::new(PackedTrace::from_trace(&w.trace(&inputs).trace));
            grid.clone()
                .into_iter()
                .map(move |c| SweepJob::new(Arc::clone(&trace), c))
        })
        .collect();
    let reports = run_jobs(&jobs, threads);

    println!("workload    4-way   8-way  16-way  perfect-BP(4w)  bp-accuracy");
    println!("----------------------------------------------------------------");
    for (i, w) in Workload::ALL.into_iter().enumerate() {
        let row = &reports[i * grid.len()..(i + 1) * grid.len()];
        let (r4, r8, r16, rp) = (&row[0], &row[1], &row[2], &row[3]);
        println!(
            "{:<10}  {:>5.2}  {:>5.2}  {:>5.2}        {:>5.2}        {:>5.1}%",
            w.label(),
            r4.ipc(),
            r8.ipc(),
            r16.ipc(),
            rp.ipc(),
            r4.bp_accuracy() * 100.0,
        );
    }

    println!(
        "\nReading guide: the SIMD codes barely react to the predictor\n\
         (≈2% branches) but scale with width; the heuristics are pinned\n\
         by data-dependent branches, exactly as IISWC 2006 reports."
    );
}
