//! The alignment search daemon.
//!
//! [`serve`] binds a `TcpListener` over a synthetic protein corpus and
//! multiplexes many concurrent line-protocol clients over the engine
//! layer. The moving parts, and what each protects:
//!
//! * **Connection threads** (one per accepted socket) parse frames
//!   under [`crate::protocol::Limits`] with read/write timeouts and a
//!   bounded line buffer, so a slow, half-closed, or hostile client
//!   costs one thread and a few KiB — never the service.
//! * The **admission gate** ([`crate::admission`]) prices every search
//!   in DP cells before it queues; over-budget requests bounce
//!   immediately with a typed `overloaded` error.
//! * **Tenant fairness** ([`crate::quota`]): optional token-bucket
//!   quotas (`throttled`) plus deficit-round-robin dispatch, so one
//!   flooding tenant cannot starve the rest of the queue.
//! * A fixed **worker pool** executes searches via
//!   [`sapa_align::engine::search_with`], reusing striped query
//!   profiles through a shared [`ProfileCache`]. Worker panics are
//!   quarantined at two levels: per-subject by the parallel pipeline's
//!   `catch_unwind`, and per-request by a second `catch_unwind` here —
//!   a panic answers *that* request with `internal` and the process
//!   lives on.
//! * **Deadlines** flow straight through to the engine layer
//!   ([`sapa_align::engine::Deadline`]); timed-out scans come back as
//!   deterministic partial results with `completed`/`coverage`/
//!   `truncated_by` set, not as errors.
//!
//! Fault injection: arming [`FaultPlan`] sites in
//! [`ServiceConfig::fault_plan`] wraps every engine in a
//! [`FaultyEngine`], whose trigger decisions are content-keyed — the
//! same corpus subjects quarantine on every run, which is what lets the
//! chaos suite do exact quarantine accounting.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sapa_align::engine::{
    search_with, AlignmentEngine, Engine, EngineVisitor, Prefilter, SearchRequest, SearchResponse,
    StripedEngine,
};
use sapa_bioseq::db::DatabaseBuilder;
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::ProfileCache;
use sapa_bioseq::queries::QuerySet;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_core::fault::{FaultPlan, FaultyEngine};

use crate::admission::{self, Gate};
use crate::metrics::{Counters, Snapshot};
use crate::protocol::{
    parse_request, render_error, render_ok, render_pong, render_result, ErrorCode, Limits, Request,
    SearchFrame,
};
use crate::quota::{DrrQueue, TokenBucket};

/// Per-tenant token-bucket quota settings.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Burst capacity per tenant, in cells.
    pub capacity_cells: u64,
    /// Continuous refill rate per tenant, in cells per second.
    pub refill_cells_per_sec: f64,
}

/// Everything [`serve`] needs to bring a daemon up.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Worker threads executing searches.
    pub workers: usize,
    /// Threads *per search* inside the engine pipeline. The container
    /// this suite targets is single-core, so the default is 1;
    /// concurrency comes from the worker pool.
    pub search_threads: usize,
    /// Admission budget: max total cost (queued + running), in cells.
    pub budget_cells: u64,
    /// Max queued (not yet running) requests.
    pub max_queued: usize,
    /// Deficit-round-robin quantum, in cells.
    pub quantum_cells: u64,
    /// Optional per-tenant rate quota; `None` disables throttling.
    pub quota: Option<QuotaConfig>,
    /// Protocol limits.
    pub limits: Limits,
    /// Per-connection socket read timeout (idle clients are dropped).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (unread responses to slow
    /// clients fail the write instead of wedging a thread).
    pub write_timeout: Duration,
    /// Fault injection plan for chaos runs; [`FaultPlan::DISABLED`] in
    /// production.
    pub fault_plan: FaultPlan,
    /// Synthetic corpus size, in sequences.
    pub db_seqs: usize,
    /// Corpus generator seed.
    pub db_seed: u64,
    /// Corpus median sequence length.
    pub db_median_len: f64,
    /// Fraction of corpus sequences mutated from the paper's default
    /// query, so real homology exists to find.
    pub db_homolog_fraction: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            search_threads: 1,
            budget_cells: 256_000_000,
            max_queued: 64,
            quantum_cells: 4_000_000,
            quota: None,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            fault_plan: FaultPlan::DISABLED,
            db_seqs: 400,
            db_seed: 42,
            db_median_len: 110.0,
            db_homolog_fraction: 0.1,
        }
    }
}

/// One admitted search waiting for a worker.
struct Job {
    frame: SearchFrame,
    reply: mpsc::Sender<String>,
}

/// Dispatch state guarded by one mutex: the DRR queue plus the cost
/// currently executing, which together are what the admission gate
/// charges against.
struct QueueState {
    drr: DrrQueue<Job>,
    in_flight_cells: u64,
    in_flight_requests: usize,
}

struct State {
    cfg: ServiceConfig,
    gate: Gate,
    subjects: Vec<Vec<AminoAcid>>,
    subject_lens: Vec<usize>,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
    profiles: Mutex<ProfileCache>,
    counters: Counters,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    tenants: Mutex<HashMap<String, TokenBucket>>,
    shutdown: AtomicBool,
}

/// Locks a mutex, riding through poisoning: a panicking worker must
/// never wedge the whole daemon, and every structure behind these locks
/// is valid after any partial update (counters and queues, no
/// invariants spanning the panic point).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running daemon: its bound address plus join handles for an
/// orderly stop.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<State>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of sequences in the served corpus.
    pub fn db_seqs(&self) -> usize {
        self.state.subjects.len()
    }

    /// The served corpus itself, for harnesses that predict
    /// content-keyed fault decisions (the chaos suite's exact
    /// quarantine accounting needs the subject bytes).
    pub fn subjects(&self) -> &[Vec<AminoAcid>] {
        &self.state.subjects
    }

    /// A live counter snapshot (for in-process harnesses; remote
    /// clients use the `stats` op).
    pub fn counters(&self) -> Snapshot {
        self.state.counters.snapshot()
    }

    /// Requests shutdown, drains queued work, joins every thread, and
    /// returns the final counter snapshot.
    pub fn shutdown(self) -> Snapshot {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.work_ready.notify_all();
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.state.counters.snapshot()
    }

    /// Blocks until a client's `shutdown` op stops the daemon (the
    /// daemon binary's main loop), then joins and returns the final
    /// snapshot.
    pub fn wait(self) -> Snapshot {
        let _ = self.accept.join();
        self.state.work_ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        self.state.counters.snapshot()
    }
}

/// Builds the corpus, binds the listener, and starts the daemon.
///
/// # Errors
///
/// Propagates socket bind/configuration failures.
pub fn serve(cfg: ServiceConfig) -> io::Result<ServiceHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let template = QuerySet::paper().default_query().clone();
    let db = DatabaseBuilder::new()
        .seed(cfg.db_seed)
        .sequences(cfg.db_seqs)
        .median_length(cfg.db_median_len)
        .homolog_template(template)
        .homolog_fraction(cfg.db_homolog_fraction)
        .build();
    let subjects: Vec<Vec<AminoAcid>> = db
        .sequences()
        .iter()
        .map(|s| s.residues().to_vec())
        .collect();
    let subject_lens: Vec<usize> = subjects.iter().map(Vec::len).collect();

    let gate = Gate {
        budget_cells: cfg.budget_cells,
        max_queued: cfg.max_queued,
    };
    let quantum = cfg.quantum_cells;
    let workers = cfg.workers.max(1);
    let state = Arc::new(State {
        gate,
        subjects,
        subject_lens,
        matrix: SubstitutionMatrix::blosum62(),
        gaps: GapPenalties::paper(),
        profiles: Mutex::new(ProfileCache::new()),
        counters: Counters::new(),
        queue: Mutex::new(QueueState {
            drr: DrrQueue::new(quantum),
            in_flight_cells: 0,
            in_flight_requests: 0,
        }),
        work_ready: Condvar::new(),
        tenants: Mutex::new(HashMap::new()),
        shutdown: AtomicBool::new(false),
        cfg,
    });

    let worker_handles = (0..workers)
        .map(|i| {
            let st = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("sapad-worker-{i}"))
                .spawn(move || worker_loop(&st))
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let st = Arc::clone(&state);
        thread::Builder::new()
            .name("sapad-accept".to_string())
            .spawn(move || accept_loop(&listener, &st))
            .expect("spawn accept thread")
    };

    Ok(ServiceHandle {
        addr,
        state,
        accept,
        workers: worker_handles,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        if state.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let st = Arc::clone(state);
                // Connection threads are detached: they die with their
                // socket (EOF/timeout) or when shutdown is observed.
                let _ = thread::Builder::new()
                    .name("sapad-conn".to_string())
                    .spawn(move || connection_loop(&st, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// What one bounded read attempt produced.
enum FrameRead {
    /// One complete line (newline stripped, `\r\n` tolerated).
    Line(Vec<u8>),
    /// Orderly end of stream.
    Eof,
    /// The client exceeded the line limit mid-frame.
    Oversized,
    /// The read timeout elapsed (idle or wedged client).
    TimedOut,
}

fn read_frame(stream: &mut TcpStream, pending: &mut Vec<u8>, max: usize) -> io::Result<FrameRead> {
    loop {
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = pending.drain(..=pos).collect();
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            // An over-limit line is oversized even when its newline
            // arrived in the same chunk as the overflow bytes.
            if line.len() > max {
                return Ok(FrameRead::Oversized);
            }
            return Ok(FrameRead::Line(line));
        }
        if pending.len() > max {
            return Ok(FrameRead::Oversized);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(FrameRead::TimedOut)
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn connection_loop(state: &Arc<State>, mut stream: TcpStream) {
    Counters::inc(&state.counters.connections);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let mut pending = Vec::new();
    loop {
        if state.shutting_down() {
            return;
        }
        match read_frame(&mut stream, &mut pending, state.cfg.limits.max_line_bytes) {
            Ok(FrameRead::Line(line)) => {
                if !handle_line(state, &mut stream, &line) {
                    return;
                }
            }
            Ok(FrameRead::Oversized) => {
                Counters::inc(&state.counters.oversized);
                Counters::inc(&state.counters.protocol_errors);
                let detail = format!(
                    "frame exceeds {} bytes; closing (framing lost)",
                    state.cfg.limits.max_line_bytes
                );
                let _ = write_line(
                    &mut stream,
                    &render_error(None, ErrorCode::Oversized, &detail),
                );
                return;
            }
            Ok(FrameRead::Eof) | Ok(FrameRead::TimedOut) | Err(_) => return,
        }
    }
}

/// Handles one complete frame; returns whether the connection should
/// stay open. Invariant: every received line is answered with exactly
/// one line (or the connection closes), keeping request/response
/// streams in lockstep for exact accounting.
fn handle_line(state: &Arc<State>, stream: &mut TcpStream, line: &[u8]) -> bool {
    Counters::inc(&state.counters.frames);
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            Counters::inc(&state.counters.protocol_errors);
            return send(
                state,
                stream,
                &render_error(None, ErrorCode::Malformed, "frame is not utf-8"),
            );
        }
    };
    match parse_request(text, &state.cfg.limits) {
        Err(reject) => {
            Counters::inc(&state.counters.protocol_errors);
            send(state, stream, &reject.render())
        }
        Ok(Request::Ping { id }) => send(state, stream, &render_pong(id)),
        Ok(Request::Stats { id }) => {
            let mut stats = state.counters.snapshot().to_json();
            if let crate::json::Json::Obj(pairs) = &mut stats {
                if let Some(id) = id {
                    pairs.insert(0, ("id".to_string(), crate::json::Json::num_u64(id)));
                }
                pairs.insert(0, ("type".to_string(), crate::json::Json::str("stats")));
                pairs.push((
                    "db_seqs".to_string(),
                    crate::json::Json::num_u64(state.subjects.len() as u64),
                ));
                pairs.push((
                    "budget_cells".to_string(),
                    crate::json::Json::num_u64(state.cfg.budget_cells),
                ));
            }
            send(state, stream, &stats.render())
        }
        Ok(Request::Shutdown { id }) => {
            let _ = write_line(stream, &render_ok(id, "shutdown"));
            state.shutdown.store(true, Ordering::SeqCst);
            state.work_ready.notify_all();
            false
        }
        Ok(Request::Search(frame)) => handle_search(state, stream, *frame),
    }
}

fn send(state: &Arc<State>, stream: &mut TcpStream, line: &str) -> bool {
    if write_line(stream, line).is_err() {
        Counters::inc(&state.counters.write_failures);
        false
    } else {
        true
    }
}

fn handle_search(state: &Arc<State>, stream: &mut TcpStream, frame: SearchFrame) -> bool {
    Counters::inc(&state.counters.submitted);
    let cost = admission::price(
        frame.engine,
        frame.query.len(),
        state.subject_lens.iter().copied(),
        frame.deadline_cells,
    );

    if let Some(q) = &state.cfg.quota {
        let now = Instant::now();
        let mut tenants = lock_unpoisoned(&state.tenants);
        let bucket = tenants
            .entry(frame.tenant.clone())
            .or_insert_with(|| TokenBucket::new(q.capacity_cells, q.refill_cells_per_sec, now));
        if !bucket.try_take(cost, now) {
            let available = bucket.available();
            drop(tenants);
            Counters::inc(&state.counters.rejected_throttled);
            let detail = format!(
                "tenant '{}' quota: {cost} cells requested, {available} available; retry later",
                frame.tenant
            );
            return send(
                state,
                stream,
                &render_error(Some(frame.id), ErrorCode::Throttled, &detail),
            );
        }
    }

    let (tx, rx) = mpsc::channel();
    {
        let mut q = lock_unpoisoned(&state.queue);
        if state.shutting_down() {
            Counters::inc(&state.counters.rejected_unavailable);
            drop(q);
            let _ = write_line(
                stream,
                &render_error(
                    Some(frame.id),
                    ErrorCode::Unavailable,
                    "server is shutting down",
                ),
            );
            return false;
        }
        let committed = q.drr.queued_cost() + q.in_flight_cells;
        if let Err(detail) = state.gate.check(q.drr.len(), committed, cost) {
            drop(q);
            Counters::inc(&state.counters.rejected_overloaded);
            return send(
                state,
                stream,
                &render_error(Some(frame.id), ErrorCode::Overloaded, &detail),
            );
        }
        let tenant = frame.tenant.clone();
        q.drr.push(&tenant, cost, Job { frame, reply: tx });
        state.work_ready.notify_one();
    }

    match rx.recv() {
        Ok(reply) => send(state, stream, &reply),
        Err(_) => {
            // Unreachable by construction (workers always reply before
            // releasing a job), kept so a future bug degrades to one
            // typed error in the quarantine bucket instead of a hang.
            Counters::inc(&state.counters.quarantined_requests);
            Counters::inc(&state.counters.request_panics);
            send(
                state,
                stream,
                &render_error(None, ErrorCode::Internal, "worker dropped the request"),
            )
        }
    }
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let popped = {
            let mut q = lock_unpoisoned(&state.queue);
            loop {
                if let Some((_tenant, cost, job)) = q.drr.pop() {
                    q.in_flight_cells += cost;
                    q.in_flight_requests += 1;
                    break Some((cost, job));
                }
                // Drain-then-exit: queued work admitted before shutdown
                // is still answered.
                if state.shutting_down() {
                    break None;
                }
                let (guard, _) = state
                    .work_ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some((cost, job)) = popped else { return };
        let reply = execute(state, &job.frame);
        let _ = job.reply.send(reply);
        let mut q = lock_unpoisoned(&state.queue);
        q.in_flight_cells -= cost;
        q.in_flight_requests -= 1;
    }
}

/// Executes one admitted search and renders its reply line, absorbing
/// any panic into a typed `internal` error.
fn execute(state: &Arc<State>, frame: &SearchFrame) -> String {
    let outcome = catch_unwind(AssertUnwindSafe(|| run_search(state, frame)));
    let c = &state.counters;
    match outcome {
        Ok(resp) => {
            if !resp.completed {
                Counters::inc(&c.partial);
            }
            if resp.stats.quarantined.is_empty() {
                Counters::inc(&c.served_clean);
            } else {
                Counters::inc(&c.quarantined_requests);
                Counters::add(&c.quarantined_subjects, resp.stats.quarantined.len() as u64);
            }
            render_result(frame.id, &resp)
        }
        Err(_) => {
            Counters::inc(&c.quarantined_requests);
            Counters::inc(&c.request_panics);
            render_error(
                Some(frame.id),
                ErrorCode::Internal,
                "search panicked; request quarantined",
            )
        }
    }
}

fn run_search(state: &Arc<State>, frame: &SearchFrame) -> SearchResponse {
    let slices: Vec<&[AminoAcid]> = state.subjects.iter().map(Vec::as_slice).collect();
    let req = SearchRequest {
        query: &frame.query,
        matrix: &state.matrix,
        gaps: state.gaps,
        top_k: frame.top_k,
        min_score: frame.min_score,
        deadline: frame.deadline(),
        report_alignments: false,
        prefilter: Prefilter::Off,
    };
    let threads = state.cfg.search_threads.max(1);
    let plan = state.cfg.fault_plan;
    if frame.engine == Engine::Striped {
        // The hot path: striped searches share query profiles across
        // requests instead of rebuilding them per scan.
        let profile = lock_unpoisoned(&state.profiles).get_or_build(&frame.query, &state.matrix, 8);
        let engine = StripedEngine::<16, 8>::with_profile(profile, req.gaps);
        return if plan.is_disabled() {
            search_with(Engine::Striped, &engine, &req, &slices, threads)
        } else {
            search_with(
                Engine::Striped,
                &FaultyEngine::new(&engine, plan),
                &req,
                &slices,
                threads,
            )
        };
    }
    struct Exec<'r> {
        req: &'r SearchRequest<'r>,
        slices: &'r [&'r [AminoAcid]],
        threads: usize,
        plan: FaultPlan,
    }
    impl EngineVisitor for Exec<'_> {
        type Out = SearchResponse;
        fn visit<E: AlignmentEngine>(self, id: Engine, engine: &E) -> SearchResponse {
            if self.plan.is_disabled() {
                search_with(id, engine, self.req, self.slices, self.threads)
            } else {
                search_with(
                    id,
                    &FaultyEngine::new(engine, self.plan),
                    self.req,
                    self.slices,
                    self.threads,
                )
            }
        }
    }
    frame.engine.dispatch(
        &req,
        Exec {
            req: &req,
            slices: &slices,
            threads,
            plan,
        },
    )
}

/// Installs a process-wide panic hook that silences panics whose
/// message contains `"injected fault"` (chaos-run noise) while passing
/// every real panic through to the default hook. Harnesses that arm a
/// [`FaultPlan`] call this once; idempotent in effect, cheap to call.
pub fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str);
        if msg.is_some_and(|m| m.contains("injected fault")) {
            return;
        }
        if info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected fault"))
        {
            return;
        }
        default(info);
    }));
}
