//! Emulated Altivec-style SIMD vectors.
//!
//! The paper's `SW_vmx128` workload uses the real Altivec extension
//! (128-bit registers, eight 16-bit lanes for Smith-Waterman scores);
//! `SW_vmx256` uses a "futuristic" 256-bit extension the authors added
//! to GCC and Turandot. This crate emulates both: a const-generic
//! [`Vector`] of `i16` lanes with the saturating-arithmetic, max/min,
//! compare, and element-rotation operations the vectorized
//! Smith-Waterman kernels need.
//!
//! The emulation computes real values — the SIMD Smith-Waterman built on
//! it is checked lane-for-lane against the scalar algorithm — while the
//! instrumented workloads separately emit the corresponding `vsimple`/
//! `vperm` trace instructions.
//!
//! ```
//! use sapa_vsimd::V128;
//!
//! let a = V128::splat(1000);
//! let b = V128::splat(32000);
//! let c = a.adds(b);                // saturates at i16::MAX
//! assert_eq!(c.extract(0), i16::MAX);
//! ```

/// A vector of `L` signed 16-bit lanes.
///
/// `L = 8` models an Altivec 128-bit register ([`V128`]); `L = 16`
/// models the paper's 256-bit extension ([`V256`]). Lane 0 is the
/// "leftmost" element, matching the shift direction of
/// [`Vector::shift_in_first`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vector<const L: usize> {
    lanes: [i16; L],
}

/// 128-bit Altivec vector: eight 16-bit lanes.
pub type V128 = Vector<8>;

/// Futuristic 256-bit vector: sixteen 16-bit lanes.
pub type V256 = Vector<16>;

impl<const L: usize> Vector<L> {
    /// Number of lanes.
    pub const LANES: usize = L;

    /// Register width in bytes.
    pub const WIDTH_BYTES: u32 = (L * 2) as u32;

    /// A vector with every lane equal to `value` (Altivec `vspltish`).
    #[inline]
    pub const fn splat(value: i16) -> Self {
        Vector { lanes: [value; L] }
    }

    /// The all-zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::splat(0)
    }

    /// Builds a vector from exactly `L` lane values.
    #[inline]
    pub const fn from_array(lanes: [i16; L]) -> Self {
        Vector { lanes }
    }

    /// Loads `L` lanes from the front of `slice` (Altivec `lvx`).
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < L`.
    #[inline]
    pub fn from_slice(slice: &[i16]) -> Self {
        let mut lanes = [0i16; L];
        lanes.copy_from_slice(&slice[..L]);
        Vector { lanes }
    }

    /// The lane values.
    #[inline]
    pub const fn to_array(self) -> [i16; L] {
        self.lanes
    }

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= L`.
    #[inline]
    pub const fn extract(self, i: usize) -> i16 {
        self.lanes[i]
    }

    /// Returns a copy with lane `i` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= L`.
    #[inline]
    pub fn insert(mut self, i: usize, value: i16) -> Self {
        self.lanes[i] = value;
        self
    }

    /// Lane-wise saturating addition (Altivec `vaddshs`).
    #[inline]
    pub fn adds(self, rhs: Self) -> Self {
        self.zip(rhs, i16::saturating_add)
    }

    /// Lane-wise saturating subtraction (Altivec `vsubshs`).
    #[inline]
    pub fn subs(self, rhs: Self) -> Self {
        self.zip(rhs, i16::saturating_sub)
    }

    /// Lane-wise maximum (Altivec `vmaxsh`).
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        self.zip(rhs, std::cmp::max)
    }

    /// Lane-wise minimum (Altivec `vminsh`).
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        self.zip(rhs, std::cmp::min)
    }

    /// Lane-wise `self > rhs` mask: all-ones (-1) where true, 0 where
    /// false (Altivec `vcmpgtsh`).
    #[inline]
    pub fn cmpgt(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| if a > b { -1 } else { 0 })
    }

    /// Whether any lane of `self` exceeds the corresponding lane of
    /// `rhs` (Altivec `vcmpgtsh.` with the CR6 "any" predicate).
    #[inline]
    pub fn any_gt(self, rhs: Self) -> bool {
        self.lanes.iter().zip(rhs.lanes.iter()).any(|(a, b)| a > b)
    }

    /// Lane-wise select: where `mask` lane is non-zero take `self`'s
    /// lane, otherwise `other`'s (Altivec `vsel`).
    #[inline]
    pub fn select(self, other: Self, mask: Self) -> Self {
        let mut lanes = [0i16; L];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = if mask.lanes[i] != 0 {
                self.lanes[i]
            } else {
                other.lanes[i]
            };
        }
        Vector { lanes }
    }

    /// Shifts every lane one position toward higher indices and inserts
    /// `first` into lane 0 — the `vsldoi`+`vperm` idiom the
    /// anti-diagonal Smith-Waterman uses to feed one strip's boundary
    /// into the next diagonal step.
    #[inline]
    pub fn shift_in_first(self, first: i16) -> Self {
        let mut lanes = [0i16; L];
        lanes[0] = first;
        lanes[1..L].copy_from_slice(&self.lanes[..L - 1]);
        Vector { lanes }
    }

    /// The last lane — the value that exits the register when
    /// [`Vector::shift_in_first`] is applied.
    #[inline]
    pub const fn last(self) -> i16 {
        self.lanes[L - 1]
    }

    /// Shifts every lane `n` positions toward higher indices, filling
    /// the vacated low lanes with `fill` — the generalized `vsldoi`
    /// used by the Kogge-Stone max-plus scan in the deconstructed
    /// lazy-F correction (`n` doubles each scan step).
    #[inline]
    pub fn shift_lanes(self, n: usize, fill: i16) -> Self {
        let mut lanes = [fill; L];
        if n < L {
            lanes[n..].copy_from_slice(&self.lanes[..L - n]);
        }
        Vector { lanes }
    }

    /// Maximum lane value (Altivec max-across idiom: log2(L) `vperm` +
    /// `vmaxsh` pairs).
    #[inline]
    pub fn horizontal_max(self) -> i16 {
        let mut m = i16::MIN;
        let mut i = 0;
        while i < L {
            if self.lanes[i] > m {
                m = self.lanes[i];
            }
            i += 1;
        }
        m
    }

    #[inline]
    fn zip(self, rhs: Self, f: impl Fn(i16, i16) -> i16) -> Self {
        let mut lanes = [0i16; L];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = f(self.lanes[i], rhs.lanes[i]);
        }
        Vector { lanes }
    }
}

impl<const L: usize> Default for Vector<L> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const L: usize> std::fmt::Display for Vector<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.lanes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_extract() {
        let v = V128::splat(7);
        for i in 0..V128::LANES {
            assert_eq!(v.extract(i), 7);
        }
        assert_eq!(V256::LANES, 16);
        assert_eq!(V128::WIDTH_BYTES, 16);
        assert_eq!(V256::WIDTH_BYTES, 32);
    }

    #[test]
    fn saturating_add_and_sub() {
        let big = V128::splat(i16::MAX - 10);
        assert_eq!(big.adds(V128::splat(100)).extract(0), i16::MAX);
        let small = V128::splat(i16::MIN + 10);
        assert_eq!(small.subs(V128::splat(100)).extract(3), i16::MIN);
        assert_eq!(V128::splat(5).adds(V128::splat(6)).extract(1), 11);
    }

    #[test]
    fn max_min_select() {
        let a = V128::from_array([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = V128::splat(4);
        assert_eq!(a.max(b).to_array(), [4, 4, 4, 4, 5, 6, 7, 8]);
        assert_eq!(a.min(b).to_array(), [1, 2, 3, 4, 4, 4, 4, 4]);
        let mask = a.cmpgt(b);
        assert_eq!(mask.to_array(), [0, 0, 0, 0, -1, -1, -1, -1]);
        let sel = a.select(b, mask);
        assert_eq!(sel.to_array(), [4, 4, 4, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn any_gt() {
        let a = V128::from_array([0, 0, 0, 0, 0, 0, 0, 1]);
        assert!(a.any_gt(V128::zero()));
        assert!(!V128::zero().any_gt(V128::zero()));
    }

    #[test]
    fn shift_in_first_rotates() {
        let a = V128::from_array([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.last(), 8);
        let b = a.shift_in_first(99);
        assert_eq!(b.to_array(), [99, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn shift_lanes_multi() {
        let a = V128::from_array([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.shift_lanes(0, -9).to_array(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.shift_lanes(1, -9).to_array(), [-9, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a.shift_lanes(3, 0).to_array(), [0, 0, 0, 1, 2, 3, 4, 5]);
        assert_eq!(a.shift_lanes(8, -9), V128::splat(-9));
        assert_eq!(a.shift_lanes(20, -9), V128::splat(-9));
        // shift by 1 matches shift_in_first
        assert_eq!(a.shift_lanes(1, 42), a.shift_in_first(42));
    }

    #[test]
    fn horizontal_max() {
        let a = V256::from_array([-5, 3, 17, 2, 9, -20, 0, 4, 1, 1, 1, 16, 15, 14, 13, 12]);
        assert_eq!(a.horizontal_max(), 17);
        assert_eq!(V128::splat(-3).horizontal_max(), -3);
    }

    #[test]
    fn from_slice_takes_prefix() {
        let data: Vec<i16> = (0..20).collect();
        let v = V128::from_slice(&data);
        assert_eq!(v.to_array(), [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic]
    fn from_slice_too_short_panics() {
        let _ = V128::from_slice(&[1, 2, 3]);
    }

    #[test]
    fn insert_replaces_one_lane() {
        let v = V128::zero().insert(5, 42);
        assert_eq!(v.extract(5), 42);
        assert_eq!(v.extract(4), 0);
    }

    #[test]
    fn display_format() {
        let v = Vector::<2>::from_array([1, -2]);
        assert_eq!(v.to_string(), "<1, -2>");
    }
}

/// A vector of `L` unsigned 8-bit lanes — the byte-precision register
/// layout real SIMD Smith-Waterman implementations use for their fast
/// first pass (16 lanes per 128-bit Altivec register instead of 8).
///
/// Local-alignment scores are naturally non-negative, so unsigned
/// saturating arithmetic gives the zero floor for free; overflow is
/// detected by lanes reaching [`u8::MAX`] and handled by the caller
/// re-running in 16-bit precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteVector<const L: usize> {
    lanes: [u8; L],
}

/// 128-bit byte vector: sixteen u8 lanes.
pub type B128 = ByteVector<16>;

/// 256-bit byte vector: thirty-two u8 lanes.
pub type B256 = ByteVector<32>;

impl<const L: usize> ByteVector<L> {
    /// Number of lanes.
    pub const LANES: usize = L;

    /// A vector with every lane equal to `value` (Altivec `vspltb`).
    #[inline]
    pub const fn splat(value: u8) -> Self {
        ByteVector { lanes: [value; L] }
    }

    /// The all-zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::splat(0)
    }

    /// Builds a vector from exactly `L` lane values.
    #[inline]
    pub const fn from_array(lanes: [u8; L]) -> Self {
        ByteVector { lanes }
    }

    /// Loads `L` lanes from the front of `slice` (Altivec `lvx`).
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < L`.
    #[inline]
    pub fn from_slice(slice: &[u8]) -> Self {
        let mut lanes = [0u8; L];
        lanes.copy_from_slice(&slice[..L]);
        ByteVector { lanes }
    }

    /// The lane values.
    #[inline]
    pub const fn to_array(self) -> [u8; L] {
        self.lanes
    }

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= L`.
    #[inline]
    pub const fn extract(self, i: usize) -> u8 {
        self.lanes[i]
    }

    /// Returns a copy with lane `i` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= L`.
    #[inline]
    pub fn insert(mut self, i: usize, value: u8) -> Self {
        self.lanes[i] = value;
        self
    }

    /// Lane-wise saturating addition (Altivec `vaddubs`).
    #[inline]
    pub fn adds(self, rhs: Self) -> Self {
        self.zip(rhs, u8::saturating_add)
    }

    /// Lane-wise saturating subtraction — clamps at 0, which is
    /// exactly the local-alignment floor (Altivec `vsububs`).
    #[inline]
    pub fn subs(self, rhs: Self) -> Self {
        self.zip(rhs, u8::saturating_sub)
    }

    /// Lane-wise maximum (Altivec `vmaxub`).
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        self.zip(rhs, std::cmp::max)
    }

    /// Whether any lane of `self` exceeds the corresponding lane of
    /// `rhs` (Altivec `vcmpgtub.` with the CR6 "any" predicate) — the
    /// striped kernel's lazy-F loop exit test.
    #[inline]
    pub fn any_gt(self, rhs: Self) -> bool {
        self.lanes.iter().zip(rhs.lanes.iter()).any(|(a, b)| a > b)
    }

    /// Whether any lane equals [`u8::MAX`] — the overflow signal that
    /// forces a 16-bit re-run.
    #[inline]
    pub fn saturated(self) -> bool {
        let mut i = 0;
        while i < L {
            if self.lanes[i] == u8::MAX {
                return true;
            }
            i += 1;
        }
        false
    }

    /// Shifts every lane one position toward higher indices and
    /// inserts `first` into lane 0.
    #[inline]
    pub fn shift_in_first(self, first: u8) -> Self {
        let mut lanes = [0u8; L];
        lanes[0] = first;
        lanes[1..L].copy_from_slice(&self.lanes[..L - 1]);
        ByteVector { lanes }
    }

    /// Shifts every lane `n` positions toward higher indices, filling
    /// the vacated low lanes with `fill` — the byte-precision sibling
    /// of [`Vector::shift_lanes`].
    #[inline]
    pub fn shift_lanes(self, n: usize, fill: u8) -> Self {
        let mut lanes = [fill; L];
        if n < L {
            lanes[n..].copy_from_slice(&self.lanes[..L - n]);
        }
        ByteVector { lanes }
    }

    /// Maximum lane value.
    #[inline]
    pub fn horizontal_max(self) -> u8 {
        let mut m = 0u8;
        let mut i = 0;
        while i < L {
            if self.lanes[i] > m {
                m = self.lanes[i];
            }
            i += 1;
        }
        m
    }

    #[inline]
    fn zip(self, rhs: Self, f: impl Fn(u8, u8) -> u8) -> Self {
        let mut lanes = [0u8; L];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = f(self.lanes[i], rhs.lanes[i]);
        }
        ByteVector { lanes }
    }
}

impl<const L: usize> Default for ByteVector<L> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const L: usize> std::fmt::Display for ByteVector<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.lanes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod byte_tests {
    use super::*;

    #[test]
    fn saturating_byte_math() {
        let a = B128::splat(250);
        assert_eq!(a.adds(B128::splat(10)).extract(0), 255);
        assert!(a.adds(B128::splat(10)).saturated());
        assert!(!a.saturated());
        assert_eq!(B128::splat(3).subs(B128::splat(10)).extract(5), 0);
    }

    #[test]
    fn byte_shift_and_max() {
        let mut arr = [0u8; 16];
        for (i, v) in arr.iter_mut().enumerate() {
            *v = i as u8;
        }
        let v = B128::from_array(arr);
        assert_eq!(v.horizontal_max(), 15);
        let s = v.shift_in_first(99);
        assert_eq!(s.extract(0), 99);
        assert_eq!(s.extract(1), 0);
        assert_eq!(s.extract(15), 14);
    }

    #[test]
    fn byte_from_slice_and_any_gt() {
        let data: Vec<u8> = (10..40).collect();
        let v = B128::from_slice(&data);
        assert_eq!(v.extract(0), 10);
        assert_eq!(v.extract(15), 25);
        assert!(v.any_gt(B128::splat(24)));
        assert!(!v.any_gt(B128::splat(25)));
    }

    #[test]
    fn byte_shift_lanes_multi() {
        let mut arr = [0u8; 16];
        for (i, v) in arr.iter_mut().enumerate() {
            *v = (i + 1) as u8;
        }
        let v = B128::from_array(arr);
        assert_eq!(v.shift_lanes(0, 9), v);
        assert_eq!(v.shift_lanes(1, 9), v.shift_in_first(9));
        let s4 = v.shift_lanes(4, 0);
        assert_eq!(s4.extract(3), 0);
        assert_eq!(s4.extract(4), 1);
        assert_eq!(s4.extract(15), 12);
        assert_eq!(v.shift_lanes(16, 7), B128::splat(7));
        assert_eq!(v.shift_lanes(99, 7), B128::splat(7));
    }

    #[test]
    fn byte_insert_and_display() {
        let v = ByteVector::<2>::zero().insert(1, 7);
        assert_eq!(v.to_string(), "<0, 7>");
        assert_eq!(B256::LANES, 32);
    }
}
