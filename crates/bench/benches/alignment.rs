//! Alignment-kernel throughput: the four Smith-Waterman machines plus
//! global and banded alignment. Complements Table III (relative work
//! per aligned cell).

use sapa_bench::harness::{BenchmarkId, Criterion, Throughput};
use sapa_bench::{bench_db, bench_query, criterion_group, criterion_main};
use sapa_core::align::{banded, nw, simd_sw, sw};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::SubstitutionMatrix;

fn sw_variants(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();
    let cells = (query.len() * subject.len()) as u64;

    let mut group = c.benchmark_group("smith_waterman");
    group.throughput(Throughput::Elements(cells));
    group.bench_function("scalar_gotoh", |b| {
        b.iter(|| sw::score(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lazy_f_ssearch", |b| {
        b.iter(|| sw::score_lazy_f(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("simd_vmx128", |b| {
        b.iter(|| simd_sw::score::<8>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("simd_vmx256", |b| {
        b.iter(|| simd_sw::score::<16>(query.residues(), subject, &matrix, gaps))
    });
    group.finish();
}

fn other_kernels(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("other_kernels");
    group.bench_function("needleman_wunsch", |b| {
        b.iter(|| nw::score(query.residues(), subject, &matrix, gaps))
    });
    for width in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("banded_sw", width), &width, |b, &w| {
            b.iter(|| banded::score(query.residues(), subject, &matrix, gaps, 0, w))
        });
    }
    group.bench_function("traceback_alignment", |b| {
        b.iter(|| {
            sw::align(
                &query.residues()[..64],
                &subject[..64.min(subject.len())],
                &matrix,
                gaps,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sw_variants, other_kernels
}
criterion_main!(benches);
