//! Simulation statistics and the report returned by a run.

use crate::cache::CacheStats;
use crate::config::UnitClass;
use crate::trauma::{Trauma, TraumaCounts};

/// Cycles spent at each occupancy level of a queue: `hist[k]` is the
/// number of cycles the queue held exactly `k` entries (paper Fig. 10).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OccupancyHistogram {
    hist: Vec<u64>,
}

impl OccupancyHistogram {
    /// Creates a histogram for occupancies `0..=capacity`.
    pub fn new(capacity: usize) -> Self {
        OccupancyHistogram {
            hist: vec![0; capacity + 1],
        }
    }

    /// Records one cycle at `occupancy` (clamped to capacity).
    #[inline]
    pub fn record(&mut self, occupancy: usize) {
        let i = occupancy.min(self.hist.len() - 1);
        self.hist[i] += 1;
    }

    /// Cycles spent at exactly `occupancy` entries.
    pub fn cycles_at(&self, occupancy: usize) -> u64 {
        self.hist.get(occupancy).copied().unwrap_or(0)
    }

    /// The raw histogram (`len = capacity + 1`).
    pub fn as_slice(&self) -> &[u64] {
        &self.hist
    }

    /// Mean occupancy over all recorded cycles (0 if none).
    pub fn mean(&self) -> f64 {
        let cycles: u64 = self.hist.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .hist
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / cycles as f64
    }
}

/// Per-structure stall attribution — the staged-backend view of the
/// trauma histogram. Dispatch-blocked cycles are broken down by which
/// backend structure was exhausted (rename registers, a reservation
/// station, the ROB, the load queue, the store queue), and the memory-
/// disambiguation machinery reports how many loads it squashed and how
/// many head-of-window cycles were spent waiting on replays.
///
/// A cycle can charge at most one dispatch structure (the first one the
/// in-order dispatch stage hit), so the five `*_stalls` counters are
/// disjoint and each is bounded by the run's cycle count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructStalls {
    /// Cycles dispatch stalled with no free rename register.
    pub rename_stalls: u64,
    /// Cycles dispatch stalled on a full reservation station (any class).
    pub rs_full_stalls: u64,
    /// Cycles dispatch stalled on a full reorder buffer.
    pub rob_full_stalls: u64,
    /// Cycles dispatch stalled on a full load queue.
    pub lq_full_stalls: u64,
    /// Cycles dispatch stalled on a full store queue.
    pub sq_full_stalls: u64,
    /// Loads squashed by memory disambiguation (an older store resolved
    /// to a granule the load had already speculatively read).
    pub replays: u64,
    /// Zero-retire cycles charged to a replayed load at the window head
    /// waiting to re-issue ([`Trauma::MmStqc`]).
    pub replay_wait_cycles: u64,
}

impl StructStalls {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dispatch-blocked cycles across the five structures.
    pub fn total_dispatch_stalls(&self) -> u64 {
        self.rename_stalls
            + self.rs_full_stalls
            + self.rob_full_stalls
            + self.lq_full_stalls
            + self.sq_full_stalls
    }

    /// Charges one dispatch-stall cycle to the structure behind the
    /// given dispatch-stage trauma (no-op for non-structural reasons
    /// such as decode depth).
    pub(crate) fn charge_dispatch(&mut self, t: Trauma) {
        match t {
            Trauma::Rename => self.rename_stalls += 1,
            Trauma::MmRoqf => self.rob_full_stalls += 1,
            Trauma::MmDcqf => self.lq_full_stalls += 1,
            Trauma::MmStqf => self.sq_full_stalls += 1,
            Trauma::DiqVfpu
            | Trauma::DiqVcmplx
            | Trauma::DiqVper
            | Trauma::DiqVi
            | Trauma::DiqCmplx
            | Trauma::DiqLog
            | Trauma::DiqBr
            | Trauma::DiqMem
            | Trauma::DiqFpu
            | Trauma::DiqFix => self.rs_full_stalls += 1,
            _ => {}
        }
    }
}

/// Everything a simulation run measured.
///
/// Equality compares every counter and histogram, so two reports are
/// `==` exactly when the runs were microarchitecturally identical —
/// the property the parallel sweep engine's determinism tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Stall-cycle attribution (paper Fig. 2).
    pub traumas: TraumaCounts,
    /// Per-structure stall attribution (rename/RS/ROB/LSQ pressure and
    /// disambiguation replays).
    pub structures: StructStalls,
    /// L1 data-cache counters.
    pub dl1: CacheStats,
    /// L1 instruction-cache counters.
    pub il1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Data-TLB counters (zero when translation is perfect).
    pub dtlb: CacheStats,
    /// Instruction-TLB counters.
    pub itlb: CacheStats,
    /// Loads that took a store-queue dependency on an in-flight store.
    pub store_forwards: u64,
    /// Instructions issued per functional-unit class (indexed by
    /// [`UnitClass::index`]).
    pub unit_issued: [u64; UnitClass::COUNT],
    /// Issue slots offered per class over the run (`cycles × units` of
    /// the class); `unit_issued[c] / unit_slots[c]` is the class's busy
    /// fraction. Stored as raw counters so reports stay `Eq`.
    pub unit_slots: [u64; UnitClass::COUNT],
    /// Conditional branches predicted.
    pub bp_predictions: u64,
    /// Conditional branches mispredicted.
    pub bp_mispredictions: u64,
    /// Per-class issue-queue occupancy (paper Fig. 10a/b).
    pub queue_occupancy: Vec<OccupancyHistogram>,
    /// In-flight instruction count per cycle (paper Fig. 10c/d).
    pub inflight_occupancy: OccupancyHistogram,
    /// Retire-queue (ROB) occupancy per cycle.
    pub retireq_occupancy: OccupancyHistogram,
    /// Load-queue occupancy per cycle (all-zero under the scoreboard
    /// model, which has no load queue).
    pub lq_occupancy: OccupancyHistogram,
    /// Store-queue occupancy per cycle.
    pub sq_occupancy: OccupancyHistogram,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy in `[0, 1]` (1.0 with no branches).
    pub fn bp_accuracy(&self) -> f64 {
        if self.bp_predictions == 0 {
            1.0
        } else {
            1.0 - self.bp_mispredictions as f64 / self.bp_predictions as f64
        }
    }

    /// Occupancy histogram of one issue queue.
    pub fn queue(&self, class: UnitClass) -> &OccupancyHistogram {
        &self.queue_occupancy[class.index()]
    }

    /// Busy fraction of one functional-unit class in `[0, 1]`: issued
    /// instructions over offered issue slots (0.0 for absent units).
    pub fn eu_utilisation(&self, class: UnitClass) -> f64 {
        let slots = self.unit_slots[class.index()];
        if slots == 0 {
            0.0
        } else {
            self.unit_issued[class.index()] as f64 / slots as f64
        }
    }

    /// Fraction of *all* issue slots the run used — the machine-wide
    /// issue-bandwidth utilisation (riscv-sim style).
    pub fn issue_slot_utilisation(&self) -> f64 {
        let slots: u64 = self.unit_slots.iter().sum();
        if slots == 0 {
            0.0
        } else {
            self.unit_issued.iter().sum::<u64>() as f64 / slots as f64
        }
    }

    /// The busiest functional-unit class and its busy fraction — the
    /// quickest compute-bound vs memory-bound attribution a sweep row
    /// can carry. `None` for a zero-cycle run.
    pub fn busiest_eu(&self) -> Option<(UnitClass, f64)> {
        UnitClass::ALL
            .iter()
            .map(|&c| (c, self.eu_utilisation(c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|_| self.cycles > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_clamps() {
        let mut h = OccupancyHistogram::new(4);
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(99); // clamped to 4
        assert_eq!(h.cycles_at(0), 1);
        assert_eq!(h.cycles_at(2), 2);
        assert_eq!(h.cycles_at(4), 1);
        assert_eq!(h.cycles_at(10), 0);
    }

    #[test]
    fn histogram_mean() {
        let mut h = OccupancyHistogram::new(10);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(OccupancyHistogram::new(3).mean(), 0.0);
    }
}

impl std::fmt::Display for SimReport {
    /// One-paragraph human summary (the `repro simulate` output shape).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "instructions {}  cycles {}  IPC {:.2}",
            self.instructions,
            self.cycles,
            self.ipc()
        )?;
        writeln!(
            f,
            "dl1 {:.2}% miss ({} / {})  il1 {:.2}%  l2 {:.2}%",
            self.dl1.miss_rate() * 100.0,
            self.dl1.misses,
            self.dl1.accesses,
            self.il1.miss_rate() * 100.0,
            self.l2.miss_rate() * 100.0
        )?;
        writeln!(
            f,
            "branches {} predicted, {:.1}% accuracy",
            self.bp_predictions,
            self.bp_accuracy() * 100.0
        )?;
        write!(f, "EU busy:")?;
        for &class in &UnitClass::ALL {
            if self.unit_slots[class.index()] > 0 {
                write!(
                    f,
                    " {}={:.0}%",
                    class.label(),
                    self.eu_utilisation(class) * 100.0
                )?;
            }
        }
        writeln!(
            f,
            "  (issue slots {:.0}%)",
            self.issue_slot_utilisation() * 100.0
        )?;
        write!(f, "top stalls:")?;
        for (t, c) in self.traumas.top(5) {
            if c > 0 {
                write!(f, " {}={}", t.label(), c)?;
            }
        }
        writeln!(f)?;
        write!(
            f,
            "structures: rename={} rs_full={} rob_full={} lq_full={} sq_full={} \
             replays={} replay_wait={}",
            self.structures.rename_stalls,
            self.structures.rs_full_stalls,
            self.structures.rob_full_stalls,
            self.structures.lq_full_stalls,
            self.structures.sq_full_stalls,
            self.structures.replays,
            self.structures.replay_wait_cycles
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use crate::config::SimConfig;
    use crate::Simulator;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    #[test]
    fn report_display_is_informative() {
        let mut t = Tracer::new();
        for i in 0..200u32 {
            t.ialu(i % 5, reg::gpr(1), &[reg::gpr(1)]);
            t.branch(5 + (i % 3), i % 2 == 0, 0, &[reg::gpr(1)]);
        }
        let r = Simulator::new(SimConfig::four_way()).run(&t.finish());
        let text = r.to_string();
        assert!(text.contains("instructions 400"));
        assert!(text.contains("IPC"));
        assert!(text.contains("accuracy"));
        assert!(!text.trim().is_empty());
    }
}
