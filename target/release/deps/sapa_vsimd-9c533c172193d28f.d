/root/repo/target/release/deps/sapa_vsimd-9c533c172193d28f.d: crates/vsimd/src/lib.rs

/root/repo/target/release/deps/libsapa_vsimd-9c533c172193d28f.rlib: crates/vsimd/src/lib.rs

/root/repo/target/release/deps/libsapa_vsimd-9c533c172193d28f.rmeta: crates/vsimd/src/lib.rs

crates/vsimd/src/lib.rs:
