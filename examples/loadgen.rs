//! Load generator for the alignment search daemon.
//!
//! Drives mixed engine/tenant traffic at a `sapa-service` daemon —
//! either an in-process one it spawns itself (the default, and what CI
//! uses) or an external `--addr` — and reports latency percentiles,
//! throughput, and the full server counter snapshot as JSON.
//!
//! Traffic shape is deterministic given the flags: request `i` picks
//! its tenant, engine, and query by simple modular schedules, and the
//! abuse schedule (`--abuse`) reuses the suite's seeded [`FaultPlan`]
//! sites — [`FaultSite::FrameGarble`] corrupts the outgoing frame,
//! [`FaultSite::ClientAbort`] drops the connection mid-exchange — so a
//! given seed replays the same hostile schedule every run.
//!
//! The run fails (nonzero exit) if any reply is unparseable, a reply id
//! does not match its request, or the server's accounting invariant
//! (`submitted == served + rejected + quarantined`) is violated at
//! shutdown. Overload rejections are *not* failures: typed `overloaded`
//! / `throttled` errors are the service working as designed.
//!
//! ```text
//! cargo run --release -p sapa-service --example loadgen -- --smoke
//! cargo run --release -p sapa-service --example loadgen -- \
//!     --requests 1000 --conns 8 --tenants 4 --fault-rate 0.05 --abuse
//! ```

use std::io::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sapa_bioseq::queries::QuerySet;
use sapa_core::fault::{garble_frame, FaultPlan, FaultSite};
use sapa_service::json::{self, Json};
use sapa_service::{
    quiet_injected_panics, serve, Client, QuotaConfig, SearchParams, ServiceConfig, Snapshot,
};

struct Options {
    addr: Option<String>,
    requests: u64,
    conns: usize,
    tenants: usize,
    mode_open: bool,
    rate: f64,
    engines: Vec<String>,
    top_k: usize,
    deadline_cells: Option<u64>,
    deadline_ms: Option<u64>,
    fault_rate: f64,
    fault_seed: u64,
    abuse: bool,
    smoke: bool,
    json_path: Option<String>,
    db_seqs: usize,
    budget_cells: u64,
    max_queued: usize,
    quota_capacity: Option<u64>,
    quota_refill: f64,
    workers: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            requests: 200,
            conns: 4,
            tenants: 3,
            mode_open: false,
            rate: 50.0,
            engines: vec!["striped".into(), "blast".into(), "fasta".into()],
            top_k: 10,
            deadline_cells: None,
            deadline_ms: None,
            fault_rate: 0.0,
            fault_seed: 2006,
            abuse: false,
            smoke: false,
            json_path: None,
            db_seqs: 400,
            budget_cells: 256_000_000,
            max_queued: 64,
            quota_capacity: None,
            quota_refill: 0.0,
            workers: 2,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [options]\n\
         \n\
         traffic:\n\
           --requests N         total search requests (default 200)\n\
           --conns N            concurrent connections (default 4)\n\
           --tenants N          distinct tenant ids (default 3)\n\
           --mode open|closed   pacing (default closed)\n\
           --rate R             open-loop offered rate, req/s across all conns\n\
           --engines a,b,c      engine mix (default striped,blast,fasta)\n\
           --top-k N            hits per request (default 10)\n\
           --deadline-cells N   attach a deterministic cell budget to every request\n\
           --deadline-ms N      attach a wall deadline to every request\n\
         \n\
         hostility:\n\
           --fault-rate R       arm server-side fault sites at rate R (in-process only)\n\
           --fault-seed N       fault/abuse schedule seed (default 2006)\n\
           --abuse              garble frames + abort connections on the seeded schedule\n\
         \n\
         target (default: spawn an in-process daemon):\n\
           --addr HOST:PORT     drive an external daemon instead\n\
           --db-seqs N          in-process corpus size (default 400)\n\
           --workers N          in-process worker threads (default 2)\n\
           --budget-cells N     in-process admission budget\n\
           --max-queued N       in-process queue cap\n\
           --quota-capacity N   per-tenant quota cells (default off)\n\
           --quota-refill R     per-tenant refill cells/s\n\
         \n\
         output:\n\
           --smoke              small deterministic run; writes BENCH_service_smoke.json\n\
           --json PATH          write the metrics JSON to PATH"
    );
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut o = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut value = || -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("loadgen: {flag} needs a value");
                    usage()
                })
                .clone()
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("loadgen: invalid value '{v}' for {name}");
                usage()
            })
        }
        match flag.as_str() {
            "--addr" => o.addr = Some(value()),
            "--requests" => o.requests = num("--requests", &value()),
            "--conns" => o.conns = num("--conns", &value()),
            "--tenants" => o.tenants = num("--tenants", &value()),
            "--mode" => match value().as_str() {
                "open" => o.mode_open = true,
                "closed" => o.mode_open = false,
                other => {
                    eprintln!("loadgen: unknown mode '{other}'");
                    usage()
                }
            },
            "--rate" => o.rate = num("--rate", &value()),
            "--engines" => o.engines = value().split(',').map(str::to_string).collect(),
            "--top-k" => o.top_k = num("--top-k", &value()),
            "--deadline-cells" => o.deadline_cells = Some(num("--deadline-cells", &value())),
            "--deadline-ms" => o.deadline_ms = Some(num("--deadline-ms", &value())),
            "--fault-rate" => o.fault_rate = num("--fault-rate", &value()),
            "--fault-seed" => o.fault_seed = num("--fault-seed", &value()),
            "--abuse" => o.abuse = true,
            "--smoke" => o.smoke = true,
            "--json" => o.json_path = Some(value()),
            "--db-seqs" => o.db_seqs = num("--db-seqs", &value()),
            "--workers" => o.workers = num("--workers", &value()),
            "--budget-cells" => o.budget_cells = num("--budget-cells", &value()),
            "--max-queued" => o.max_queued = num("--max-queued", &value()),
            "--quota-capacity" => o.quota_capacity = Some(num("--quota-capacity", &value())),
            "--quota-refill" => o.quota_refill = num("--quota-refill", &value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag '{other}'");
                usage()
            }
        }
        i += 1;
    }
    if o.smoke {
        o.requests = o.requests.min(120);
        o.db_seqs = o.db_seqs.min(120);
        if o.json_path.is_none() {
            o.json_path = Some("BENCH_service_smoke.json".to_string());
        }
    }
    o.conns = o.conns.max(1);
    o.tenants = o.tenants.max(1);
    if o.engines.is_empty() {
        o.engines = vec!["striped".into()];
    }
    o
}

/// Client-side tallies, shared across connection threads.
#[derive(Default)]
struct ClientStats {
    sent: AtomicU64,
    results: AtomicU64,
    typed_errors: AtomicU64,
    rejected: AtomicU64,
    garbled_sent: AtomicU64,
    aborts: AtomicU64,
    id_mismatches: AtomicU64,
    parse_failures: AtomicU64,
    transport_failures: AtomicU64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let o = parse_options();
    let abuse_plan = if o.abuse {
        FaultPlan::new(
            o.fault_seed,
            if o.fault_rate > 0.0 {
                o.fault_rate
            } else {
                0.05
            },
        )
    } else {
        FaultPlan::DISABLED
    };

    // Target: external daemon or in-process server.
    let mut in_process = None;
    let addr: SocketAddr = match &o.addr {
        Some(a) => match a.parse() {
            Ok(sa) => sa,
            Err(_) => {
                eprintln!("loadgen: invalid --addr '{a}'");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if o.fault_rate > 0.0 {
                quiet_injected_panics();
            }
            let cfg = ServiceConfig {
                workers: o.workers,
                budget_cells: o.budget_cells,
                max_queued: o.max_queued,
                quota: o.quota_capacity.map(|capacity_cells| QuotaConfig {
                    capacity_cells,
                    refill_cells_per_sec: o.quota_refill,
                }),
                fault_plan: if o.fault_rate > 0.0 {
                    FaultPlan::new(o.fault_seed, o.fault_rate)
                } else {
                    FaultPlan::DISABLED
                },
                db_seqs: o.db_seqs,
                ..ServiceConfig::default()
            };
            match serve(cfg) {
                Ok(h) => {
                    let a = h.addr();
                    in_process = Some(h);
                    a
                }
                Err(e) => {
                    eprintln!("loadgen: failed to start in-process daemon: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // Deterministic query mix: the paper's query set, rendered to text.
    let queries: Vec<String> = QuerySet::paper()
        .queries()
        .iter()
        .map(|q| q.residues().iter().map(|a| a.to_char()).collect())
        .collect();

    let stats = Arc::new(ClientStats::default());
    let latencies: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let started = Instant::now();

    // Requests are striped over connections; each connection thread is
    // a closed loop, or paces sends to its slice of the offered rate.
    let per_conn_interval = if o.mode_open && o.rate > 0.0 {
        Some(Duration::from_secs_f64(o.conns as f64 / o.rate))
    } else {
        None
    };
    let threads: Vec<_> = (0..o.conns)
        .map(|conn| {
            let stats = Arc::clone(&stats);
            let latencies = Arc::clone(&latencies);
            let queries = queries.clone();
            let engines = o.engines.clone();
            let tenants = o.tenants;
            let top_k = o.top_k;
            let deadline_cells = o.deadline_cells;
            let deadline_ms = o.deadline_ms;
            let requests = o.requests;
            let conns = o.conns as u64;
            thread::spawn(move || {
                let timeout = Duration::from_secs(30);
                let mut client = match Client::connect(addr, timeout) {
                    Ok(c) => c,
                    Err(_) => {
                        stats.transport_failures.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let mut id = conn as u64;
                while id < requests {
                    if let Some(interval) = per_conn_interval {
                        let due = started + interval * (id / conns) as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            thread::sleep(wait);
                        }
                    }
                    let params = SearchParams {
                        id,
                        tenant: &format!("t{}", id % tenants as u64),
                        engine: &engines[(id as usize) % engines.len()],
                        query: &queries[(id as usize) % queries.len()],
                        top_k,
                        min_score: 1,
                        deadline_cells,
                        deadline_ms,
                    };
                    let frame = params.render();

                    // Abuse site 1: garble the frame on the seeded
                    // schedule; the server owes exactly one typed error.
                    if let Some(garbled) = garble_frame(frame.as_bytes(), &abuse_plan, id) {
                        stats.garbled_sent.fetch_add(1, Ordering::Relaxed);
                        stats.sent.fetch_add(1, Ordering::Relaxed);
                        match client
                            .send_frame(&garbled)
                            .and_then(|()| client.recv_line())
                        {
                            Ok(Some(reply)) => match json::parse(&reply) {
                                Ok(v) if v.get("type").and_then(Json::as_str) == Some("error") => {
                                    stats.typed_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(_) => {
                                    // A mutation can still be a valid
                                    // request; any one reply is fine.
                                }
                                Err(_) => {
                                    stats.parse_failures.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                            // Oversized/charset mutations may close the
                            // connection; reconnect and continue.
                            Ok(None) | Err(_) => match Client::connect(addr, timeout) {
                                Ok(c) => client = c,
                                Err(_) => {
                                    stats.transport_failures.fetch_add(1, Ordering::Relaxed);
                                    return;
                                }
                            },
                        }
                        id += conns;
                        continue;
                    }

                    // Abuse site 2: submit, then vanish without reading
                    // the reply — the daemon must absorb the dead socket.
                    if abuse_plan.triggers(FaultSite::ClientAbort, id) {
                        stats.aborts.fetch_add(1, Ordering::Relaxed);
                        stats.sent.fetch_add(1, Ordering::Relaxed);
                        let _ = client.send_line(&frame);
                        drop(client);
                        match Client::connect(addr, timeout) {
                            Ok(c) => client = c,
                            Err(_) => {
                                stats.transport_failures.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        id += conns;
                        continue;
                    }

                    let t0 = Instant::now();
                    stats.sent.fetch_add(1, Ordering::Relaxed);
                    match client.request(&frame) {
                        Ok(reply) => match json::parse(&reply) {
                            Ok(v) => {
                                let kind = v.get("type").and_then(Json::as_str);
                                let rid = v.get("id").and_then(Json::as_u64);
                                if rid != Some(id) {
                                    stats.id_mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                match kind {
                                    Some("result") => {
                                        let us = t0.elapsed().as_micros() as u64;
                                        latencies.lock().unwrap().push(us);
                                        stats.results.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some("error") => {
                                        stats.typed_errors.fetch_add(1, Ordering::Relaxed);
                                        let code = v.get("code").and_then(Json::as_str);
                                        if matches!(code, Some("overloaded" | "throttled")) {
                                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    _ => {
                                        stats.parse_failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(_) => {
                                stats.parse_failures.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            stats.transport_failures.fetch_add(1, Ordering::Relaxed);
                            match Client::connect(addr, timeout) {
                                Ok(c) => client = c,
                                Err(_) => return,
                            }
                        }
                    }
                    id += conns;
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = started.elapsed();

    // Server-side snapshot: from the in-process handle (after an
    // orderly shutdown) or the remote stats op.
    let (server_json, balances) = match in_process {
        Some(handle) => {
            // Quiesce: workers finished when all client threads joined
            // (closed-loop replies arrived), so the snapshot is stable.
            let snap: Snapshot = handle.shutdown();
            (snap.to_json(), snap.balances())
        }
        None => match Client::connect(addr, Duration::from_secs(5))
            .and_then(|mut c| c.request(r#"{"op":"stats"}"#))
        {
            Ok(reply) => match json::parse(&reply) {
                Ok(v) => {
                    let ok = v.get("balances").and_then(Json::as_bool).unwrap_or(false);
                    (v, ok)
                }
                Err(_) => (Json::Null, false),
            },
            Err(_) => (Json::Null, false),
        },
    };

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let results = stats.results.load(Ordering::Relaxed);
    let report = Json::obj(vec![
        ("bench", Json::str("service_loadgen")),
        (
            "mode",
            Json::str(if o.mode_open { "open" } else { "closed" }),
        ),
        ("requests", Json::num_u64(o.requests)),
        ("conns", Json::num_u64(o.conns as u64)),
        ("tenants", Json::num_u64(o.tenants as u64)),
        (
            "engines",
            Json::Arr(o.engines.iter().map(|e| Json::str(e)).collect()),
        ),
        ("abuse", Json::Bool(o.abuse)),
        ("fault_rate", Json::Num(o.fault_rate)),
        ("wall_s", Json::Num(wall.as_secs_f64())),
        (
            "qps",
            Json::Num(results as f64 / wall.as_secs_f64().max(1e-9)),
        ),
        ("p50_us", Json::num_u64(percentile(&lat, 0.50))),
        ("p90_us", Json::num_u64(percentile(&lat, 0.90))),
        ("p99_us", Json::num_u64(percentile(&lat, 0.99))),
        (
            "client",
            Json::obj(vec![
                ("sent", Json::num_u64(stats.sent.load(Ordering::Relaxed))),
                ("results", Json::num_u64(results)),
                (
                    "typed_errors",
                    Json::num_u64(stats.typed_errors.load(Ordering::Relaxed)),
                ),
                (
                    "rejected",
                    Json::num_u64(stats.rejected.load(Ordering::Relaxed)),
                ),
                (
                    "garbled_sent",
                    Json::num_u64(stats.garbled_sent.load(Ordering::Relaxed)),
                ),
                (
                    "aborts",
                    Json::num_u64(stats.aborts.load(Ordering::Relaxed)),
                ),
                (
                    "id_mismatches",
                    Json::num_u64(stats.id_mismatches.load(Ordering::Relaxed)),
                ),
                (
                    "parse_failures",
                    Json::num_u64(stats.parse_failures.load(Ordering::Relaxed)),
                ),
                (
                    "transport_failures",
                    Json::num_u64(stats.transport_failures.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        ("server", server_json),
        ("accounting_balanced", Json::Bool(balances)),
    ]);
    let rendered = report.render();
    println!("{rendered}");
    if let Some(path) = &o.json_path {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
            f.write_all(rendered.as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen: wrote {path}");
    }

    let hard_failures =
        stats.id_mismatches.load(Ordering::Relaxed) + stats.parse_failures.load(Ordering::Relaxed);
    if hard_failures > 0 {
        eprintln!("loadgen: {hard_failures} malformed/mismatched replies");
        return ExitCode::FAILURE;
    }
    if !balances {
        eprintln!("loadgen: server accounting invariant violated");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
