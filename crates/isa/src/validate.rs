//! Structural validation of instruction traces.
//!
//! The simulator tolerates any well-formed trace, but a trace generator
//! bug (wrong region, missing width, branch to nowhere) would silently
//! skew every downstream measurement. [`validate`] checks the
//! invariants every trace emitted by this suite must satisfy; the
//! workload test suites run it over full traces.

use crate::inst::{Inst, OpClass};
use crate::mem::DATA_BASE;
use crate::trace::{Trace, CODE_BASE};

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An instruction PC lies outside the code segment.
    PcOutOfRange {
        /// Index of the offending instruction.
        index: usize,
        /// Its PC.
        pc: u32,
    },
    /// A PC is not 4-byte aligned.
    PcMisaligned {
        /// Index of the offending instruction.
        index: usize,
        /// Its PC.
        pc: u32,
    },
    /// A memory instruction's effective address lies below the data
    /// segment (i.e. inside code or unmapped low memory).
    AddressOutOfRange {
        /// Index of the offending instruction.
        index: usize,
        /// Its effective address.
        ea: u32,
    },
    /// A taken branch's target lies outside the code segment.
    TargetOutOfRange {
        /// Index of the offending instruction.
        index: usize,
        /// Its target.
        target: u32,
    },
    /// A non-memory instruction carries a memory-width encoding.
    UnexpectedWidth {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A load has no destination register.
    LoadWithoutDestination {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A store has a destination register.
    StoreWithDestination {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::PcOutOfRange { index, pc } => {
                write!(
                    f,
                    "instruction {index}: pc {pc:#x} outside the code segment"
                )
            }
            Violation::PcMisaligned { index, pc } => {
                write!(f, "instruction {index}: pc {pc:#x} not 4-byte aligned")
            }
            Violation::AddressOutOfRange { index, ea } => {
                write!(
                    f,
                    "instruction {index}: address {ea:#x} below the data segment"
                )
            }
            Violation::TargetOutOfRange { index, target } => {
                write!(
                    f,
                    "instruction {index}: branch target {target:#x} outside code"
                )
            }
            Violation::UnexpectedWidth { index } => {
                write!(
                    f,
                    "instruction {index}: non-memory op encodes an access width"
                )
            }
            Violation::LoadWithoutDestination { index } => {
                write!(
                    f,
                    "instruction {index}: load without a destination register"
                )
            }
            Violation::StoreWithDestination { index } => {
                write!(f, "instruction {index}: store with a destination register")
            }
        }
    }
}

/// Checks every structural invariant; returns all violations found
/// (bounded at `limit` to keep pathological traces cheap to report).
pub fn validate(trace: &Trace, limit: usize) -> Vec<Violation> {
    validate_iter(trace.insts().iter().copied(), limit)
}

/// [`validate`] over any instruction stream — lets a
/// [`crate::packed::PackedTrace`] be validated straight off its
/// sequential decoder without materializing an array-of-structs trace.
pub fn validate_iter<I: IntoIterator<Item = Inst>>(insts: I, limit: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    for (index, inst) in insts.into_iter().enumerate() {
        if out.len() >= limit {
            break;
        }
        check_inst(index, &inst, &mut out);
    }
    out
}

fn check_inst(index: usize, inst: &Inst, out: &mut Vec<Violation>) {
    if inst.pc < CODE_BASE || inst.pc >= DATA_BASE {
        out.push(Violation::PcOutOfRange { index, pc: inst.pc });
    }
    if !inst.pc.is_multiple_of(4) {
        out.push(Violation::PcMisaligned { index, pc: inst.pc });
    }
    match inst.op {
        op if op.is_mem() => {
            if inst.ea < DATA_BASE {
                out.push(Violation::AddressOutOfRange { index, ea: inst.ea });
            }
            if op.is_load() && !inst.dst.is_some() {
                out.push(Violation::LoadWithoutDestination { index });
            }
            if op.is_store() && inst.dst.is_some() {
                out.push(Violation::StoreWithDestination { index });
            }
        }
        OpClass::Branch => {
            if inst.taken() && (inst.ea < CODE_BASE || inst.ea >= DATA_BASE) {
                out.push(Violation::TargetOutOfRange {
                    index,
                    target: inst.ea,
                });
            }
        }
        _ => {
            if inst.flags >> crate::inst::flags::WIDTH_SHIFT != 0 {
                out.push(Violation::UnexpectedWidth { index });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{self, Reg};
    use crate::trace::Tracer;

    #[test]
    fn clean_trace_validates() {
        let mut t = Tracer::new();
        t.iload(0, reg::gpr(1), DATA_BASE + 4, 4, &[reg::gpr(2)]);
        t.ialu(1, reg::gpr(3), &[reg::gpr(1)]);
        t.branch(2, true, 0, &[reg::gpr(3)]);
        t.istore(3, DATA_BASE + 8, 4, &[reg::gpr(3)]);
        assert!(validate(&t.finish(), 10).is_empty());
    }

    #[test]
    fn bad_address_is_caught() {
        let mut t = Tracer::new();
        t.iload(0, reg::gpr(1), 0x10, 4, &[]); // below DATA_BASE
        let v = validate(&t.finish(), 10);
        assert!(matches!(v[0], Violation::AddressOutOfRange { .. }));
        assert!(v[0].to_string().contains("below the data segment"));
    }

    #[test]
    fn store_with_destination_is_caught() {
        use crate::inst::{flags, Inst, OpClass};
        let bad = Inst {
            pc: CODE_BASE,
            ea: DATA_BASE,
            op: OpClass::IStore,
            dst: reg::gpr(1), // stores must not write a register
            srcs: [Reg::NONE; 3],
            flags: 2 << flags::WIDTH_SHIFT,
        };
        let trace = Trace::from_insts(vec![bad]);
        let v = validate(&trace, 10);
        assert!(matches!(v[0], Violation::StoreWithDestination { .. }));
    }

    #[test]
    fn violation_limit_bounds_output() {
        let mut t = Tracer::new();
        for _ in 0..100 {
            t.iload(0, reg::gpr(1), 0x10, 4, &[]);
        }
        assert_eq!(validate(&t.finish(), 5).len(), 5);
    }
}
