//! `SW_vmx128` / `SW_vmx256`: the traced anti-diagonal SIMD
//! Smith-Waterman.
//!
//! The computation is the Wozniak-style algorithm of
//! [`sapa_align::simd_sw`], executed for real on the emulated Altivec
//! vectors while the corresponding instruction stream is emitted: one
//! block of `vsimple`/`vperm` recurrence work per anti-diagonal step,
//! the scalar boundary loads/stores that carry values between query
//! strips, and the small amount of loop-control scalar code — which is
//! why these workloads show ~2% branches and long vector dependence
//! chains (the paper's `RG_VI`/`RG_VPER` traumas).
//!
//! With `L = 16` (`SW_vmx256`) each step covers twice the cells, but
//! the boundary gather/scatter work per step grows (wider registers
//! need more permute/merge steps and extra score-gather loads), so the
//! total instruction reduction is well below 2× — reproducing the
//! paper's observation that 256-bit registers cut instructions by only
//! ~18% on average.

use sapa_align::result::{Hit, TopK};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, Sequence, SubstitutionMatrix};
use sapa_isa::mem::AddressSpace;
use sapa_isa::reg::{self, Reg};
use sapa_isa::trace::{Trace, Tracer};
use sapa_vsimd::Vector;

use crate::layout::DbImage;

/// Result of a traced SIMD Smith-Waterman run.
#[derive(Debug, Clone)]
pub struct SimdSwRun {
    /// The instruction trace of the whole search.
    pub trace: Trace,
    /// Best local-alignment score per subject.
    pub scores: Vec<i32>,
    /// Ranked hit list.
    pub hits: Vec<Hit>,
}

mod site {
    pub const STRIP_SETUP: u32 = 0;
    pub const LD_DB: u32 = 1; // scalar load of db residues for the step
    pub const ADDR1: u32 = 2;
    pub const ADDR2: u32 = 3;
    pub const LD_BH: u32 = 4; // boundary H scalar load
    pub const LD_BF: u32 = 5; // boundary F scalar load
    pub const VLD_SCORE: u32 = 6; // score-column vector load
    pub const VLD_SCORE2: u32 = 7; // second gather load (wide registers)
    pub const VPERM_SCORE: u32 = 8; // align gathered scores
    pub const VE_SUB1: u32 = 9;
    pub const VE_SUB2: u32 = 10;
    pub const VE_MAX: u32 = 11;
    pub const VF_SHIFT: u32 = 12; // vperm: shift F diagonal
    pub const VH_SHIFT: u32 = 13; // vperm: shift H diagonal
    pub const VF_SUB1: u32 = 14;
    pub const VF_SUB2: u32 = 15;
    pub const VF_MAX: u32 = 16;
    pub const VD_SHIFT: u32 = 17; // vperm: shift H(d-2)
    pub const VH_ADD: u32 = 18;
    pub const VH_MAX_E: u32 = 19;
    pub const VH_MAX_F: u32 = 20;
    pub const VH_MAX_0: u32 = 21;
    pub const VBEST: u32 = 22;
    pub const VEXTRACT: u32 = 23; // vperm: move last lane for carry-out
    pub const ST_CARRY: u32 = 24;
    pub const VPERM_MERGE: u32 = 25; // extra merges for 256-bit halves
    pub const VLD_EXTRA: u32 = 26; // extra wide-gather load
    pub const INC: u32 = 27;
    pub const B_STEP: u32 = 28; // inner-loop backedge
    pub const ST_HROW: u32 = 31; // spill this step's H vector
    pub const LD_HROW: u32 = 32; // reload the previous step's H vector
    pub const ST_EROW: u32 = 33; // spill E
    pub const LD_EROW: u32 = 34; // reload E
    pub const ST_HROW2: u32 = 35; // second half (256-bit machine)
    pub const LD_HROW2: u32 = 36;
    pub const VPERM_HMERGE: u32 = 37; // cross-half merge of reloaded H
    pub const VPERM_HALIGN: u32 = 38; // alignment of the merged halves
    pub const VPERM_XFIX1: u32 = 39; // cross-half shift fix-up (F path)
    pub const VPERM_XFIX2: u32 = 40; // cross-half shift fix-up (H path)
    pub const ADDR3: u32 = 41;
    pub const VPERM_BINS1: u32 = 42; // wide boundary insert, stage 1
    pub const VPERM_BINS2: u32 = 43; // wide boundary insert, stage 2
    pub const B_STRIP: u32 = 29; // strip-loop backedge
    pub const B_SEQ: u32 = 30; // per-subject loop
    pub const TOP: u32 = 1;
}

// Vector register roles.
const V_HD1: Reg = reg::vr(1); // H at diagonal d-1
const V_HD2: Reg = reg::vr(2); // H at diagonal d-2
const V_E: Reg = reg::vr(3);
const V_F: Reg = reg::vr(4);
const V_S: Reg = reg::vr(5); // gathered scores
const V_T1: Reg = reg::vr(6);
const V_T2: Reg = reg::vr(7);
const V_SH: Reg = reg::vr(8); // shifted H
const V_SF: Reg = reg::vr(9); // shifted F
const V_BEST: Reg = reg::vr(10);
const V_CONST: Reg = reg::vr(11); // gap-penalty splats
const V_LDH: Reg = reg::vr(12); // H row reloaded from the spill buffer
const V_LDE: Reg = reg::vr(13); // E row reloaded from the spill buffer

const R_PTR: Reg = reg::gpr(8);
const R_CARRY: Reg = reg::gpr(9);
const R_BH: Reg = reg::gpr(20);
const R_BF: Reg = reg::gpr(21);
const R_ADDR: Reg = reg::gpr(12);
const R_EXT: Reg = reg::gpr(13);

/// "Minus infinity" for 16-bit lanes (matches `sapa_align::simd_sw`).
const NEG16: i16 = -25000;

/// Runs the traced SIMD search with `L` lanes (8 → `SW_vmx128`,
/// 16 → `SW_vmx256`).
pub fn run<const L: usize>(
    query: &[AminoAcid],
    db: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    keep: usize,
) -> SimdSwRun {
    let m = query.len();
    let mut space = AddressSpace::new();
    let img = DbImage::build(&mut space, db);
    // Strip profile: per strip, 24 residue columns × L lanes of i16.
    let profile = space
        .alloc(
            "strip_profile",
            (AminoAcid::COUNT * 2 * L * m.div_ceil(L).max(1)) as u64,
            128,
        )
        .expect("profile fits");
    // Carry rows: H and F of each strip's last row, 2 bytes per column.
    let max_n: usize = db.iter().map(Sequence::len).max().unwrap_or(0);
    let carry = space
        .alloc("carry_rows", (4 * max_n.max(1)) as u64, 128)
        .expect("carry rows fit");
    // Spill ring for the H/E diagonal vectors: with only 32 Altivec
    // registers the real kernel round-trips the previous diagonals
    // through memory every step, which puts the L1 hit latency inside
    // the recurrence (the paper's Fig. 7 observation).
    let spill = space
        .alloc("diag_spill", (4 * 2 * 2 * 2 * L) as u64, 128)
        .expect("spill ring fits");

    let vwidth = (2 * L) as u32; // register width in bytes
    let wide = L > 8;

    let open_ext_v = Vector::<L>::splat((gaps.open + gaps.extend) as i16);
    let ext_v = Vector::<L>::splat(gaps.extend as i16);
    let zero = Vector::<L>::zero();
    let neg = Vector::<L>::splat(NEG16);

    let mut t = Tracer::with_capacity(1024);
    let mut scores = Vec::with_capacity(db.len());
    let mut results = TopK::new(keep.max(1));

    for si in 0..img.len() {
        let subject = img.subject(si);
        let n = subject.len();
        if m == 0 || n == 0 {
            scores.push(0);
            continue;
        }

        let mut carry_h = vec![0i16; n];
        let mut carry_f = vec![NEG16; n];
        let mut vbest = zero;

        let mut i0 = 0usize;
        let mut strip = 0u32;
        while i0 < m {
            t.ialu(site::STRIP_SETUP, R_PTR, &[R_PTR]);
            let mut next_h = vec![0i16; n];
            let mut next_f = vec![NEG16; n];

            let mut h_dm1 = neg;
            let mut h_dm2 = neg;
            let mut e_dm1 = neg;
            let mut f_dm1 = neg;

            let diag_count = n + L - 1;
            for d in 0..diag_count {
                // --- Scalar framing: addresses, db residue, boundary.
                t.ialu(site::ADDR1, R_ADDR, &[R_PTR]);
                if d < n {
                    t.iload(site::LD_DB, R_EXT, img.residue_addr(si, d), 1, &[R_ADDR]);
                }
                let bidx = (d.min(n - 1)) as u32;
                t.iload(site::LD_BH, R_BH, carry.addr(4 * bidx), 2, &[R_CARRY]);
                t.iload(site::LD_BF, R_BF, carry.addr(4 * bidx + 2), 2, &[R_CARRY]);

                // --- Score gather: vector load(s) of the profile
                // column plus alignment permute(s).
                let col = (strip * AminoAcid::COUNT as u32 * vwidth
                    + (d as u32 % AminoAcid::COUNT as u32) * vwidth)
                    % (profile.size() - vwidth);
                t.vload(site::VLD_SCORE, V_S, profile.addr(col), vwidth, &[R_ADDR]);
                if wide {
                    // A 256-bit gather is assembled from two half-width
                    // loads plus merge permutes, and the boundary
                    // insertion crosses the halves — the extra work
                    // that keeps the 256-bit instruction reduction well
                    // below 2× (paper Section VI).
                    t.vload(site::VLD_SCORE2, V_T1, profile.addr(col), vwidth, &[R_ADDR]);
                    t.vperm(site::VPERM_MERGE, V_S, &[V_S, V_T1]);
                    t.ialu(site::ADDR2, R_ADDR, &[R_ADDR]);
                    t.vload(site::VLD_EXTRA, V_T2, profile.addr(col), vwidth, &[R_ADDR]);
                    t.vperm(site::VPERM_MERGE, V_S, &[V_S, V_T2]);
                    t.ialu(site::ADDR2, R_ADDR, &[R_ADDR]);
                    t.iload(
                        site::LD_DB,
                        R_EXT,
                        img.residue_addr(si, d.min(n - 1)),
                        1,
                        &[R_ADDR],
                    );
                }
                t.vperm(site::VPERM_SCORE, V_S, &[V_S, V_E]);

                // --- Real computation of this diagonal step.
                let b_h = boundary(&carry_h, d as isize, n);
                let b_f = boundary(&carry_f, d as isize, n);
                let b_hd = boundary(&carry_h, d as isize - 1, n);

                let e_d = e_dm1.subs(ext_v).max(h_dm1.subs(open_ext_v));
                t.vsimple(site::VE_SUB1, V_T1, &[V_E, V_CONST]);
                t.vsimple(site::VE_SUB2, V_T2, &[V_HD1, V_CONST]);
                t.vsimple(site::VE_MAX, V_E, &[V_T1, V_T2]);

                // Reload the previous step's spilled H/E rows; the
                // store below wrote them one step ago, so the load's
                // store-queue dependency puts the L1 latency on the
                // recurrence's critical path.
                let slot = (d % 4) as u32 * 2 * vwidth;
                let prev_slot = ((d + 3) % 4) as u32 * 2 * vwidth;
                t.vload(
                    site::LD_HROW,
                    V_LDH,
                    spill.addr(prev_slot),
                    vwidth,
                    &[R_CARRY],
                );
                if wide {
                    // The 256-bit row round-trips as two 128-bit
                    // halves that must be merged and re-aligned —
                    // serial permute work the 128-bit machine does not
                    // pay. This is the dependency-chain cost behind the
                    // paper's ~9%-not-2x observation (Section VI).
                    t.ialu(site::ADDR3, R_ADDR, &[R_ADDR]);
                    t.vload(
                        site::LD_HROW2,
                        V_T2,
                        spill.addr(prev_slot + 16),
                        16,
                        &[R_ADDR],
                    );
                    t.vperm(site::VPERM_HMERGE, V_LDH, &[V_LDH, V_T2]);
                    t.vperm(site::VPERM_HALIGN, V_LDH, &[V_LDH, V_CONST]);
                }
                t.vload(
                    site::LD_EROW,
                    V_LDE,
                    spill.addr(prev_slot + vwidth),
                    vwidth,
                    &[R_CARRY],
                );

                let f_shift = f_dm1.shift_in_first(b_f);
                let h_shift = h_dm1.shift_in_first(b_h);
                t.vperm(site::VF_SHIFT, V_SF, &[V_LDE, R_BF]);
                t.vperm(site::VH_SHIFT, V_SH, &[V_LDH, R_BH]);
                if wide {
                    // Lane shifts across the 128-bit boundary need an
                    // extra fix-up permute per operand, and inserting
                    // the scalar strip boundary into a 256-bit register
                    // is a two-stage permute of its own.
                    t.vperm(site::VPERM_XFIX1, V_SF, &[V_SF, V_LDE]);
                    t.vperm(site::VPERM_XFIX2, V_SH, &[V_SH, V_LDH]);
                    t.vperm(site::VPERM_BINS1, V_SH, &[V_SH, R_BH]);
                    t.vperm(site::VPERM_BINS2, V_SH, &[V_SH, V_CONST]);
                }
                let f_d = f_shift.subs(ext_v).max(h_shift.subs(open_ext_v));
                t.vsimple(site::VF_SUB1, V_T1, &[V_SF, V_CONST]);
                t.vsimple(site::VF_SUB2, V_T2, &[V_SH, V_CONST]);
                t.vsimple(site::VF_MAX, V_F, &[V_T1, V_T2]);

                let mut h_diag = h_dm2.shift_in_first(b_hd);
                if d < L {
                    h_diag = h_diag.insert(d, 0);
                }
                t.vperm(site::VD_SHIFT, V_SH, &[V_HD2, V_CONST]);

                let s_d = gather_scores::<L>(query, subject, matrix, i0, d);
                let h_d = h_diag.adds(s_d).max(e_d).max(f_d).max(zero);
                t.vsimple(site::VH_ADD, V_T1, &[V_SH, V_S]);
                t.vsimple(site::VH_MAX_E, V_T1, &[V_T1, V_E]);
                t.vsimple(site::VH_MAX_F, V_T1, &[V_T1, V_F]);
                t.vsimple(site::VH_MAX_0, V_HD1, &[V_T1, V_CONST]);

                vbest = vbest.max(h_d);
                t.vsimple(site::VBEST, V_BEST, &[V_BEST, V_HD1]);

                // Spill this step's H and E for the next step's reload.
                if wide {
                    t.vstore(site::ST_HROW, spill.addr(slot), 16, &[V_HD1, R_CARRY]);
                    t.vstore(site::ST_HROW2, spill.addr(slot + 16), 16, &[V_HD1, R_CARRY]);
                } else {
                    t.vstore(site::ST_HROW, spill.addr(slot), vwidth, &[V_HD1, R_CARRY]);
                }
                t.vstore(
                    site::ST_EROW,
                    spill.addr(slot + vwidth),
                    vwidth,
                    &[V_E, R_CARRY],
                );

                // --- Carry out the strip's last row.
                if d + 1 >= L {
                    let col_out = d + 1 - L;
                    if col_out < n {
                        next_h[col_out] = h_d.extract(L - 1);
                        next_f[col_out] = f_d.extract(L - 1);
                        t.vperm(site::VEXTRACT, V_T2, &[V_HD1, V_F]);
                        t.istore(
                            site::ST_CARRY,
                            carry.addr(4 * col_out as u32),
                            4,
                            &[V_T2, R_CARRY],
                        );
                    }
                }

                h_dm2 = h_dm1;
                h_dm1 = h_d;
                e_dm1 = e_d;
                f_dm1 = f_d;

                // Loop control: the real kernel is unrolled 2×, so the
                // backedge appears every other step.
                if d % 2 == 1 {
                    t.ialu(site::INC, R_PTR, &[R_PTR]);
                    t.branch(site::B_STEP, d + 1 < diag_count, site::TOP, &[R_PTR]);
                }
            }

            carry_h = next_h;
            carry_f = next_f;
            i0 += L;
            strip += 1;
            t.branch(site::B_STRIP, i0 < m, site::STRIP_SETUP, &[R_PTR]);
        }

        let best = i32::from(vbest.horizontal_max()).max(0);
        scores.push(best);
        if best > 0 {
            results.push(Hit {
                seq_index: si,
                score: best,
            });
        }
        t.branch(site::B_SEQ, si + 1 < img.len(), site::STRIP_SETUP, &[R_PTR]);
    }

    let hits = results.finish().into_hits();
    SimdSwRun {
        trace: t.finish(),
        scores,
        hits,
    }
}

#[inline]
fn boundary(row: &[i16], j: isize, n: usize) -> i16 {
    if j >= 0 && (j as usize) < n {
        row[j as usize]
    } else {
        NEG16
    }
}

#[inline]
fn gather_scores<const L: usize>(
    query: &[AminoAcid],
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    i0: usize,
    d: usize,
) -> Vector<L> {
    let mut v = Vector::<L>::splat(NEG16);
    let m = query.len();
    let n = subject.len();
    for k in 0..L {
        let i = i0 + k;
        if i >= m || d < k {
            continue;
        }
        let j = d - k;
        if j < n {
            v = v.insert(k, matrix.score(query[i], subject[j]) as i16);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::OpClass;

    fn seq(id: &str, s: &str) -> Sequence {
        Sequence::from_str(id, s).unwrap()
    }

    fn inputs() -> (Vec<AminoAcid>, Vec<Sequence>) {
        let q = seq("q", &"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK".repeat(2))
            .residues()
            .to_vec();
        let db = vec![
            seq("s0", "GGPGGNDNDNPPGGAAGGPGGNDNDNPPGGAA"),
            seq("s1", &"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK".repeat(2)),
            seq("s2", "AAWWYYHHEEKKRRDDAAWWYYHHEEKKRRDD"),
        ];
        (q, db)
    }

    #[test]
    fn scores_match_reference_both_widths() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let r128 = run::<8>(&q, &db, &m, g, 10);
        let r256 = run::<16>(&q, &db, &m, g, 10);
        for (i, s) in db.iter().enumerate() {
            let expect = sapa_align::sw::score(&q, s.residues(), &m, g);
            assert_eq!(r128.scores[i], expect, "vmx128 subject {i}");
            assert_eq!(r256.scores[i], expect, "vmx256 subject {i}");
        }
    }

    #[test]
    fn wide_registers_cut_instructions_but_less_than_2x() {
        // Use a query long enough for several strips at both widths
        // (the reduction comes from halving the strip count; the
        // per-step overhead grows with register width).
        let q = seq("q", &"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK".repeat(4))
            .residues()
            .to_vec();
        let db = vec![seq("s", &"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK".repeat(3))];
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let n128 = run::<8>(&q, &db, &m, g, 10).trace.len() as f64;
        let n256 = run::<16>(&q, &db, &m, g, 10).trace.len() as f64;
        let ratio = n256 / n128;
        // Paper: ~18% fewer instructions (ratio ≈ 0.82), definitely not
        // the naive 0.5.
        assert!(ratio < 0.97, "ratio {ratio}");
        assert!(ratio > 0.6, "ratio {ratio}");
    }

    #[test]
    fn instruction_mix_matches_figure_1_shape() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let stats = run::<8>(&q, &db, &m, g, 10).trace.stats();
        let ctrl = stats.fraction(OpClass::Branch);
        let vsimple = stats.fraction(OpClass::VSimple);
        let vperm = stats.fraction(OpClass::VPerm);
        let loads = stats.fraction(OpClass::ILoad) + stats.fraction(OpClass::VLoad);
        // Paper: ~2% branches, big vector-integer component, loads
        // around 16%, permutes significant.
        assert!(ctrl < 0.06, "ctrl {ctrl}");
        assert!(vsimple > 0.25, "vsimple {vsimple}");
        assert!(vperm > 0.10, "vperm {vperm}");
        assert!((0.08..0.30).contains(&loads), "loads {loads}");
    }

    #[test]
    fn vmx256_has_higher_scalar_fraction() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let s128 = run::<8>(&q, &db, &m, g, 10).trace.stats();
        let s256 = run::<16>(&q, &db, &m, g, 10).trace.stats();
        let scalar128 = s128.fraction(OpClass::IAlu) + s128.fraction(OpClass::ILoad);
        let scalar256 = s256.fraction(OpClass::IAlu) + s256.fraction(OpClass::ILoad);
        assert!(scalar256 > scalar128, "{scalar256} !> {scalar128}");
        // And the vsimple share falls (paper: 21% → 14%).
        assert!(s256.fraction(OpClass::VSimple) < s128.fraction(OpClass::VSimple));
    }

    #[test]
    fn empty_inputs_are_safe() {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let r = run::<8>(&[], &[seq("s", "MK")], &m, g, 5);
        assert_eq!(r.scores, vec![0]);
    }
}
