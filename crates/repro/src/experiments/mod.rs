//! One module per paper artifact. Every module exposes
//! `run(&mut Context) -> String` returning the rendered rows/series of
//! the corresponding table or figure.

pub mod ext_blastn;
pub mod ext_prefetch;
pub mod ext_queries;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig34;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table7;
pub mod tables456;

use crate::context::Context;

/// All experiment ids in presentation order.
pub const ALL_IDS: [&str; 19] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "tables456",
    "table7",
    "ext_queries",
    "ext_prefetch",
    "ext_blastn",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error message for unknown ids.
pub fn run_by_id(ctx: &mut Context, id: &str) -> Result<String, String> {
    let out = match id {
        "table1" => table1::run(ctx),
        "table2" => table2::run(ctx),
        "table3" => table3::run(ctx),
        "fig1" => fig1::run(ctx),
        "fig2" => fig2::run(ctx),
        "fig3" => fig34::run_fig3(ctx),
        "fig4" => fig34::run_fig4(ctx),
        "fig5" => fig5::run(ctx),
        "fig6" => fig6::run(ctx),
        "fig7" => fig7::run(ctx),
        "fig8" => fig8::run(ctx),
        "fig9" => fig9::run(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "tables456" => tables456::run(ctx),
        "table7" => table7::run(ctx),
        "ext_queries" => ext_queries::run(ctx),
        "ext_prefetch" => ext_prefetch::run(ctx),
        "ext_blastn" => ext_blastn::run(ctx),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(out)
}
