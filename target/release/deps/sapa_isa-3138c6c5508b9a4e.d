/root/repo/target/release/deps/sapa_isa-3138c6c5508b9a4e.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/release/deps/libsapa_isa-3138c6c5508b9a4e.rlib: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/release/deps/libsapa_isa-3138c6c5508b9a4e.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/stats.rs:
crates/isa/src/trace.rs:
crates/isa/src/validate.rs:
