//! End-to-end integration: generate inputs → trace every workload →
//! simulate → check the paper's qualitative findings hold on the full
//! pipeline.

use sapa_core::cpu::config::{BranchConfig, MemConfig, SimConfig};
use sapa_core::cpu::{Simulator, Trauma};
use sapa_core::workloads::{StandardInputs, Workload};

fn inputs() -> StandardInputs {
    // Big enough for warm caches, small enough for CI.
    StandardInputs::with_db_size(100, 2)
}

#[test]
fn all_workloads_complete_and_find_the_homolog() {
    let inputs = inputs();
    for w in Workload::ALL {
        let bundle = w.trace(&inputs);
        assert!(!bundle.trace.is_empty(), "{w}: empty trace");
        // The database plants homologs of the query; every search
        // strategy must surface at least one hit.
        assert!(!bundle.hits.is_empty(), "{w}: no hits found");
        let report = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
        assert_eq!(report.instructions as usize, bundle.trace.len(), "{w}");
        assert!(
            report.ipc() > 0.1 && report.ipc() < 6.0,
            "{w}: ipc {}",
            report.ipc()
        );
    }
}

#[test]
fn finding_1_blast_is_memory_bound() {
    let inputs = inputs();
    let bundle = Workload::Blast.trace(&inputs);

    let run = |mem: MemConfig| {
        let cfg = SimConfig {
            cpu: sapa_core::cpu::config::CpuConfig::four_way(),
            mem,
            branch: BranchConfig::table_vi(),
        };
        Simulator::new(cfg).run(&bundle.trace)
    };
    let small = run(MemConfig::me1());
    let ideal = run(MemConfig::meinf());

    // The paper reports a 52% slowdown from ideal caches to 32K L1s.
    let slowdown = small.cycles as f64 / ideal.cycles as f64;
    assert!(slowdown > 1.15, "slowdown only {slowdown:.2}");
    // And a DL1 miss rate of roughly 4% at 32K.
    assert!(
        small.dl1.miss_rate() > 0.015,
        "miss rate {:.3}",
        small.dl1.miss_rate()
    );
}

#[test]
fn finding_2_branch_prediction_limits_the_branchy_codes() {
    let inputs = inputs();
    for w in [Workload::Ssearch34, Workload::Fasta34] {
        let bundle = w.trace(&inputs);
        let real = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
        let mut cfg = SimConfig::four_way();
        cfg.branch = BranchConfig::perfect();
        let perfect = Simulator::new(cfg).run(&bundle.trace);
        let gain = perfect.ipc() / real.ipc();
        assert!(gain > 1.10, "{w}: perfect-BP gain only {gain:.2}");
        // Accuracy sits in the 75–95% band the paper's Fig. 11 shows.
        assert!(
            (0.70..0.97).contains(&real.bp_accuracy()),
            "{w}: accuracy {:.3}",
            real.bp_accuracy()
        );
    }
}

#[test]
fn finding_3_simd_codes_are_dependency_bound() {
    let inputs = inputs();
    let bundle = Workload::SwVmx128.trace(&inputs);
    let report = Simulator::new(SimConfig::four_way()).run(&bundle.trace);

    // Branch prediction is irrelevant (≈2% branches, ~perfect rate).
    assert!(report.bp_accuracy() > 0.97, "{}", report.bp_accuracy());
    // Vector-dependency traumas dominate the stall histogram.
    let top3: Vec<Trauma> = report.traumas.top(3).into_iter().map(|(t, _)| t).collect();
    assert!(
        top3.iter()
            .any(|t| matches!(t, Trauma::RgVi | Trauma::RgVper | Trauma::RgMem)),
        "top traumas {top3:?}"
    );
}

#[test]
fn finding_4_wider_simd_gains_less_than_2x() {
    let inputs = inputs();
    let v128 = Workload::SwVmx128.trace(&inputs);
    let v256 = Workload::SwVmx256.trace(&inputs);
    let r128 = Simulator::new(SimConfig::four_way()).run(&v128.trace);
    let r256 = Simulator::new(SimConfig::four_way()).run(&v256.trace);

    // vmx256 is faster, but nowhere near 2x (paper: ~9% time cut).
    assert!(r256.cycles < r128.cycles);
    let speedup = r128.cycles as f64 / r256.cycles as f64;
    assert!(speedup < 1.9, "speedup {speedup:.2}");

    // Both SW variants report identical biology.
    assert_eq!(v128.hits, v256.hits);
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let inputs = StandardInputs::small();
    for w in Workload::ALL {
        let b1 = w.trace(&inputs);
        let b2 = w.trace(&inputs);
        assert_eq!(b1.trace, b2.trace, "{w}: trace differs");
        let r1 = Simulator::new(SimConfig::four_way()).run(&b1.trace);
        let r2 = Simulator::new(SimConfig::four_way()).run(&b2.trace);
        assert_eq!(r1.cycles, r2.cycles, "{w}: cycles differ");
    }
}

#[test]
fn trace_serialization_round_trips_through_disk_format() {
    let inputs = StandardInputs::small();
    let bundle = Workload::Fasta34.trace(&inputs);
    let mut buf = Vec::new();
    bundle.trace.write_to(&mut buf).unwrap();
    let back = sapa_core::isa::Trace::read_from(&buf[..]).unwrap();
    assert_eq!(back, bundle.trace);
    // Simulating the deserialized trace gives identical results.
    let a = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
    let b = Simulator::new(SimConfig::four_way()).run(&back);
    assert_eq!(a.cycles, b.cycles);
}
