/root/repo/target/debug/deps/sapa_bench-efbd5facfa0f0468.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_bench-efbd5facfa0f0468.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
