//! Shared experiment state: inputs, cached traces, cached simulations.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sapa_core::fault::{corrupt_packed, FaultPlan};
use sapa_cpu::config::{BranchConfig, MemConfig, SimConfig};
use sapa_cpu::sweep::{run_jobs_isolated, SweepJob};
use sapa_cpu::SimReport;
use sapa_isa::PackedTrace;
use sapa_workloads::{StandardInputs, Workload};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal inputs for unit tests (seconds for the whole suite).
    Tiny,
    /// Reduced inputs for a quick look.
    Small,
    /// The suite's standard scale (the numbers in EXPERIMENTS.md).
    Paper,
}

impl Scale {
    fn inputs(self) -> StandardInputs {
        match self {
            Scale::Tiny => StandardInputs::with_db_size(12, 1),
            Scale::Small => StandardInputs::with_db_size(100, 2),
            Scale::Paper => StandardInputs::paper_scale(),
        }
    }
}

/// Key identifying a cached simulation: the workload plus the full
/// structural configuration. Two call sites that build equal
/// `SimConfig`s share one run, and two that differ anywhere (even in
/// a prefetch degree buried three levels deep) never collide — which
/// string tags could not guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    workload: Workload,
    config: SimConfig,
}

/// Shared state across experiments: one set of inputs, lazily generated
/// traces, and memoized simulator runs (figures 3 and 4 share a grid,
/// figure 2 and 10 share the baseline run, …).
///
/// Traces are held packed ([`PackedTrace`], ~2× smaller than the
/// array-of-structs form) and shared by `Arc`, so the parallel sweep
/// engine replays one copy per workload no matter how many
/// configurations are in flight.
pub struct Context {
    /// The evaluation inputs.
    pub inputs: StandardInputs,
    scale: Scale,
    threads: usize,
    traces: HashMap<Workload, Arc<PackedTrace>>,
    sims: HashMap<SimKey, SimReport>,
    failures: HashMap<SimKey, String>,
    sim_instructions: u64,
    sim_jobs: u64,
    sim_failed: u64,
    sim_wall: Duration,
}

impl Context {
    /// Creates a context at the given scale (serial simulation).
    pub fn new(scale: Scale) -> Self {
        Context::with_threads(scale, 1)
    }

    /// Creates a context that fans simulation batches out over
    /// `threads` worker threads (1 = serial; results are identical
    /// regardless).
    pub fn with_threads(scale: Scale, threads: usize) -> Self {
        Context {
            inputs: scale.inputs(),
            scale,
            threads: threads.max(1),
            traces: HashMap::new(),
            sims: HashMap::new(),
            failures: HashMap::new(),
            sim_instructions: 0,
            sim_jobs: 0,
            sim_failed: 0,
            sim_wall: Duration::ZERO,
        }
    }

    /// The context's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker threads used for simulation batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Instructions simulated so far (every non-memoized run, summed).
    pub fn sim_instructions(&self) -> u64 {
        self.sim_instructions
    }

    /// Simulation jobs actually executed so far (memo hits excluded),
    /// counting failed/quarantined jobs as well as successes — the
    /// honest denominator for a jobs-per-second rate.
    pub fn sim_jobs(&self) -> u64 {
        self.sim_jobs
    }

    /// Executed simulation jobs that failed (subset of [`Context::sim_jobs`]).
    pub fn sim_failed(&self) -> u64 {
        self.sim_failed
    }

    /// Wall-clock time spent inside the simulator so far.
    pub fn sim_wall(&self) -> Duration {
        self.sim_wall
    }

    /// The packed trace of `workload`, generated on first use.
    pub fn trace(&mut self, workload: Workload) -> &Arc<PackedTrace> {
        let inputs = &self.inputs;
        self.traces
            .entry(workload)
            .or_insert_with(|| Arc::new(PackedTrace::from_trace(&workload.trace(inputs).trace)))
    }

    /// Simulates `workload` under `cfg`, memoized on the full
    /// structural configuration.
    ///
    /// # Panics
    ///
    /// Panics if the simulation job failed (corrupted trace, invalid
    /// configuration). Call [`Context::try_sim`] to handle failures.
    pub fn sim(&mut self, workload: Workload, cfg: &SimConfig) -> &SimReport {
        match self.try_sim(workload, cfg) {
            Ok(_) => {
                // Re-borrow immutably; the entry is guaranteed present.
                &self.sims[&SimKey {
                    workload,
                    config: cfg.clone(),
                }]
            }
            Err(cause) => panic!("simulation of {} failed: {cause}", workload.label()),
        }
    }

    /// Simulates `workload` under `cfg`, reporting job failure as an
    /// error instead of panicking. Failures are memoized just like
    /// successes, so a poisoned point is attempted once and its cause
    /// is returned on every subsequent call.
    pub fn try_sim(&mut self, workload: Workload, cfg: &SimConfig) -> Result<&SimReport, String> {
        self.sim_batch(&[(workload, cfg.clone())]);
        let key = SimKey {
            workload,
            config: cfg.clone(),
        };
        match self.sims.get(&key) {
            Some(report) => Ok(report),
            None => Err(self
                .failures
                .get(&key)
                .cloned()
                .unwrap_or_else(|| "job produced neither report nor failure".into())),
        }
    }

    /// Every failed simulation point so far: `(workload, cause)`,
    /// sorted for deterministic reporting.
    pub fn failed_jobs(&self) -> Vec<(Workload, String)> {
        let mut out: Vec<(Workload, String)> = self
            .failures
            .iter()
            .map(|(k, cause)| (k.workload, cause.clone()))
            .collect();
        out.sort_by(|a, b| a.0.label().cmp(b.0.label()).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// Replaces `workload`'s cached trace with a deterministically
    /// corrupted copy (see [`sapa_core::fault::corrupt_packed`]),
    /// generating the trace first if needed. Subsequent simulations of
    /// this workload will fail with a trace error — the fault-injection
    /// entry point for chaos tests and `repro sweep --corrupt-trace`.
    pub fn corrupt_trace(&mut self, workload: Workload, plan: &FaultPlan) {
        let clean = Arc::clone(self.trace(workload));
        self.traces
            .insert(workload, Arc::new(corrupt_packed(&clean, plan)));
    }

    /// Runs a batch of `(workload, config)` points, skipping memoized
    /// ones and fanning the rest out over the context's worker
    /// threads. Results land in the memo store; fetch them afterwards
    /// with [`Context::sim`] (a hit, now). Calling this with a whole
    /// figure's grid up front is what makes `--threads N` effective.
    ///
    /// Jobs run panic-isolated ([`run_jobs_isolated`]): a point that
    /// fails — corrupted trace, invalid configuration — is recorded in
    /// the failure store with its cause instead of aborting the batch,
    /// and every other point still completes.
    pub fn sim_batch(&mut self, points: &[(Workload, SimConfig)]) {
        // Dedupe against the memo/failure stores and the batch itself.
        let mut todo: Vec<SimKey> = Vec::new();
        for (workload, config) in points {
            let key = SimKey {
                workload: *workload,
                config: config.clone(),
            };
            if !self.sims.contains_key(&key)
                && !self.failures.contains_key(&key)
                && !todo.contains(&key)
            {
                todo.push(key);
            }
        }
        if todo.is_empty() {
            return;
        }

        self.prewarm_traces(&todo);

        let jobs: Vec<SweepJob> = todo
            .iter()
            .map(|key| SweepJob::new(Arc::clone(&self.traces[&key.workload]), key.config.clone()))
            .collect();
        let start = Instant::now();
        let outcomes = run_jobs_isolated(&jobs, self.threads);
        self.sim_wall += start.elapsed();
        for (key, outcome) in todo.into_iter().zip(outcomes) {
            self.sim_jobs += 1;
            match outcome {
                Ok(report) => {
                    self.sim_instructions += report.instructions;
                    self.sims.insert(key, report);
                }
                Err(failure) => {
                    self.sim_failed += 1;
                    self.failures.insert(key, failure.cause);
                }
            }
        }
    }

    /// Generates every missing trace the batch needs, in parallel:
    /// trace generation is a pure function of `(workload, inputs)`, so
    /// workers can build distinct workloads' traces concurrently.
    fn prewarm_traces(&mut self, todo: &[SimKey]) {
        let mut missing: Vec<Workload> = Vec::new();
        for key in todo {
            if !self.traces.contains_key(&key.workload) && !missing.contains(&key.workload) {
                missing.push(key.workload);
            }
        }
        if missing.is_empty() {
            return;
        }
        if self.threads <= 1 || missing.len() == 1 {
            for w in missing {
                self.trace(w);
            }
            return;
        }
        let inputs = &self.inputs;
        let built: Vec<(Workload, Arc<PackedTrace>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = missing
                .iter()
                .map(|&w| {
                    scope.spawn(move || {
                        (w, Arc::new(PackedTrace::from_trace(&w.trace(inputs).trace)))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trace generation panicked"))
                .collect()
        });
        self.traces.extend(built);
    }

    /// The paper's baseline measurement configuration: 4-way, `me1`
    /// memory, Table VI (real) branch predictor.
    pub fn baseline(&mut self, workload: Workload) -> &SimReport {
        let cfg = SimConfig::four_way();
        self.sim(workload, &cfg)
    }

    /// Builds a [`SimConfig`] from named width and memory preset.
    ///
    /// # Panics
    ///
    /// Panics on an unknown width or memory name (internal use only).
    pub fn config(width: &str, mem: &MemConfig, branch: BranchConfig) -> SimConfig {
        let cpu = match width {
            "4-way" => sapa_cpu::config::CpuConfig::four_way(),
            "8-way" => sapa_cpu::config::CpuConfig::eight_way(),
            "12-way" => sapa_cpu::config::CpuConfig::twelve_way(),
            "16-way" => sapa_cpu::config::CpuConfig::sixteen_way(),
            other => panic!("unknown width preset {other}"),
        };
        SimConfig {
            cpu,
            mem: mem.clone(),
            branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_cached() {
        let mut ctx = Context::new(Scale::Tiny);
        let a = ctx.trace(Workload::Blast).len();
        let b = ctx.trace(Workload::Blast).len();
        assert_eq!(a, b);
        assert_eq!(ctx.traces.len(), 1);
    }

    #[test]
    fn sims_are_memoized_structurally() {
        let mut ctx = Context::new(Scale::Tiny);
        let cfg = SimConfig::four_way();
        let c1 = ctx.sim(Workload::Blast, &cfg).cycles;
        // A structurally equal config built independently must hit.
        let again = SimConfig::four_way();
        let c2 = ctx.sim(Workload::Blast, &again).cycles;
        assert_eq!(c1, c2);
        assert_eq!(ctx.sims.len(), 1);
        // A config that differs only deep inside must miss.
        let mut other = SimConfig::four_way();
        other.mem.prefetch.degree += 1;
        ctx.sim(Workload::Blast, &other);
        assert_eq!(ctx.sims.len(), 2);
    }

    #[test]
    fn batch_dedupes_and_counts_instructions() {
        let mut ctx = Context::with_threads(Scale::Tiny, 2);
        let cfg = SimConfig::four_way();
        ctx.sim_batch(&[
            (Workload::Blast, cfg.clone()),
            (Workload::Blast, cfg.clone()),
        ]);
        assert_eq!(ctx.sims.len(), 1);
        let insts = ctx.sim_instructions();
        assert!(insts > 0);
        // Re-running the same point is a memo hit: no new work counted.
        ctx.sim_batch(&[(Workload::Blast, cfg)]);
        assert_eq!(ctx.sim_instructions(), insts);
    }

    #[test]
    fn corrupted_trace_fails_gracefully_and_is_memoized() {
        let mut ctx = Context::new(Scale::Tiny);
        ctx.corrupt_trace(Workload::Blast, &FaultPlan::new(1, 0.01));
        let cfg = SimConfig::four_way();
        let cause = ctx
            .try_sim(Workload::Blast, &cfg)
            .map(|r| r.cycles)
            .unwrap_err();
        assert!(cause.contains("trace error"), "cause: {cause}");
        // The failure is memoized: asking again returns the same cause
        // without re-running anything.
        assert_eq!(
            ctx.try_sim(Workload::Blast, &cfg)
                .map(|r| r.cycles)
                .unwrap_err(),
            cause
        );
        assert_eq!(ctx.failed_jobs().len(), 1);
        // Other workloads in the same context are untouched.
        assert!(ctx.try_sim(Workload::Fasta34, &cfg).is_ok());
    }

    #[test]
    fn threaded_context_matches_serial() {
        let grid: Vec<(Workload, SimConfig)> = [Workload::Blast, Workload::Fasta34]
            .into_iter()
            .flat_map(|w| {
                [SimConfig::four_way(), SimConfig::eight_way()]
                    .into_iter()
                    .map(move |c| (w, c))
            })
            .collect();
        let mut serial = Context::new(Scale::Tiny);
        let mut threaded = Context::with_threads(Scale::Tiny, 4);
        serial.sim_batch(&grid);
        threaded.sim_batch(&grid);
        for (w, c) in &grid {
            assert_eq!(serial.sim(*w, c), threaded.sim(*w, c));
        }
    }
}
