//! The paper's Table II query set.
//!
//! The original evaluation uses eleven UniProt sequences spanning well
//! characterized protein families, 143–567 residues long. We cannot ship
//! the UniProt entries themselves, so each query is a deterministic
//! synthetic stand-in at **exactly the published length**, generated from
//! the Swiss-Prot background composition with a per-family seed. The
//! family name and accession are retained as labels so experiment output
//! lines up with the paper's tables.
//!
//! The paper reports results only for the *Glutathione S-transferase*
//! query (222 residues); that is also this suite's default.

use crate::compose::{sample_residue, swissprot_cdf};
use crate::rng::Xoshiro256;
use crate::seq::Sequence;
use crate::AminoAcid;

/// One entry of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInfo {
    /// Protein family (Table II column 1).
    pub family: &'static str,
    /// UniProt accession of the original query (label only).
    pub accession: &'static str,
    /// Length in residues (Table II column 3).
    pub length: usize,
}

/// Table II of the paper: family, accession, length.
pub const PAPER_QUERIES: [QueryInfo; 11] = [
    QueryInfo {
        family: "Globin",
        accession: "P02232",
        length: 143,
    },
    QueryInfo {
        family: "Ras",
        accession: "P01111",
        length: 189,
    },
    QueryInfo {
        family: "Glutathione S-transferase",
        accession: "P14942",
        length: 222,
    },
    QueryInfo {
        family: "Serine Protease",
        accession: "P00762",
        length: 246,
    },
    QueryInfo {
        family: "Histocompatibility antigen",
        accession: "P10318",
        length: 362,
    },
    QueryInfo {
        family: "Alcohol dehydrogenase",
        accession: "P07327",
        length: 375,
    },
    QueryInfo {
        family: "Serine Protease inhibitor",
        accession: "P01008",
        length: 464,
    },
    QueryInfo {
        family: "Cytochrome P450",
        accession: "P10635",
        length: 497,
    },
    QueryInfo {
        family: "H+-transporting ATP synthase",
        accession: "P25705",
        length: 553,
    },
    QueryInfo {
        family: "Hemaglutinin",
        accession: "P03435",
        length: 567,
    },
    // The paper says "11 different amino-acid query sequences" but lists
    // ten families in Table II; we add a mid-length composite so the set
    // truly has eleven members, matching the text.
    QueryInfo {
        family: "Composite (text says 11 queries)",
        accession: "SYN011",
        length: 300,
    },
];

/// The generated query collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySet {
    queries: Vec<Sequence>,
}

impl QuerySet {
    /// Generates the full Table II stand-in set (deterministic).
    pub fn paper() -> Self {
        let queries = PAPER_QUERIES.iter().map(synth_query).collect();
        QuerySet { queries }
    }

    /// All queries in Table II order.
    pub fn queries(&self) -> &[Sequence] {
        &self.queries
    }

    /// Looks a query up by family name (exact match).
    pub fn by_family(&self, family: &str) -> Option<&Sequence> {
        let idx = PAPER_QUERIES.iter().position(|q| q.family == family)?;
        self.queries.get(idx)
    }

    /// Looks a query up by accession.
    pub fn by_accession(&self, accession: &str) -> Option<&Sequence> {
        let idx = PAPER_QUERIES
            .iter()
            .position(|q| q.accession == accession)?;
        self.queries.get(idx)
    }

    /// The paper's reporting default: the Glutathione S-transferase
    /// stand-in (222 residues).
    pub fn default_query(&self) -> &Sequence {
        // Not reachable from user input: P14942 is a row of the static
        // PAPER_QUERIES table this set was built from, so the lookup
        // can only fail if the table itself is edited incorrectly.
        self.by_accession("P14942").expect("GST query present")
    }
}

fn synth_query(info: &QueryInfo) -> Sequence {
    // Seed from the accession bytes so each family's stand-in is stable
    // regardless of table order.
    let mut seed = 0xC0FFEEu64;
    for b in info.accession.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    let mut rng = Xoshiro256::new(seed);
    let cdf = swissprot_cdf();
    let residues: Vec<AminoAcid> = (0..info.length)
        .map(|_| sample_residue(&cdf, rng.next_f64()))
        .collect();
    Sequence::new(
        info.accession,
        format!(
            "synthetic stand-in for {} ({} aa)",
            info.family, info.length
        ),
        residues,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_match_table_ii() {
        let set = QuerySet::paper();
        for (info, q) in PAPER_QUERIES.iter().zip(set.queries()) {
            assert_eq!(q.len(), info.length, "{}", info.family);
            assert_eq!(q.id(), info.accession);
        }
    }

    #[test]
    fn default_query_is_gst_222() {
        let set = QuerySet::paper();
        assert_eq!(set.default_query().len(), 222);
        assert_eq!(set.default_query().id(), "P14942");
    }

    #[test]
    fn generation_is_stable() {
        assert_eq!(QuerySet::paper(), QuerySet::paper());
    }

    #[test]
    fn lookup_by_family_and_accession_agree() {
        let set = QuerySet::paper();
        assert_eq!(
            set.by_family("Globin").map(Sequence::id),
            set.by_accession("P02232").map(Sequence::id),
        );
        assert!(set.by_family("Nonexistent").is_none());
    }

    #[test]
    fn lengths_span_paper_range() {
        let set = QuerySet::paper();
        let min = set.queries().iter().map(Sequence::len).min().unwrap();
        let max = set.queries().iter().map(Sequence::len).max().unwrap();
        assert_eq!(min, 143);
        assert_eq!(max, 567);
    }
}
