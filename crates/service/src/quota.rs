//! Per-tenant fairness: token-bucket quotas and deficit round-robin.
//!
//! Two independent mechanisms keep one hot tenant from starving the
//! rest, both priced in the same unit as admission control (DP cells,
//! via [`sapa_align::engine::Engine::scan_cost`]):
//!
//! * [`TokenBucket`] — a *rate* limit: each tenant may spend at most
//!   `capacity` cells in a burst and refills continuously. Refill is
//!   wall-clock driven, so the caller passes `now` explicitly and tests
//!   drive time deterministically.
//! * [`DrrQueue`] — a *dispatch order* guarantee: queued requests are
//!   released deficit-round-robin across tenants, so a tenant that
//!   enqueues 100 requests cannot push another tenant's single request
//!   to the back of the line. Pop order is a pure function of the push
//!   sequence and the quantum — no clocks, no randomness — which keeps
//!   the service's dispatch reproducible for the chaos suite.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// A continuously refilling cell budget for one tenant.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket starting full at `capacity_cells`, refilling at
    /// `refill_cells_per_sec`. The first take is timed from `now`.
    pub fn new(capacity_cells: u64, refill_cells_per_sec: f64, now: Instant) -> Self {
        let capacity = capacity_cells as f64;
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: refill_cells_per_sec.max(0.0),
            last: now,
        }
    }

    /// Attempts to spend `cost` cells at time `now`; returns whether
    /// the spend was within budget. Refill is applied first, capped at
    /// capacity; a failed take spends nothing.
    pub fn try_take(&mut self, cost: u64, now: Instant) -> bool {
        let dt = now
            .checked_duration_since(self.last)
            .unwrap_or_default()
            .as_secs_f64();
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        self.last = now;
        let cost = cost as f64;
        if cost <= self.tokens {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Cells currently available (as of the last refill).
    pub fn available(&self) -> u64 {
        self.tokens.max(0.0) as u64
    }
}

#[derive(Debug)]
struct TenantQueue<T> {
    deficit: u64,
    items: VecDeque<(u64, T)>,
}

/// A multi-tenant queue released in deficit-round-robin order.
///
/// Each active tenant keeps a deficit counter; every time the
/// round-robin ring visits a tenant whose head-of-line item does not
/// fit its deficit, the tenant earns one `quantum` and the ring moves
/// on. Tenants whose queues drain are deactivated and their deficit
/// forfeited (classic DRR), so idle tenants cannot bank credit.
#[derive(Debug)]
pub struct DrrQueue<T> {
    quantum: u64,
    tenants: HashMap<String, TenantQueue<T>>,
    ring: VecDeque<String>,
    len: usize,
    queued_cost: u64,
}

impl<T> DrrQueue<T> {
    /// A queue granting `quantum` cost units per tenant per round
    /// (floored at 1). A quantum near the typical request cost gives
    /// per-request alternation; a larger quantum amortizes bursts.
    pub fn new(quantum: u64) -> Self {
        DrrQueue {
            quantum: quantum.max(1),
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            len: 0,
            queued_cost: 0,
        }
    }

    /// Queued item count across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total cost of everything queued, the number admission control
    /// charges against the cell budget for not-yet-running work.
    pub fn queued_cost(&self) -> u64 {
        self.queued_cost
    }

    /// Enqueues `item` for `tenant` at `cost`.
    pub fn push(&mut self, tenant: &str, cost: u64, item: T) {
        let q = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                deficit: 0,
                items: VecDeque::new(),
            });
        if q.items.is_empty() {
            self.ring.push_back(tenant.to_string());
            q.deficit = 0;
        }
        q.items.push_back((cost, item));
        self.len += 1;
        self.queued_cost = self.queued_cost.saturating_add(cost);
    }

    /// Releases the next item in DRR order as `(tenant, cost, item)`.
    pub fn pop(&mut self) -> Option<(String, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let tenant = self.ring.front()?.clone();
            let q = self.tenants.get_mut(&tenant)?;
            let head_cost = q.items.front()?.0;
            // A lone tenant cannot be unfair to anyone; skip straight
            // to its head instead of looping quantum by quantum.
            if self.ring.len() == 1 {
                q.deficit = q.deficit.max(head_cost);
            }
            if q.deficit >= head_cost {
                let (cost, item) = q.items.pop_front()?;
                q.deficit -= cost;
                self.len -= 1;
                self.queued_cost -= cost;
                if q.items.is_empty() {
                    self.tenants.remove(&tenant);
                    self.ring.pop_front();
                }
                return Some((tenant, cost, item));
            }
            q.deficit = q.deficit.saturating_add(self.quantum);
            let front = self.ring.pop_front()?;
            self.ring.push_back(front);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_spends_refills_and_caps() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100, 10.0, t0);
        assert!(b.try_take(60, t0));
        assert!(b.try_take(40, t0));
        assert!(!b.try_take(1, t0), "empty bucket refuses");
        assert_eq!(b.available(), 0);
        // 5 simulated seconds refill 50 cells.
        let t1 = t0 + Duration::from_secs(5);
        assert!(b.try_take(50, t1));
        assert!(!b.try_take(1, t1));
        // A long idle period caps at capacity, not beyond.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(b.try_take(100, t2));
        assert!(!b.try_take(1, t2));
    }

    #[test]
    fn bucket_failed_take_spends_nothing() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10, 0.0, t0);
        assert!(!b.try_take(11, t0));
        assert!(b.try_take(10, t0), "refusal must not debit");
    }

    #[test]
    fn drr_alternates_equal_cost_tenants() {
        let mut q = DrrQueue::new(10);
        for i in 0..4 {
            q.push("a", 10, format!("a{i}"));
        }
        for i in 0..2 {
            q.push("b", 10, format!("b{i}"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(_, _, it)| it)).collect();
        assert_eq!(order, ["a0", "b0", "a1", "b1", "a2", "a3"]);
        assert!(q.is_empty());
        assert_eq!(q.queued_cost(), 0);
    }

    #[test]
    fn drr_flood_cannot_starve_a_small_tenant() {
        let mut q = DrrQueue::new(10);
        for i in 0..100 {
            q.push("flood", 10, format!("f{i}"));
        }
        q.push("small", 10, "s0".to_string());
        let first_small = std::iter::from_fn(|| q.pop().map(|(_, _, it)| it))
            .position(|it| it == "s0")
            .unwrap();
        assert!(
            first_small <= 2,
            "small tenant served at position {first_small}, not behind the flood"
        );
    }

    #[test]
    fn drr_weights_by_cost_not_count() {
        // Tenant "big" queues 2 items of cost 30; "small" queues 6 of
        // cost 10. With quantum 10 both earn credit at the same rate,
        // so "small" gets ~3 items out per "big" item.
        let mut q = DrrQueue::new(10);
        q.push("big", 30, "B0".to_string());
        q.push("big", 30, "B1".to_string());
        for i in 0..6 {
            q.push("small", 10, format!("S{i}"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(_, _, it)| it)).collect();
        // Equal-cost turns: one 30-cell "big" item per ~30 cells of
        // "small" service, never count-for-count alternation.
        assert_eq!(order, ["S0", "S1", "B0", "S2", "S3", "S4", "B1", "S5"]);
    }

    #[test]
    fn drr_pop_order_is_deterministic() {
        let build = || {
            let mut q = DrrQueue::new(7);
            for (t, c) in [("x", 5), ("y", 9), ("x", 2), ("z", 14), ("y", 1), ("z", 3)] {
                q.push(t, c, format!("{t}:{c}"));
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn drr_single_tenant_is_fifo_even_with_tiny_quantum() {
        let mut q = DrrQueue::new(1);
        q.push("only", 1_000_000, "first".to_string());
        q.push("only", 5, "second".to_string());
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn drr_tracks_len_and_cost() {
        let mut q: DrrQueue<u32> = DrrQueue::new(10);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        q.push("a", 4, 1);
        q.push("b", 6, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_cost(), 10);
        let (_, cost, _) = q.pop().unwrap();
        assert_eq!(q.queued_cost(), 10 - cost);
        assert_eq!(q.len(), 1);
    }
}
