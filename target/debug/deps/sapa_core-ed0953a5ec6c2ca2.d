/root/repo/target/debug/deps/sapa_core-ed0953a5ec6c2ca2.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_core-ed0953a5ec6c2ca2.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
