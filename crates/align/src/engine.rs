//! The unified alignment-engine layer: one search API over every
//! aligner in the crate.
//!
//! The paper's whole point is running the *same* database search
//! through very different implementations — scalar Smith-Waterman
//! (SSEARCH), anti-diagonal SIMD SW, FASTA, BLAST — and comparing how
//! they stress the machine. This module gives that comparison a single
//! programmable surface, the way SSW wraps SIMD Smith-Waterman in a
//! reusable library API:
//!
//! * [`AlignmentEngine`] — the backend trait: a name, a per-worker
//!   reusable workspace, and `score_one(workspace, subject)`. The
//!   engine itself holds the query-side context (query slice, striped
//!   profile, BLAST neighborhood index, FASTA k-tuple table), so it is
//!   built once per search and shared read-only across workers.
//! * [`SearchRequest`] / [`SearchResponse`] — the request/response
//!   types: query + matrix + gaps + `top_k`/`min_score` in, ranked
//!   [`RankedHit`]s (with Karlin-Altschul bit scores and E-values from
//!   [`crate::stats`]) plus [`RunStats`] out.
//! * [`Engine`] — the registry: all seven backends (`sw`, `sw-lazy`,
//!   `striped`, `vmx128`, `vmx256`, `fasta`, `blast`), selectable by
//!   name, mirroring `workloads::registry::Workload`.
//!
//! Exact engines (everything but `fasta`/`blast`) return bit-identical
//! scores to [`crate::sw::score`]; the heuristics return their own
//! reported scores (FASTA's `max(opt, initn)`, BLAST's best gapped /
//! ungapped extension). All engines run through the same chunked
//! parallel pipeline ([`crate::parallel::engine_search`]), so ranked
//! output is identical at any thread count.
//!
//! ```
//! use sapa_align::engine::{Engine, Prefilter, SearchRequest};
//! use sapa_bioseq::matrix::GapPenalties;
//! use sapa_bioseq::{Sequence, SubstitutionMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let query = Sequence::from_str("q", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSE")?;
//! let subj = Sequence::from_str("s", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSE")?;
//! let matrix = SubstitutionMatrix::blosum62();
//! let req = SearchRequest {
//!     query: query.residues(),
//!     matrix: &matrix,
//!     gaps: GapPenalties::paper(),
//!     top_k: 10,
//!     min_score: 25,
//!     deadline: None,
//!     report_alignments: false,
//!     prefilter: Prefilter::Off,
//! };
//! let subjects = [subj.residues()];
//! let engine = Engine::from_name("striped").unwrap();
//! let resp = engine.search(&req, &subjects, 1);
//! assert_eq!(resp.hits[0].seq_index, 0);
//! assert!(resp.hits[0].evalue < 1e-3);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::QueryProfile;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::result::Alignment;
use crate::striped::{ByteWorkspace, Workspace as WordWorkspace};
use crate::{blast, fasta, parallel, simd_sw, stats, striped, sw};

/// A database-search backend: query-side context plus a scoring kernel.
///
/// Implementations hold everything derived from the query (the query
/// slice itself, a striped [`QueryProfile`], a BLAST [`blast::WordIndex`],
/// …) and are shared read-only across worker threads. Mutable
/// per-worker scratch lives in the associated [`Workspace`]: the
/// parallel pipeline builds one per worker via
/// [`workspace`](AlignmentEngine::workspace) and reuses it for every
/// subject that worker scores.
///
/// [`Workspace`]: AlignmentEngine::Workspace
pub trait AlignmentEngine: Sync {
    /// Per-worker reusable scratch state (row buffers, counters).
    type Workspace: Send;

    /// Stable engine name (`"sw"`, `"striped"`, …), matching
    /// [`Engine::name`] for registry engines.
    fn name(&self) -> &'static str;

    /// Builds one fresh per-worker workspace.
    fn workspace(&self) -> Self::Workspace;

    /// Scores one database subject against the engine's query context.
    fn score_one(&self, ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32;

    /// Subjects this workspace re-scored on a higher-precision fallback
    /// path (the striped engine's 8-bit overflow recovery); 0 for
    /// engines without such a path.
    fn rescored(&self, _ws: &Self::Workspace) -> usize {
        0
    }

    /// Deterministic work estimate for scoring a subject of
    /// `subject_len` residues, in DP cells (or an equivalent unit),
    /// used to resolve a [`Deadline::Cells`] budget into an admitted
    /// subject prefix. Taking only the length (not the residues) lets
    /// the indexed search path budget a scan from the on-disk length
    /// table without decoding any sequence data. Full-matrix engines
    /// override this with `query_len × subject_len`; the default is
    /// the subject length, the right scale for heuristics whose cost
    /// is dominated by the subject scan.
    fn cost_len(&self, subject_len: usize) -> u64 {
        subject_len.max(1) as u64
    }

    /// [`cost_len`](AlignmentEngine::cost_len) of a materialized
    /// subject.
    fn cost(&self, subject: &[AminoAcid]) -> u64 {
        self.cost_len(subject.len())
    }
}

/// A shared reference to an engine is itself an engine, so callers
/// holding one concrete engine (e.g. a server worker borrowing from a
/// registry) can wrap it in decorators like `FaultyEngine` that take
/// their inner engine by value.
impl<E: AlignmentEngine + ?Sized> AlignmentEngine for &E {
    type Workspace = E::Workspace;

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn workspace(&self) -> Self::Workspace {
        (**self).workspace()
    }

    fn score_one(&self, ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        (**self).score_one(ws, subject)
    }

    fn rescored(&self, ws: &Self::Workspace) -> usize {
        (**self).rescored(ws)
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        (**self).cost_len(subject_len)
    }

    fn cost(&self, subject: &[AminoAcid]) -> u64 {
        (**self).cost(subject)
    }
}

/// A latency bound for one ranked scan (see
/// [`crate::parallel::engine_search_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Deterministic budget in engine cost units
    /// ([`AlignmentEngine::cost`], ≈ DP cells): the scan admits the
    /// longest subject prefix whose cumulative cost fits and scores
    /// exactly those subjects — identical output at any thread count.
    Cells(u64),
    /// Best-effort wall-clock cutoff: workers stop claiming subjects
    /// once the duration elapses. This bound is checked *between*
    /// subjects, never mid-kernel, so an expensive subject claimed just
    /// before the cutoff still runs to completion and the scan can
    /// overshoot the duration by up to one subject's scoring time.
    /// Coverage depends on scheduling, so two runs of the same request
    /// may cover different prefixes — results are *not* reproducible;
    /// prefer [`Deadline::Cells`] anywhere determinism matters. The
    /// response says which kind fired via
    /// [`SearchResponse::truncated_by`].
    Wall(std::time::Duration),
}

/// Which [`Deadline`] kind actually truncated a bounded scan.
///
/// Reported in [`SearchResponse::truncated_by`] so a partial response
/// can say *why* it is partial: a `Cells` truncation is deterministic
/// and will recur on every identical request, while a `Wall` truncation
/// is best-effort and may cover a different prefix on a retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineKind {
    /// The deterministic [`Deadline::Cells`] budget was exhausted.
    Cells,
    /// The best-effort [`Deadline::Wall`] cutoff passed mid-scan.
    Wall,
}

impl DeadlineKind {
    /// Stable lowercase name (`"cells"` / `"wall"`), the spelling used
    /// by wire protocols and reports.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineKind::Cells => "cells",
            DeadlineKind::Wall => "wall",
        }
    }
}

impl fmt::Display for DeadlineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scalar Smith-Waterman (Gotoh affine gaps) — the rigorous reference.
pub struct SwEngine<'a> {
    query: &'a [AminoAcid],
    matrix: &'a SubstitutionMatrix,
    gaps: GapPenalties,
}

impl<'a> SwEngine<'a> {
    /// An engine scoring `query` against subjects under `matrix`/`gaps`.
    pub fn new(query: &'a [AminoAcid], matrix: &'a SubstitutionMatrix, gaps: GapPenalties) -> Self {
        SwEngine {
            query,
            matrix,
            gaps,
        }
    }
}

impl AlignmentEngine for SwEngine<'_> {
    type Workspace = ();

    fn name(&self) -> &'static str {
        "sw"
    }

    fn workspace(&self) -> Self::Workspace {}

    fn score_one(&self, _ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        sw::score(self.query, subject, self.matrix, self.gaps)
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        dp_cells(self.query.len(), subject_len)
    }
}

/// Full-matrix DP cost: `query_len × subject_len` cells (floored at 1
/// so empty sequences still make progress against a budget).
fn dp_cells(query_len: usize, subject_len: usize) -> u64 {
    (query_len.max(1) as u64) * (subject_len.max(1) as u64)
}

/// Scalar Smith-Waterman in the SSEARCH *lazy-F* formulation — same
/// scores as [`SwEngine`], different (branchier) inner loop.
pub struct SwLazyEngine<'a> {
    query: &'a [AminoAcid],
    matrix: &'a SubstitutionMatrix,
    gaps: GapPenalties,
}

impl<'a> SwLazyEngine<'a> {
    /// An engine scoring `query` against subjects under `matrix`/`gaps`.
    pub fn new(query: &'a [AminoAcid], matrix: &'a SubstitutionMatrix, gaps: GapPenalties) -> Self {
        SwLazyEngine {
            query,
            matrix,
            gaps,
        }
    }
}

impl AlignmentEngine for SwLazyEngine<'_> {
    type Workspace = ();

    fn name(&self) -> &'static str {
        "sw-lazy"
    }

    fn workspace(&self) -> Self::Workspace {}

    fn score_one(&self, _ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        sw::score_lazy_f(self.query, subject, self.matrix, self.gaps)
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        dp_cells(self.query.len(), subject_len)
    }
}

/// Wozniak-style anti-diagonal SIMD Smith-Waterman over `L` emulated
/// 16-bit lanes: `L = 8` models 128-bit Altivec (`vmx128`), `L = 16`
/// the paper's 256-bit extension (`vmx256`).
pub struct AntiDiagonalEngine<'a, const L: usize> {
    query: &'a [AminoAcid],
    matrix: &'a SubstitutionMatrix,
    gaps: GapPenalties,
}

impl<'a, const L: usize> AntiDiagonalEngine<'a, L> {
    /// An engine scoring `query` against subjects under `matrix`/`gaps`.
    pub fn new(query: &'a [AminoAcid], matrix: &'a SubstitutionMatrix, gaps: GapPenalties) -> Self {
        AntiDiagonalEngine {
            query,
            matrix,
            gaps,
        }
    }
}

impl<const L: usize> AlignmentEngine for AntiDiagonalEngine<'_, L> {
    type Workspace = ();

    fn name(&self) -> &'static str {
        match L {
            8 => "vmx128",
            16 => "vmx256",
            _ => "vmx",
        }
    }

    fn workspace(&self) -> Self::Workspace {}

    fn score_one(&self, _ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        simd_sw::score::<L>(self.query, subject, self.matrix, self.gaps)
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        dp_cells(self.query.len(), subject_len)
    }
}

/// Per-worker scratch for [`StripedEngine`]: reusable 8-bit and 16-bit
/// row buffers plus the worker's byte-overflow rescore counter.
#[derive(Debug, Clone, Default)]
pub struct StripedScratch<const LB: usize, const LW: usize> {
    bytes: ByteWorkspace<LB>,
    words: WordWorkspace<LW>,
    rescored: usize,
}

/// Farrar striped SIMD Smith-Waterman with the adaptive 8-bit-first /
/// 16-bit-rescore strategy. `LB`/`LW` are the byte/word lane counts of
/// one register width: `<16, 8>` for the 128-bit Altivec model,
/// `<32, 16>` for the paper's 256-bit extension.
pub struct StripedEngine<const LB: usize, const LW: usize> {
    profile: Arc<QueryProfile>,
    gaps: GapPenalties,
}

impl<const LB: usize, const LW: usize> StripedEngine<LB, LW> {
    /// Builds the query profile internally and wraps it in an engine.
    pub fn from_query(
        query: &[AminoAcid],
        matrix: &SubstitutionMatrix,
        gaps: GapPenalties,
    ) -> Self {
        Self::with_profile(QueryProfile::build_shared(query, matrix, LW), gaps)
    }

    /// Wraps an existing shared profile (e.g. from a
    /// [`sapa_bioseq::profile::ProfileCache`]) so repeated scans
    /// amortize the profile build.
    ///
    /// # Panics
    ///
    /// Panics if the profile's word lane count is not `LW`.
    pub fn with_profile(profile: Arc<QueryProfile>, gaps: GapPenalties) -> Self {
        assert_eq!(
            profile.word_lanes(),
            LW,
            "profile lane count does not match engine width"
        );
        StripedEngine { profile, gaps }
    }

    /// The shared query profile.
    pub fn profile(&self) -> &Arc<QueryProfile> {
        &self.profile
    }
}

impl<const LB: usize, const LW: usize> AlignmentEngine for StripedEngine<LB, LW> {
    type Workspace = StripedScratch<LB, LW>;

    fn name(&self) -> &'static str {
        match LB {
            16 => "striped",
            32 => "striped256",
            _ => "striped-wide",
        }
    }

    fn workspace(&self) -> Self::Workspace {
        StripedScratch::default()
    }

    fn score_one(&self, ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        match striped::score_bytes_with_profile::<LB>(
            &self.profile,
            subject,
            self.gaps,
            &mut ws.bytes,
        ) {
            Some(s) => s,
            None => {
                ws.rescored += 1;
                striped::score_with_profile::<LW>(&self.profile, subject, self.gaps, &mut ws.words)
            }
        }
    }

    fn rescored(&self, ws: &Self::Workspace) -> usize {
        ws.rescored
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        dp_cells(self.profile.query_len(), subject_len)
    }
}

/// FASTA heuristic (k-tuple diagonals, region joining, banded `opt`);
/// reports `max(opt, initn)` per subject, FASTA's ranking score.
pub struct FastaEngine<'a> {
    index: fasta::KtupIndex,
    matrix: &'a SubstitutionMatrix,
    gaps: GapPenalties,
    params: fasta::FastaParams,
}

impl<'a> FastaEngine<'a> {
    /// Builds the query k-tuple index with `params.ktup`.
    pub fn new(
        query: &[AminoAcid],
        matrix: &'a SubstitutionMatrix,
        gaps: GapPenalties,
        params: fasta::FastaParams,
    ) -> Self {
        FastaEngine {
            index: fasta::KtupIndex::build(query, params.ktup),
            matrix,
            gaps,
            params,
        }
    }

    /// The search parameters in effect.
    pub fn params(&self) -> &fasta::FastaParams {
        &self.params
    }
}

impl AlignmentEngine for FastaEngine<'_> {
    type Workspace = ();

    fn name(&self) -> &'static str {
        "fasta"
    }

    fn workspace(&self) -> Self::Workspace {}

    fn score_one(&self, _ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        let s = fasta::score_subject(&self.index, subject, self.matrix, self.gaps, &self.params);
        s.opt.max(s.initn)
    }
}

/// BLASTP heuristic (neighborhood index, two-hit seeding, X-drop
/// extension, banded gapped rescore).
pub struct BlastEngine<'a> {
    index: blast::WordIndex,
    matrix: &'a SubstitutionMatrix,
    gaps: GapPenalties,
    params: blast::BlastParams,
}

impl<'a> BlastEngine<'a> {
    /// Builds the neighborhood word index with `params.threshold`.
    pub fn new(
        query: &[AminoAcid],
        matrix: &'a SubstitutionMatrix,
        gaps: GapPenalties,
        params: blast::BlastParams,
    ) -> Self {
        BlastEngine {
            index: blast::WordIndex::build(query, matrix, params.threshold),
            matrix,
            gaps,
            params,
        }
    }

    /// The search parameters in effect.
    pub fn params(&self) -> &blast::BlastParams {
        &self.params
    }
}

impl AlignmentEngine for BlastEngine<'_> {
    type Workspace = ();

    fn name(&self) -> &'static str {
        "blast"
    }

    fn workspace(&self) -> Self::Workspace {}

    fn score_one(&self, _ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        blast::score_subject(&self.index, subject, self.matrix, self.gaps, &self.params)
    }
}

/// The candidate-pruning stage of an indexed search (see
/// [`Engine::search_indexed`] and [`crate::indexed`]).
///
/// Prefiltering applies only to searches over a prebuilt
/// [`sapa_bioseq::index`] database, whose on-disk k-mer seed index
/// makes candidate generation cheap; in-memory [`Engine::search`]
/// scans are always exhaustive and ignore this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prefilter {
    /// Score every subject — exhaustive scan, identical to the
    /// in-memory path over the same (length-sorted) database.
    #[default]
    Off,
    /// Seed-only pruning: a subject survives iff it shares at least
    /// `min_diag_seeds` exact seed words with the query on one
    /// diagonal. Subjects shorter than the indexed word length are
    /// admitted unconditionally (they can never be seeded), so with
    /// `min_diag_seeds == 1` every subject containing an exact query
    /// word survives — the filter is *exact* for any hit that shares
    /// one word, and the equivalence tests demand zero ranking misses
    /// at the default word size.
    Seed {
        /// Minimum same-diagonal seed words to survive (≥ 1; BLAST's
        /// two-hit heuristic is `2`).
        min_diag_seeds: u32,
    },
    /// Seed pruning plus a gapped X-drop extension gate
    /// ([`crate::xdrop::extend_seed`]) around each survivor's best
    /// seed. The extension score is a *lower bound* on the full
    /// Smith-Waterman score (it anchors the alignment through the
    /// seed), so gating on it is an explicitly **heuristic** mode: a
    /// subject whose true optimum avoids every seeded diagonal can be
    /// missed. Use it for BLAST-like throughput; use [`Prefilter::Seed`]
    /// when ranked output must match the exhaustive scan.
    SeedExtend {
        /// Minimum same-diagonal seed words to reach extension.
        min_diag_seeds: u32,
        /// X-drop parameter for the extension DP.
        x: i32,
        /// Minimum extension score to survive.
        min_extended: i32,
    },
}

impl Prefilter {
    /// The default *on* setting: single-seed pruning, exact for
    /// word-sharing hits.
    pub const DEFAULT_SEED: Prefilter = Prefilter::Seed { min_diag_seeds: 1 };
}

/// One database search, independent of the backend that runs it.
#[derive(Debug, Clone, Copy)]
pub struct SearchRequest<'a> {
    /// The query sequence.
    pub query: &'a [AminoAcid],
    /// Substitution matrix (the paper uses BLOSUM62).
    pub matrix: &'a SubstitutionMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Number of ranked hits to keep (the paper's runs use `-b 500`).
    pub top_k: usize,
    /// Minimum raw score for a subject to be reported.
    pub min_score: i32,
    /// Optional latency bound. `None` scans the whole database; with a
    /// deadline the response may be partial (`completed == false`),
    /// covering a ranked prefix of the database.
    pub deadline: Option<Deadline>,
    /// Reconstruct full alignments (coordinates + CIGAR) for the
    /// reported hits via the three-pass striped traceback
    /// ([`crate::traceback`]). Score-only searches (`false`, the
    /// common case) pay nothing. Heuristic engines report approximate
    /// scores that no exact path can replay, so their hits keep
    /// `alignment: None` regardless of this flag.
    pub report_alignments: bool,
    /// Candidate pruning for indexed searches
    /// ([`Engine::search_indexed`]); ignored by in-memory
    /// [`Engine::search`], which is always exhaustive.
    pub prefilter: Prefilter,
}

/// One ranked hit with its significance statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedHit {
    /// Index of the subject in the searched database.
    pub seq_index: usize,
    /// Raw alignment score (matrix units).
    pub score: i32,
    /// Karlin-Altschul normalized bit score.
    pub bits: f64,
    /// Expected number of chance hits this good in the search space.
    pub evalue: f64,
    /// Full alignment (coordinates + CIGAR), present only when the
    /// request set [`SearchRequest::report_alignments`] and the engine
    /// is exact; `None` otherwise (and for hits whose traceback was
    /// quarantined by a panic).
    pub alignment: Option<Alignment>,
}

/// One subject removed from a scan because scoring it panicked.
///
/// Quarantine decisions are a function of the data alone, so the same
/// database and fault produce the same report at any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Index of the subject in the searched database.
    pub index: usize,
    /// The panic payload, rendered.
    pub cause: String,
}

/// Counters from one engine run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Subjects attempted (scored or quarantined). Equals the database
    /// size unless a [`Deadline`] cut the scan short.
    pub subjects: usize,
    /// Subjects re-scored on a higher-precision fallback path (striped
    /// engine's byte-overflow recovery; 0 for other engines).
    pub rescored: usize,
    /// Worker threads requested.
    pub threads: usize,
    /// Subjects whose scoring panicked, with causes, ascending by
    /// index; empty on a healthy run.
    pub quarantined: Vec<Quarantined>,
    /// Subjects skipped by an indexed search's [`Prefilter`] before
    /// any scoring ran; 0 for exhaustive scans.
    pub pruned: usize,
}

/// The ranked outcome of a [`SearchRequest`] run through one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Which registry engine produced this response.
    pub engine: Engine,
    /// Ranked hits: descending score, ties by ascending subject index.
    pub hits: Vec<RankedHit>,
    /// Scan statistics.
    pub stats: RunStats,
    /// Whether the whole database was attempted; `false` means a
    /// [`Deadline`] cut the scan short and `hits` rank only the
    /// covered prefix.
    pub completed: bool,
    /// Which deadline kind truncated the scan — `Some` exactly when
    /// `completed` is `false`, distinguishing a deterministic
    /// [`DeadlineKind::Cells`] budget exhaustion from a best-effort
    /// [`DeadlineKind::Wall`] cutoff whose coverage is not
    /// reproducible.
    pub truncated_by: Option<DeadlineKind>,
    /// Subjects attempted (scored or quarantined) — the denominator
    /// for interpreting a partial response.
    pub coverage: usize,
}

impl SearchResponse {
    /// The best raw score, if any subject was reported.
    pub fn best_score(&self) -> Option<i32> {
        self.hits.first().map(|h| h.score)
    }
}

/// The engine registry: every backend selectable by name, mirroring
/// `workloads::registry::Workload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Scalar Smith-Waterman (textbook Gotoh recurrence).
    Sw,
    /// Scalar Smith-Waterman, SSEARCH lazy-F formulation.
    SwLazy,
    /// Farrar striped SIMD, adaptive 8/16-bit, 128-bit width.
    Striped,
    /// Wozniak anti-diagonal SIMD, 128-bit (8 × 16-bit lanes).
    Vmx128,
    /// Wozniak anti-diagonal SIMD, 256-bit (16 × 16-bit lanes).
    Vmx256,
    /// FASTA heuristic (ktup 2).
    Fasta,
    /// BLASTP heuristic (two-hit, T = 11).
    Blast,
}

impl Engine {
    /// Every registered engine, in presentation order.
    pub const ALL: [Engine; 7] = [
        Engine::Sw,
        Engine::SwLazy,
        Engine::Striped,
        Engine::Vmx128,
        Engine::Vmx256,
        Engine::Fasta,
        Engine::Blast,
    ];

    /// The engine's registry name (what `--engine` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Sw => "sw",
            Engine::SwLazy => "sw-lazy",
            Engine::Striped => "striped",
            Engine::Vmx128 => "vmx128",
            Engine::Vmx256 => "vmx256",
            Engine::Fasta => "fasta",
            Engine::Blast => "blast",
        }
    }

    /// Looks an engine up by its registry name (ASCII case-insensitive).
    pub fn from_name(name: &str) -> Option<Engine> {
        Engine::ALL
            .into_iter()
            .find(|e| e.name().eq_ignore_ascii_case(name))
    }

    /// One-line description for help output.
    pub fn description(self) -> &'static str {
        match self {
            Engine::Sw => "scalar Smith-Waterman (Gotoh affine gaps)",
            Engine::SwLazy => "scalar Smith-Waterman, SSEARCH lazy-F loop",
            Engine::Striped => "Farrar striped SIMD SW, adaptive 8/16-bit, 128-bit",
            Engine::Vmx128 => "anti-diagonal SIMD SW, 128-bit Altivec model",
            Engine::Vmx256 => "anti-diagonal SIMD SW, 256-bit extension",
            Engine::Fasta => "FASTA heuristic: ktup diagonals + banded opt",
            Engine::Blast => "BLASTP heuristic: two-hit seeding + X-drop",
        }
    }

    /// Whether the engine returns exact Smith-Waterman scores (the
    /// heuristics `fasta`/`blast` do not).
    pub fn is_exact(self) -> bool {
        !matches!(self, Engine::Fasta | Engine::Blast)
    }

    /// The registry-level mirror of [`AlignmentEngine::cost_len`]:
    /// the deterministic work estimate for scoring one `subject_len`
    /// subject with a `query_len` query, without building the engine.
    ///
    /// Exact engines pay the full DP matrix (`query_len × subject_len`
    /// cells); the heuristics are subject-scan dominated. Admission
    /// control prices whole requests from lengths alone with this, so
    /// a test pins it to the concrete engines' own `cost_len`.
    pub fn cost_len(self, query_len: usize, subject_len: usize) -> u64 {
        if self.is_exact() {
            dp_cells(query_len, subject_len)
        } else {
            subject_len.max(1) as u64
        }
    }

    /// Total [`Engine::cost_len`] of one ranked scan of a database
    /// whose subject lengths are `subject_lens` — the price an
    /// admission controller charges against its in-flight cell budget
    /// before the request runs. Saturates instead of overflowing.
    pub fn scan_cost(self, query_len: usize, subject_lens: impl IntoIterator<Item = usize>) -> u64 {
        subject_lens.into_iter().fold(0u64, |acc, l| {
            acc.saturating_add(self.cost_len(query_len, l))
        })
    }

    /// Builds this registry entry's concrete engine from `req`'s query
    /// context and hands it to `visitor` — the one place the
    /// enum-to-concrete-type dispatch lives, shared by every search
    /// front end ([`Engine::search`], [`Engine::search_indexed`]).
    pub fn dispatch<V: EngineVisitor>(self, req: &SearchRequest<'_>, visitor: V) -> V::Out {
        match self {
            Engine::Sw => visitor.visit(self, &SwEngine::new(req.query, req.matrix, req.gaps)),
            Engine::SwLazy => {
                visitor.visit(self, &SwLazyEngine::new(req.query, req.matrix, req.gaps))
            }
            Engine::Striped => visitor.visit(
                self,
                &StripedEngine::<16, 8>::from_query(req.query, req.matrix, req.gaps),
            ),
            Engine::Vmx128 => visitor.visit(
                self,
                &AntiDiagonalEngine::<8>::new(req.query, req.matrix, req.gaps),
            ),
            Engine::Vmx256 => visitor.visit(
                self,
                &AntiDiagonalEngine::<16>::new(req.query, req.matrix, req.gaps),
            ),
            Engine::Fasta => visitor.visit(
                self,
                &FastaEngine::new(
                    req.query,
                    req.matrix,
                    req.gaps,
                    fasta::FastaParams::default(),
                ),
            ),
            Engine::Blast => visitor.visit(
                self,
                &BlastEngine::new(
                    req.query,
                    req.matrix,
                    req.gaps,
                    blast::BlastParams::default(),
                ),
            ),
        }
    }

    /// Runs `req` against `subjects` on `threads` worker threads and
    /// returns the ranked, statistics-annotated response.
    ///
    /// Results are bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `req.top_k` is 0.
    pub fn search(
        self,
        req: &SearchRequest<'_>,
        subjects: &[&[AminoAcid]],
        threads: usize,
    ) -> SearchResponse {
        struct Run<'r> {
            req: &'r SearchRequest<'r>,
            subjects: &'r [&'r [AminoAcid]],
            threads: usize,
        }
        impl EngineVisitor for Run<'_> {
            type Out = SearchResponse;
            fn visit<E: AlignmentEngine>(self, id: Engine, engine: &E) -> SearchResponse {
                search_with(id, engine, self.req, self.subjects, self.threads)
            }
        }
        self.dispatch(
            req,
            Run {
                req,
                subjects,
                threads,
            },
        )
    }

    /// Runs `req` against a prebuilt on-disk database
    /// ([`sapa_bioseq::index::IndexReader`]), decoding one shard at a
    /// time and applying [`SearchRequest::prefilter`] before scoring —
    /// see [`crate::indexed`] for the pipeline and its guarantees.
    ///
    /// Ranked hit indices refer to the database's (length-sorted)
    /// sequence order. This path is score-only:
    /// [`SearchRequest::report_alignments`] is ignored and hits carry
    /// `alignment: None` (the subjects are not resident once their
    /// shard is dropped).
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from the reader.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `req.top_k` is 0.
    pub fn search_indexed<R: std::io::Read + std::io::Seek>(
        self,
        req: &SearchRequest<'_>,
        db: &mut sapa_bioseq::index::IndexReader<R>,
        threads: usize,
    ) -> sapa_bioseq::Result<SearchResponse> {
        struct Run<'r, R> {
            req: &'r SearchRequest<'r>,
            db: &'r mut sapa_bioseq::index::IndexReader<R>,
            threads: usize,
        }
        impl<R: std::io::Read + std::io::Seek> EngineVisitor for Run<'_, R> {
            type Out = sapa_bioseq::Result<SearchResponse>;
            fn visit<E: AlignmentEngine>(self, id: Engine, engine: &E) -> Self::Out {
                crate::indexed::search_reader(id, engine, self.req, self.db, self.threads)
            }
        }
        self.dispatch(req, Run { req, db, threads })
    }
}

/// One generic visit over the concrete engine a registry entry names —
/// how [`Engine::dispatch`] lets front ends stay generic over
/// [`AlignmentEngine`] without repeating the seven-arm match.
pub trait EngineVisitor {
    /// What the visit produces.
    type Out;
    /// Called exactly once with the concrete engine for the entry.
    fn visit<E: AlignmentEngine>(self, id: Engine, engine: &E) -> Self::Out;
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs a *prepared* engine through the parallel pipeline and
/// annotates the ranked hits with Karlin-Altschul statistics — the
/// body behind [`Engine::search`], public so callers that build their
/// own engine value can reuse the whole response path: a server
/// handing a [`StripedEngine`] a cached profile, or a chaos harness
/// wrapping any registry engine in a fault-injecting decorator
/// (decorators preserve the inner engine's scores, so `id` still names
/// the backend the response came from).
///
/// # Panics
///
/// Panics if `threads` or `req.top_k` is 0.
pub fn search_with<E: AlignmentEngine>(
    id: Engine,
    engine: &E,
    req: &SearchRequest<'_>,
    subjects: &[&[AminoAcid]],
    threads: usize,
) -> SearchResponse {
    let scan = parallel::engine_search_bounded(
        engine,
        subjects,
        threads,
        req.top_k,
        req.min_score,
        req.deadline,
    );
    let ka = stats::KarlinAltschul::for_gaps(req.gaps);
    let db_residues: usize = subjects.iter().map(|s| s.len()).sum();
    // Heuristic engines report approximate scores no exact traceback
    // can replay, so alignments are reconstructed only for exact ones.
    let alignments = if req.report_alignments && id.is_exact() {
        parallel::align_hits::<8>(
            req.query,
            req.matrix,
            req.gaps,
            subjects,
            scan.results.hits(),
            threads,
        )
    } else {
        vec![None; scan.results.hits().len()]
    };
    let hits = annotate_hits(
        scan.results.hits(),
        alignments,
        &ka,
        req.query.len(),
        db_residues,
        subjects.len(),
    );
    let coverage = scan.stats.subjects;
    SearchResponse {
        engine: id,
        hits,
        stats: scan.stats,
        completed: scan.completed,
        truncated_by: scan.truncated_by,
        coverage,
    }
}

/// Decorates ranked raw-score hits with Karlin-Altschul bit scores and
/// E-values against a `db_residues` × `db_seqs` search space — shared
/// by the in-memory ([`respond`]) and indexed ([`crate::indexed`])
/// response paths so both report identical statistics.
pub(crate) fn annotate_hits(
    hits: &[crate::result::Hit],
    alignments: Vec<Option<Alignment>>,
    ka: &stats::KarlinAltschul,
    query_len: usize,
    db_residues: usize,
    db_seqs: usize,
) -> Vec<RankedHit> {
    hits.iter()
        .zip(alignments)
        .map(|(h, alignment)| RankedHit {
            seq_index: h.seq_index,
            score: h.score,
            bits: ka.bit_score(h.score),
            evalue: ka.evalue(h.score, query_len, db_residues, db_seqs),
            alignment,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::db::DatabaseBuilder;
    use sapa_bioseq::queries::QuerySet;
    use sapa_bioseq::Sequence;

    fn small_setup() -> (Sequence, Vec<Sequence>) {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(29)
            .sequences(20)
            .median_length(90.0)
            .homolog_template(query.clone())
            .homolog_fraction(0.2)
            .build();
        (query, db.sequences().to_vec())
    }

    #[test]
    fn registry_names_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::from_name(e.name()), Some(e));
            assert_eq!(Engine::from_name(&e.name().to_uppercase()), Some(e));
            assert_eq!(format!("{e}"), e.name());
            assert!(!e.description().is_empty());
        }
        assert_eq!(Engine::from_name("no-such-engine"), None);
    }

    #[test]
    fn engine_names_match_registry_names() {
        let q = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        assert_eq!(SwEngine::new(q.residues(), &m, g).name(), "sw");
        assert_eq!(SwLazyEngine::new(q.residues(), &m, g).name(), "sw-lazy");
        assert_eq!(
            StripedEngine::<16, 8>::from_query(q.residues(), &m, g).name(),
            "striped"
        );
        assert_eq!(
            AntiDiagonalEngine::<8>::new(q.residues(), &m, g).name(),
            "vmx128"
        );
        assert_eq!(
            AntiDiagonalEngine::<16>::new(q.residues(), &m, g).name(),
            "vmx256"
        );
        assert_eq!(
            FastaEngine::new(q.residues(), &m, g, fasta::FastaParams::default()).name(),
            "fasta"
        );
        assert_eq!(
            BlastEngine::new(q.residues(), &m, g, blast::BlastParams::default()).name(),
            "blast"
        );
    }

    #[test]
    fn exact_engines_match_scalar_reference() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: db.len(),
            min_score: 1,
            deadline: None,
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let reference = Engine::Sw.search(&req, &subjects, 1);
        for e in Engine::ALL.into_iter().filter(|e| e.is_exact()) {
            let resp = e.search(&req, &subjects, 1);
            assert_eq!(resp.hits, reference.hits, "engine {e}");
            assert_eq!(resp.engine, e);
        }
    }

    #[test]
    fn report_alignments_attaches_replayable_cigars() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: g,
            top_k: 5,
            min_score: 1,
            deadline: None,
            report_alignments: true,
            prefilter: Prefilter::Off,
        };
        for e in Engine::ALL {
            let resp = e.search(&req, &subjects, 2);
            for hit in &resp.hits {
                if e.is_exact() {
                    let al = hit
                        .alignment
                        .as_ref()
                        .unwrap_or_else(|| panic!("{e}: hit {} missing alignment", hit.seq_index));
                    assert_eq!(
                        al.replay_score(query.residues(), subjects[hit.seq_index], &m, g),
                        Some(hit.score),
                        "{e}: hit {}",
                        hit.seq_index
                    );
                } else {
                    // Heuristic scores are approximate — no CIGAR.
                    assert!(hit.alignment.is_none(), "{e}");
                }
            }
        }
        // Score-only searches attach nothing.
        let quiet_req = SearchRequest {
            report_alignments: false,
            prefilter: Prefilter::Off,
            ..req
        };
        let quiet = Engine::Striped.search(&quiet_req, &subjects, 1);
        assert!(!quiet.hits.is_empty());
        assert!(quiet.hits.iter().all(|h| h.alignment.is_none()));
    }

    #[test]
    fn evalues_decrease_with_score() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 10,
            min_score: 1,
            deadline: None,
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let resp = Engine::Striped.search(&req, &subjects, 2);
        assert!(!resp.hits.is_empty());
        for pair in resp.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
            assert!(pair[0].evalue <= pair[1].evalue);
            assert!(pair[0].bits >= pair[1].bits);
        }
        // A planted homolog must look significant in this search space.
        assert!(resp.hits[0].evalue < 1e-6, "E = {}", resp.hits[0].evalue);
        assert_eq!(resp.stats.subjects, subjects.len());
        assert_eq!(resp.stats.threads, 2);
    }

    #[test]
    fn min_score_filters_and_top_k_bounds() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 3,
            min_score: 60,
            deadline: None,
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let resp = Engine::Sw.search(&req, &subjects, 1);
        assert!(resp.hits.len() <= 3);
        assert!(resp.hits.iter().all(|h| h.score >= 60));
    }

    #[test]
    fn full_scans_report_completion() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 10,
            min_score: 1,
            deadline: None,
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let resp = Engine::Striped.search(&req, &subjects, 2);
        assert!(resp.completed);
        assert_eq!(resp.truncated_by, None);
        assert_eq!(resp.coverage, subjects.len());
        assert!(resp.stats.quarantined.is_empty());
    }

    #[test]
    fn registry_cost_len_matches_concrete_engines() {
        let (query, _) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        struct Probe {
            subject_len: usize,
        }
        impl EngineVisitor for Probe {
            type Out = u64;
            fn visit<E: AlignmentEngine>(self, _id: Engine, engine: &E) -> u64 {
                engine.cost_len(self.subject_len)
            }
        }
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 1,
            min_score: 1,
            deadline: None,
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        for e in Engine::ALL {
            for subject_len in [0usize, 1, 17, 250] {
                assert_eq!(
                    e.cost_len(query.residues().len(), subject_len),
                    e.dispatch(&req, Probe { subject_len }),
                    "engine {e} subject_len {subject_len}"
                );
            }
            // scan_cost is the sum over a length table.
            let lens = [3usize, 40, 90];
            let total: u64 = lens
                .iter()
                .map(|&l| e.cost_len(query.residues().len(), l))
                .sum();
            assert_eq!(e.scan_cost(query.residues().len(), lens), total);
        }
    }

    #[test]
    fn cell_budget_yields_deterministic_partial_response() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        // Admit roughly half the database by cumulative DP cost.
        let total: u64 = subjects
            .iter()
            .map(|s| (query.residues().len() * s.len()) as u64)
            .sum();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: db.len(),
            min_score: 1,
            deadline: Some(Deadline::Cells(total / 2)),
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let one = Engine::Sw.search(&req, &subjects, 1);
        assert!(!one.completed);
        assert_eq!(one.truncated_by, Some(DeadlineKind::Cells));
        assert!(one.coverage > 0 && one.coverage < subjects.len());
        // Hits rank exactly the admitted prefix.
        assert!(one.hits.iter().all(|h| h.seq_index < one.coverage));
        for threads in [2, 4] {
            let mut resp = Engine::Sw.search(&req, &subjects, threads);
            resp.stats.threads = one.stats.threads;
            assert_eq!(resp, one, "threads={threads}");
        }
    }

    #[test]
    fn zero_budget_yields_empty_incomplete_response() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 5,
            min_score: 1,
            deadline: Some(Deadline::Cells(0)),
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let resp = Engine::Sw.search(&req, &subjects, 2);
        assert!(!resp.completed);
        assert_eq!(resp.coverage, 0);
        assert!(resp.hits.is_empty());
    }

    #[test]
    fn wall_deadline_in_the_past_still_returns() {
        let (query, db) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let subjects: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
        let req = SearchRequest {
            query: query.residues(),
            matrix: &m,
            gaps: GapPenalties::paper(),
            top_k: 5,
            min_score: 1,
            deadline: Some(Deadline::Wall(std::time::Duration::ZERO)),
            report_alignments: false,
            prefilter: Prefilter::Off,
        };
        let resp = Engine::Sw.search(&req, &subjects, 2);
        // An already-expired cutoff must degrade, not hang or panic.
        assert!(resp.coverage <= subjects.len());
        assert_eq!(resp.completed, resp.coverage == subjects.len());
        // The response names the wall deadline as the (only possible)
        // truncation cause exactly when coverage fell short.
        match resp.truncated_by {
            Some(DeadlineKind::Wall) => assert!(!resp.completed),
            None => assert!(resp.completed),
            Some(DeadlineKind::Cells) => panic!("no cell budget was set"),
        }
    }

    #[test]
    fn dp_engines_report_dp_costs() {
        let (query, _) = small_setup();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let subject = query.residues();
        let cells = (query.residues().len() * subject.len()) as u64;
        assert_eq!(SwEngine::new(query.residues(), &m, g).cost(subject), cells);
        assert_eq!(
            StripedEngine::<16, 8>::from_query(query.residues(), &m, g).cost(subject),
            cells
        );
        // Heuristics default to subject-linear cost.
        assert_eq!(
            BlastEngine::new(query.residues(), &m, g, blast::BlastParams::default()).cost(subject),
            subject.len() as u64
        );
    }
}
