/root/repo/target/debug/deps/sapa_cpu-c19d2ae7427138b3.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/debug/deps/sapa_cpu-c19d2ae7427138b3: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/cache.rs:
crates/cpu/src/config.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/stats.rs:
crates/cpu/src/trauma.rs:
