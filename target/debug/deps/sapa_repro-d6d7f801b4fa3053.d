/root/repo/target/debug/deps/sapa_repro-d6d7f801b4fa3053.d: crates/repro/src/main.rs

/root/repo/target/debug/deps/sapa_repro-d6d7f801b4fa3053: crates/repro/src/main.rs

crates/repro/src/main.rs:
