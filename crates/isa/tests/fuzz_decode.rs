//! Fuzz-style robustness tests for the trace decoder: arbitrary bytes
//! must produce an error or a valid trace, never a panic.
//!
//! Randomness comes from a local SplitMix64 so the corpus is fully
//! deterministic (the container has no registry access for an external
//! fuzzing framework).

use sapa_isa::Trace;

/// SplitMix64 (same constants as `sapa_bioseq::rng::SplitMix64`, inlined
/// here because `sapa-isa` deliberately has no bioseq dependency).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[test]
fn arbitrary_bytes_never_panic() {
    let mut rng = Rng(0xDECD_E000);
    for _ in 0..256 {
        let len = rng.next_below(600) as usize;
        let mut bytes = vec![0u8; len];
        for b in bytes.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        let _ = Trace::read_from(&bytes[..]);
    }
}

#[test]
fn corrupted_packed_traces_error_or_decode_but_never_panic() {
    use sapa_isa::trace::Tracer;
    use sapa_isa::{reg, PackedTrace};

    let mut rng = Rng(0xFACC_ED00);
    let mut detected = 0usize;
    for round in 0..256 {
        let mut t = Tracer::new();
        for i in 0..24u32 {
            match (round + i as usize) % 4 {
                0 => t.ialu(i, reg::gpr(3), &[reg::gpr(1), reg::gpr(2)]),
                1 => t.iload(i, reg::gpr(1), 0x1000_0000 + 4 * i, 4, &[reg::gpr(2)]),
                2 => t.istore(i, 0x1000_0100 + 4 * i, 4, &[reg::gpr(3)]),
                _ => t.branch(i, i % 2 == 0, 0, &[reg::gpr(3)]),
            }
        }
        let packed = PackedTrace::from_trace(&t.finish());
        assert!(packed.check().is_ok());

        let mut bad = packed.clone();
        let flips = 1 + rng.next_below(5) as usize;
        for _ in 0..flips {
            let offset = rng.next_below(bad.heap_bytes() as u64) as usize;
            let xor = (rng.next_u64() as u8) | 1;
            bad = bad.with_corrupted_byte(offset, xor);
        }
        // The contract under corruption: `check()` returns a typed
        // `TraceError` — it cannot miss, because any single byte flip
        // changes the FNV digest and the stored checksum was left
        // stale. The clean original must keep validating and decoding.
        match bad.check() {
            Err(_) => detected += 1,
            Ok(()) => panic!("byte corruption escaped the checksum"),
        }
        assert!(packed.check().is_ok());
        assert_eq!(packed.iter().count(), 24);
    }
    assert_eq!(detected, 256);
}

#[test]
fn corrupted_valid_traces_never_panic() {
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    let mut rng = Rng(0xC044_0F7E);
    for _ in 0..256 {
        let mut t = Tracer::new();
        for i in 0..20u32 {
            t.iload(i, reg::gpr(1), 0x1000_0000 + i, 4, &[reg::gpr(2)]);
            t.branch(i + 100, i % 2 == 0, 0, &[reg::gpr(1)]);
        }
        let mut buf = Vec::new();
        t.finish().write_to(&mut buf).unwrap();
        let flips = 1 + rng.next_below(7) as usize;
        for _ in 0..flips {
            let idx = rng.next_below(buf.len() as u64) as usize;
            buf[idx] = rng.next_u64() as u8;
        }
        // Decoding may fail or succeed; it must never panic, and a
        // successful decode must re-serialize cleanly.
        if let Ok(trace) = Trace::read_from(&buf[..]) {
            let mut out = Vec::new();
            trace.write_to(&mut out).unwrap();
        }
    }
}
