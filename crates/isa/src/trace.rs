//! Trace container and the emitting [`Tracer`].

use std::io::{Read, Write};

use crate::inst::{flags, Inst, OpClass};
use crate::reg::Reg;
use crate::stats::TraceStats;
use crate::{Error, Result};

/// Base of the simulated code segment. Site ids map to PCs as
/// `CODE_BASE + 4 * site`, giving every static emission point a stable,
/// 4-byte-aligned instruction address.
pub const CODE_BASE: u32 = 0x0010_0000;

/// A *site* identifies one static instruction in an instrumented
/// workload; dynamic instances of the same site share a PC, which is
/// what gives branch predictors and the I-cache realistic behaviour.
pub type Site = u32;

/// An immutable instruction trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    insts: Vec<Inst>,
}

impl Trace {
    /// Wraps a raw instruction vector.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Trace { insts }
    }

    /// The instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Computes the instruction-class breakdown (paper Fig. 1).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_insts(&self.insts)
    }

    /// Serializes the trace to a compact binary stream.
    ///
    /// A `&mut W` can be passed for writers you want to keep using
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.insts.len() as u64).to_le_bytes())?;
        let mut buf = [0u8; RECORD_LEN];
        for inst in &self.insts {
            buf[0..4].copy_from_slice(&inst.pc.to_le_bytes());
            buf[4..8].copy_from_slice(&inst.ea.to_le_bytes());
            buf[8] = inst.op.index() as u8;
            buf[9] = inst.dst.id();
            buf[10] = inst.srcs[0].id();
            buf[11] = inst.srcs[1].id();
            buf[12] = inst.srcs[2].id();
            buf[13] = inst.flags;
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserializes a trace previously written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// [`Error::MalformedTrace`] on a bad magic number, a truncated
    /// body, or invalid field encodings; [`Error::Io`] on read failures.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| malformed("missing header"))?;
        if &magic != MAGIC {
            return Err(malformed("bad magic number"));
        }
        let mut lenb = [0u8; 8];
        r.read_exact(&mut lenb)
            .map_err(|_| malformed("missing length"))?;
        let len = u64::from_le_bytes(lenb);
        if len > (1 << 31) {
            return Err(malformed("implausible instruction count"));
        }
        // Never trust the header for preallocation: a corrupted length
        // must fail at read time, not abort on a huge allocation.
        let mut insts = Vec::with_capacity(len.min(1 << 20) as usize);
        let mut buf = [0u8; RECORD_LEN];
        for i in 0..len {
            r.read_exact(&mut buf)
                .map_err(|_| malformed(&format!("truncated at instruction {i}")))?;
            let op = OpClass::from_index(buf[8] as usize)
                .ok_or_else(|| malformed(&format!("invalid op class {}", buf[8])))?;
            insts.push(Inst {
                pc: u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
                ea: u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]),
                op,
                dst: raw_reg(buf[9])?,
                srcs: [raw_reg(buf[10])?, raw_reg(buf[11])?, raw_reg(buf[12])?],
                flags: buf[13],
            });
        }
        Ok(Trace { insts })
    }
}

const MAGIC: &[u8; 8] = b"SAPATRC1";
const RECORD_LEN: usize = 14;

fn malformed(reason: &str) -> Error {
    Error::MalformedTrace {
        reason: reason.to_string(),
    }
}

fn raw_reg(id: u8) -> Result<Reg> {
    // All ids < Reg::COUNT plus the NONE sentinel are valid encodings.
    if id == Reg::NONE.id() || (id as usize) < Reg::COUNT {
        // Safety of representation: Reg is a plain newtype over u8; we
        // reconstruct through the public constructors to stay honest.
        Ok(decode_reg(id))
    } else {
        Err(malformed(&format!("invalid register id {id}")))
    }
}

fn decode_reg(id: u8) -> Reg {
    use crate::reg::{fpr, gpr, vr};
    match id {
        255 => Reg::NONE,
        0..=31 => gpr(id),
        32..=63 => fpr(id - 32),
        _ => vr(id - 64),
    }
}

impl AsRef<[Inst]> for Trace {
    fn as_ref(&self) -> &[Inst] {
        &self.insts
    }
}

/// Builds a [`Trace`] while an instrumented kernel runs.
///
/// Every emit method takes a [`Site`] (static instruction id); the PC is
/// derived as `CODE_BASE + 4 * site`. Branch targets are likewise given
/// as sites.
///
/// ```
/// use sapa_isa::reg;
/// use sapa_isa::trace::Tracer;
///
/// let mut t = Tracer::new();
/// let sum = reg::gpr(3);
/// let ptr = reg::gpr(4);
/// t.iload(0, reg::gpr(5), 0x1000_0000, 4, &[ptr]);
/// t.ialu(1, sum, &[sum, reg::gpr(5)]);
/// t.branch(2, true, 0, &[sum]);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    insts: Vec<Inst>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Tracer { insts: Vec::new() }
    }

    /// Creates a tracer with pre-allocated capacity for `n` instructions.
    pub fn with_capacity(n: usize) -> Self {
        Tracer {
            insts: Vec::with_capacity(n),
        }
    }

    /// Instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes tracing and returns the trace.
    pub fn finish(self) -> Trace {
        Trace { insts: self.insts }
    }

    #[inline]
    fn push(&mut self, site: Site, op: OpClass, dst: Reg, srcs: &[Reg], ea: u32, fl: u8) {
        debug_assert!(srcs.len() <= 3, "at most 3 sources per instruction");
        let mut s = [Reg::NONE; 3];
        s[..srcs.len()].copy_from_slice(srcs);
        self.insts.push(Inst {
            pc: CODE_BASE + 4 * site,
            ea,
            op,
            dst,
            srcs: s,
            flags: fl,
        });
    }

    /// Emits an integer ALU instruction `dst <- op(srcs)`.
    #[inline]
    pub fn ialu(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::IAlu, dst, srcs, 0, 0);
    }

    /// Emits a scalar load of `width` bytes from `addr` into `dst`;
    /// `srcs` are the address-generation registers.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `width` is not a power of two ≤ 32.
    #[inline]
    pub fn iload(&mut self, site: Site, dst: Reg, addr: u32, width: u32, srcs: &[Reg]) {
        self.push(site, OpClass::ILoad, dst, srcs, addr, width_flag(width));
    }

    /// Emits a scalar store of `width` bytes to `addr`; `srcs` carry both
    /// the data and address registers.
    #[inline]
    pub fn istore(&mut self, site: Site, addr: u32, width: u32, srcs: &[Reg]) {
        self.push(
            site,
            OpClass::IStore,
            Reg::NONE,
            srcs,
            addr,
            width_flag(width),
        );
    }

    /// Emits a conditional branch at `site` with actual outcome `taken`
    /// and (taken-path) target site `target`.
    #[inline]
    pub fn branch(&mut self, site: Site, taken: bool, target: Site, srcs: &[Reg]) {
        let fl = flags::COND | if taken { flags::TAKEN } else { 0 };
        self.push(
            site,
            OpClass::Branch,
            Reg::NONE,
            srcs,
            CODE_BASE + 4 * target,
            fl,
        );
    }

    /// Emits an unconditional jump to `target`.
    #[inline]
    pub fn jump(&mut self, site: Site, target: Site) {
        self.push(
            site,
            OpClass::Branch,
            Reg::NONE,
            &[],
            CODE_BASE + 4 * target,
            flags::TAKEN,
        );
    }

    /// Emits a scalar floating-point instruction.
    #[inline]
    pub fn fpu(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::Fpu, dst, srcs, 0, 0);
    }

    /// Emits a vector load of `width` bytes (16 for Altivec-128, 32 for
    /// the futuristic 256-bit extension).
    #[inline]
    pub fn vload(&mut self, site: Site, dst: Reg, addr: u32, width: u32, srcs: &[Reg]) {
        self.push(site, OpClass::VLoad, dst, srcs, addr, width_flag(width));
    }

    /// Emits a vector store of `width` bytes.
    #[inline]
    pub fn vstore(&mut self, site: Site, addr: u32, width: u32, srcs: &[Reg]) {
        self.push(
            site,
            OpClass::VStore,
            Reg::NONE,
            srcs,
            addr,
            width_flag(width),
        );
    }

    /// Emits a simple vector-integer instruction (add/sub/max/cmp).
    #[inline]
    pub fn vsimple(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::VSimple, dst, srcs, 0, 0);
    }

    /// Emits a vector permute/shift/merge instruction.
    #[inline]
    pub fn vperm(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::VPerm, dst, srcs, 0, 0);
    }

    /// Emits a complex vector-integer instruction (multiply, sum-across).
    #[inline]
    pub fn vcmplx(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::VCmplx, dst, srcs, 0, 0);
    }

    /// Emits a vector floating-point instruction.
    #[inline]
    pub fn vfpu(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::VFpu, dst, srcs, 0, 0);
    }

    /// Emits an uncategorized instruction (sync, system, …).
    #[inline]
    pub fn other(&mut self, site: Site, dst: Reg, srcs: &[Reg]) {
        self.push(site, OpClass::Other, dst, srcs, 0, 0);
    }
}

#[inline]
fn width_flag(width: u32) -> u8 {
    debug_assert!(
        width.is_power_of_two() && width <= 32,
        "memory access width must be a power of two ≤ 32, got {width}"
    );
    (width.trailing_zeros() as u8) << flags::WIDTH_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{self, Reg};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new();
        t.iload(0, reg::gpr(1), 0x1000_0040, 4, &[reg::gpr(2)]);
        t.ialu(1, reg::gpr(3), &[reg::gpr(1), reg::gpr(3)]);
        t.branch(2, false, 0, &[reg::gpr(3)]);
        t.vload(3, reg::vr(0), 0x1000_0100, 16, &[reg::gpr(2)]);
        t.vsimple(4, reg::vr(1), &[reg::vr(0), reg::vr(1)]);
        t.vperm(5, reg::vr(2), &[reg::vr(1)]);
        t.istore(6, 0x1000_0200, 4, &[reg::gpr(3), reg::gpr(2)]);
        t.jump(7, 0);
        t.finish()
    }

    #[test]
    fn pc_derivation() {
        let tr = sample_trace();
        assert_eq!(tr.insts()[0].pc, CODE_BASE);
        assert_eq!(tr.insts()[1].pc, CODE_BASE + 4);
        // jump target encodes site 0
        assert_eq!(tr.insts()[7].ea, CODE_BASE);
    }

    #[test]
    fn branch_flags() {
        let tr = sample_trace();
        let br = tr.insts()[2];
        assert!(br.is_cond_branch());
        assert!(!br.taken());
        let jmp = tr.insts()[7];
        assert!(!jmp.is_cond_branch());
        assert!(jmp.taken());
    }

    #[test]
    fn widths_round_trip() {
        let tr = sample_trace();
        assert_eq!(tr.insts()[0].width(), 4);
        assert_eq!(tr.insts()[3].width(), 16);
    }

    #[test]
    fn serialization_round_trip() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        tr.write_to(&mut buf).unwrap();
        let rt = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(rt, tr);
    }

    #[test]
    fn read_rejects_bad_magic() {
        let err = Trace::read_from(&b"NOTATRACE........."[..]).unwrap_err();
        assert!(matches!(err, Error::MalformedTrace { .. }));
    }

    #[test]
    fn read_rejects_truncation() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        tr.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            Trace::read_from(&buf[..]),
            Err(Error::MalformedTrace { .. })
        ));
    }

    #[test]
    fn read_rejects_bad_register() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        tr.write_to(&mut buf).unwrap();
        buf[16 + 9] = 200; // dst of first record -> invalid id
        assert!(matches!(
            Trace::read_from(&buf[..]),
            Err(Error::MalformedTrace { .. })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let tr = Tracer::new().finish();
        let mut buf = Vec::new();
        tr.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&buf[..]).unwrap(), tr);
    }

    #[test]
    fn none_register_survives_round_trip() {
        let mut t = Tracer::new();
        t.istore(0, 0x1000_0000, 4, &[Reg::NONE]);
        let tr = t.finish();
        let mut buf = Vec::new();
        tr.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&buf[..]).unwrap(), tr);
    }
}
