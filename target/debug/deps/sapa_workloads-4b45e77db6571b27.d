/root/repo/target/debug/deps/sapa_workloads-4b45e77db6571b27.d: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

/root/repo/target/debug/deps/libsapa_workloads-4b45e77db6571b27.rlib: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

/root/repo/target/debug/deps/libsapa_workloads-4b45e77db6571b27.rmeta: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

crates/workloads/src/lib.rs:
crates/workloads/src/blast.rs:
crates/workloads/src/blastn.rs:
crates/workloads/src/fasta.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/ssearch.rs:
crates/workloads/src/sw_simd.rs:
