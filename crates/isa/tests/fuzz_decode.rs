//! Fuzz-style robustness tests for the trace decoder: arbitrary bytes
//! must produce an error or a valid trace, never a panic.

use proptest::prelude::*;
use sapa_isa::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Trace::read_from(&bytes[..]);
    }

    #[test]
    fn corrupted_valid_traces_never_panic(
        flips in proptest::collection::vec((0usize..1000, any::<u8>()), 1..8),
    ) {
        use sapa_isa::trace::Tracer;
        use sapa_isa::reg;
        let mut t = Tracer::new();
        for i in 0..20u32 {
            t.iload(i, reg::gpr(1), 0x1000_0000 + i, 4, &[reg::gpr(2)]);
            t.branch(i + 100, i % 2 == 0, 0, &[reg::gpr(1)]);
        }
        let mut buf = Vec::new();
        t.finish().write_to(&mut buf).unwrap();
        for (pos, val) in flips {
            let idx = pos % buf.len();
            buf[idx] = val;
        }
        // Decoding may fail or succeed; it must never panic, and a
        // successful decode must re-serialize cleanly.
        if let Ok(trace) = Trace::read_from(&buf[..]) {
            let mut out = Vec::new();
            trace.write_to(&mut out).unwrap();
        }
    }
}
