//! Property-based tests for the alignment algorithms.
//!
//! The single most important invariant of the whole reproduction is that
//! the three Smith-Waterman implementations (textbook Gotoh, SSEARCH-
//! style lazy-F, anti-diagonal SIMD at both lane widths) compute the
//! same score on arbitrary inputs — the paper's workloads are different
//! *machines* running the same *math*.

use proptest::prelude::*;
use sapa_align::{banded, blast, fasta, nw, simd_sw, sw, xdrop};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

fn residue() -> impl Strategy<Value = AminoAcid> {
    // Standard residues only: ambiguity codes are exercised by unit
    // tests; heuristics skip them by design.
    (0usize..AminoAcid::STANDARD_COUNT).prop_map(|i| AminoAcid::from_index(i).unwrap())
}

fn protein(max_len: usize) -> impl Strategy<Value = Vec<AminoAcid>> {
    proptest::collection::vec(residue(), 0..max_len)
}

fn gap_penalties() -> impl Strategy<Value = GapPenalties> {
    (1i32..=14, 1i32..=4).prop_map(|(open, ext)| GapPenalties::new(open, ext))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn simd_sw_matches_scalar(
        a in protein(48),
        b in protein(48),
        g in gap_penalties(),
    ) {
        let m = SubstitutionMatrix::blosum62();
        let expect = sw::score(&a, &b, &m, g);
        prop_assert_eq!(simd_sw::score::<8>(&a, &b, &m, g), expect);
        prop_assert_eq!(simd_sw::score::<16>(&a, &b, &m, g), expect);
    }

    #[test]
    fn byte_precision_simd_matches_scalar(
        a in protein(40),
        b in protein(40),
        g in gap_penalties(),
    ) {
        let m = SubstitutionMatrix::blosum62();
        let expect = sw::score(&a, &b, &m, g);
        // The byte pass either agrees exactly or reports overflow.
        if let Some(s) = simd_sw::score_bytes::<16>(&a, &b, &m, g) {
            prop_assert_eq!(s, expect);
        }
        // The adaptive wrapper always agrees.
        prop_assert_eq!(simd_sw::score_adaptive::<16, 8>(&a, &b, &m, g), expect);
        prop_assert_eq!(simd_sw::score_adaptive::<32, 16>(&a, &b, &m, g), expect);
    }

    #[test]
    fn lazy_f_matches_scalar(
        a in protein(48),
        b in protein(48),
        g in gap_penalties(),
    ) {
        let m = SubstitutionMatrix::blosum62();
        prop_assert_eq!(
            sw::score_lazy_f(&a, &b, &m, g),
            sw::score(&a, &b, &m, g)
        );
    }

    #[test]
    fn sw_score_is_symmetric(a in protein(32), b in protein(32)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        prop_assert_eq!(sw::score(&a, &b, &m, g), sw::score(&b, &a, &m, g));
    }

    #[test]
    fn sw_score_nonnegative_and_bounded(a in protein(32), b in protein(32)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let s = sw::score(&a, &b, &m, g);
        prop_assert!(s >= 0);
        // Upper bound: the shorter sequence matched perfectly at the
        // matrix maximum.
        let bound = (a.len().min(b.len()) as i32) * m.max_score();
        prop_assert!(s <= bound);
    }

    #[test]
    fn sw_self_score_is_diagonal_sum(a in protein(32)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        prop_assert_eq!(sw::score(&a, &a, &m, g), expected.max(0));
    }

    #[test]
    fn banded_never_exceeds_full(
        a in protein(32),
        b in protein(32),
        diag in -8isize..8,
        width in 1usize..6,
    ) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        prop_assert!(banded::score(&a, &b, &m, g, diag, width) <= sw::score(&a, &b, &m, g));
    }

    #[test]
    fn banded_full_width_equals_full(a in protein(24), b in protein(24)) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        prop_assert_eq!(
            banded::score(&a, &b, &m, g, 0, a.len() + b.len()),
            sw::score(&a, &b, &m, g)
        );
    }

    #[test]
    fn global_at_most_local(a in protein(24), b in protein(24)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        prop_assert!(nw::score(&a, &b, &m, g) <= sw::score(&a, &b, &m, g));
    }

    #[test]
    fn alignment_hierarchy_global_semiglobal_local(
        a in protein(24),
        b in protein(24),
    ) {
        // global ≤ semi-global ≤ local: each relaxes more constraints.
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let global = nw::score(&a, &b, &m, g);
        let semi = nw::semiglobal_score(&a, &b, &m, g);
        let local = sw::score(&a, &b, &m, g);
        prop_assert!(global <= semi, "global {} > semi {}", global, semi);
        prop_assert!(semi <= local, "semi {} > local {}", semi, local);
    }

    #[test]
    fn global_traceback_matches_score(a in protein(16), b in protein(16)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let al = nw::align(&a, &b, &m, g);
        prop_assert_eq!(al.score, nw::score(&a, &b, &m, g));
    }

    #[test]
    fn traceback_score_matches(a in protein(20), b in protein(20)) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let al = sw::align(&a, &b, &m, g);
        prop_assert_eq!(al.score, sw::score(&a, &b, &m, g));
    }

    #[test]
    fn heuristic_scores_never_exceed_sw(a in protein(40), b in protein(40)) {
        prop_assume!(a.len() >= 3 && b.len() >= 3);
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let full = sw::score(&a, &b, &m, g);

        // FASTA's opt is a banded SW — a lower bound on full SW.
        let idx = fasta::KtupIndex::build(&a, 2);
        let fs = fasta::score_subject(&idx, &b, &m, g, &fasta::FastaParams::default());
        prop_assert!(fs.opt <= full, "opt {} > sw {}", fs.opt, full);

        // BLAST's reported score (banded or ungapped) is also ≤ full SW.
        let widx = blast::WordIndex::build(&a, &m, 11);
        let db: Vec<&[AminoAcid]> = vec![&b];
        let mut res = blast::search(&widx, db, &m, g, &blast::BlastParams::default(), 5);
        if let Some(best) = res.best_score() {
            prop_assert!(best <= full, "blast {} > sw {}", best, full);
        }
    }

    #[test]
    fn xdrop_monotone_in_x_and_bounded_by_local(
        a in protein(24),
        b in protein(24),
        x_small in 2i32..8,
    ) {
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let tight = xdrop::extend_right(&a, &b, &m, g, x_small);
        let loose = xdrop::extend_right(&a, &b, &m, g, 10_000);
        prop_assert!(tight <= loose, "tight {} > loose {}", tight, loose);
        // An origin-anchored extension can never beat the free local
        // alignment.
        prop_assert!(loose <= sw::score(&a, &b, &m, g).max(0) + 0,
            "xdrop {} > sw", loose);
        prop_assert!(loose >= 0);
    }

    #[test]
    fn word_index_entries_meet_threshold(a in protein(24), t in 8i32..14) {
        prop_assume!(a.len() >= 3);
        let m = SubstitutionMatrix::blosum62();
        let idx = blast::WordIndex::build(&a, &m, t);
        for word in 0..blast::WORD_TABLE_SIZE {
            for &qi in idx.lookup(word) {
                let q = &a[qi as usize..qi as usize + 3];
                let c = [word / 400, (word / 20) % 20, word % 20];
                let score: i32 = (0..3)
                    .map(|k| m.score_by_index(q[k].index(), c[k]))
                    .sum();
                prop_assert!(score >= t);
            }
        }
    }
}
