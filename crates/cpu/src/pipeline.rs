//! The cycle-driven out-of-order pipeline model.
//!
//! Stage order within a cycle is retire → issue → dispatch → fetch, so
//! an instruction needs at least one cycle per stage (no same-cycle
//! pass-through), matching the multi-stage pipes of the machines the
//! paper models.
//!
//! ## Trauma attribution
//!
//! On every cycle in which no instruction retires, one cycle is charged
//! to the stall reason of the oldest in-flight instruction — or, when
//! the window is empty, to the reason instruction fetch is not
//! delivering (branch-misprediction recovery, I-cache miss, NFA
//! redirect, …). This is the Moreno et al. accounting that produces the
//! paper's Figure 2 histograms.

use std::collections::VecDeque;

use sapa_isa::inst::{Inst, OpClass};
use sapa_isa::packed::{BlockDecoder, PackedTrace, TraceError, BLOCK_LEN};
use sapa_isa::reg::RegFile;
use sapa_isa::trace::Trace;

use crate::branch::{NfaTable, Predictor};
use crate::cache::{MemoryHierarchy, ServedBy};
use crate::config::{SimConfig, UnitClass};
use crate::stats::{OccupancyHistogram, SimReport};
use crate::trauma::{Trauma, TraumaCounts};

/// Maps an instruction class to the functional-unit class that executes
/// it (Table IV's unit mix).
#[inline]
pub fn unit_for(op: OpClass) -> UnitClass {
    match op {
        OpClass::IAlu | OpClass::Other => UnitClass::Fix,
        OpClass::ILoad | OpClass::IStore | OpClass::VLoad | OpClass::VStore => UnitClass::Mem,
        OpClass::Branch => UnitClass::Br,
        OpClass::Fpu => UnitClass::Fpu,
        OpClass::VSimple => UnitClass::Vi,
        OpClass::VPerm => UnitClass::Vper,
        OpClass::VCmplx => UnitClass::Vcmplx,
        OpClass::VFpu => UnitClass::Vfpu,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Dispatched, waiting in an issue queue.
    Waiting,
    /// Issued; result available at `done_at`.
    Executing,
    /// Completed.
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    inst: Inst,
    state: State,
    queue: UnitClass,
    done_at: u64,
    dispatch_cycle: u64,
    deps: [u64; 4],
    ndeps: u8,
    served: Option<ServedBy>,
    tlb_miss: bool,
    mispredicted: bool,
    is_cond_branch: bool,
    /// Set when the only thing stopping issue was a full MSHR file.
    mshr_blocked: bool,
}

/// The trace-driven simulator.
///
/// Construct once per configuration; [`Simulator::run`] may be called
/// repeatedly (each run uses fresh microarchitectural state).
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid simulator configuration: {msg}");
        }
        Simulator { cfg }
    }

    /// The configuration this simulator models.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Simulates `trace` to completion and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal watchdog of
    /// `1000 × len + 10^6` cycles, which would indicate a scheduling
    /// deadlock (an internal bug, not a configuration problem).
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::run`] with a caller-owned [`DecodeBuf`], so repeated
    /// runs (sweeps) reuse one block buffer instead of allocating per
    /// replay.
    pub fn run_with(&self, trace: &Trace, buf: &mut DecodeBuf) -> SimReport {
        let insts = trace.insts();
        Engine::new(&self.cfg, insts.len(), SliceSource { insts, pos: 0 }, buf).run()
    }

    /// Simulates a [`PackedTrace`] without unpacking it: the replay
    /// block-decodes the compact structure-of-arrays streams into a
    /// small reusable buffer ([`BlockDecoder`]), so each instruction is
    /// decoded exactly once and the decoded form stays L1-resident.
    /// Produces exactly the same report as [`Simulator::run`] on the
    /// equivalent [`Trace`].
    ///
    /// # Panics
    ///
    /// Same watchdog as [`Simulator::run`].
    pub fn run_packed(&self, trace: &PackedTrace) -> SimReport {
        self.run_packed_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::run_packed`] with a caller-owned [`DecodeBuf`]; the
    /// sweep engine gives each worker thread one buffer for its whole
    /// job stream.
    pub fn run_packed_with(&self, trace: &PackedTrace, buf: &mut DecodeBuf) -> SimReport {
        Engine::new(
            &self.cfg,
            trace.len(),
            PackedSource(trace.block_decoder()),
            buf,
        )
        .run()
    }

    /// [`Simulator::run_packed`] hardened against corrupted or malformed
    /// traces: the trace is validated before replay — stream structure
    /// and checksum via [`PackedTrace::check`], then architectural
    /// invariants via [`sapa_isa::validate`] — so untrusted bytes yield
    /// a typed [`TraceError`] instead of a panic deep inside the decode
    /// or replay loop.
    ///
    /// # Errors
    ///
    /// [`TraceError`] describing the first structural problem, checksum
    /// mismatch, or invariant violation.
    pub fn try_run_packed(&self, trace: &PackedTrace) -> Result<SimReport, TraceError> {
        self.try_run_packed_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::try_run_packed`] with a caller-owned [`DecodeBuf`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::try_run_packed`].
    pub fn try_run_packed_with(
        &self,
        trace: &PackedTrace,
        buf: &mut DecodeBuf,
    ) -> Result<SimReport, TraceError> {
        trace.check()?;
        let violations = sapa_isa::validate::validate_iter(trace.iter(), 8);
        if let Some(first) = violations.first() {
            return Err(TraceError::Invariant {
                first: first.to_string(),
                violations: violations.len(),
            });
        }
        Ok(self.run_packed_with(trace, buf))
    }
}

/// Reusable block-decode scratch: [`BLOCK_LEN`] decoded instructions
/// (4 KB — comfortably L1-resident). The engine fills it from its
/// instruction source one block at a time and the fetch stage reads decoded
/// `Inst`s straight out of it, so per-instruction decode state never
/// crosses the source boundary. Allocate once per thread and pass to
/// [`Simulator::run_packed_with`] to amortize the allocation across a
/// whole sweep.
#[derive(Debug, Clone)]
pub struct DecodeBuf {
    buf: Vec<Inst>,
}

impl DecodeBuf {
    /// A fresh buffer of [`BLOCK_LEN`] slots.
    pub fn new() -> Self {
        DecodeBuf {
            buf: vec![Inst::default(); BLOCK_LEN],
        }
    }
}

impl Default for DecodeBuf {
    fn default() -> Self {
        DecodeBuf::new()
    }
}

/// Where the engine pulls instructions from, a block at a time:
/// `fill_block` decodes up to `buf.len()` instructions into the front
/// of `buf` and returns how many it wrote (0 only when the trace is
/// exhausted). Successive calls continue where the last one stopped.
trait InstSource {
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize;
}

/// Array-of-structs source: blocks are plain `memcpy`s out of the
/// slice, so the batched front end costs the AoS path almost nothing.
struct SliceSource<'a> {
    insts: &'a [Inst],
    pos: usize,
}

impl InstSource for SliceSource<'_> {
    #[inline]
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize {
        let n = (self.insts.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.insts[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// Compact source: blocks come from [`BlockDecoder::fill`], the
/// batch-decode fast path over the structure-of-arrays streams.
struct PackedSource<'a>(BlockDecoder<'a>);

impl InstSource for PackedSource<'_> {
    #[inline]
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize {
        self.0.fill(buf)
    }
}

const FETCH_FREE: u64 = 0;

struct Engine<'a, S> {
    cfg: &'a SimConfig,
    src: S,
    n_insts: usize,
    cycle: u64,

    // Block-buffered decode window over the source: instructions
    // `block_start .. block_start + block_len` sit decoded in `block`.
    block: &'a mut [Inst],
    block_start: usize,
    block_len: usize,

    // Frontend.
    next_fetch: usize,
    fetch_stall_until: u64,
    fetch_stall_reason: Trauma,
    /// Sequence number of a fetched mispredicted branch that has not
    /// yet scheduled its recovery; fetch is blocked while this is set.
    mispredict_blocker: Option<u64>,
    ibuffer: VecDeque<(Inst, u64)>, // (decoded instruction, fetch cycle)
    cur_fetch_line: u64,
    pending_branches: u32,
    branch_resolutions: Vec<u64>,

    // Backend.
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    queues: Vec<VecDeque<u64>>,        // per UnitClass, entry = seq
    free_regs: [u32; 3],               // spare physical registers per file
    reg_writer: [u64; 128],            // seq of latest dispatched writer, or NO_WRITER
    store_queue: VecDeque<(u64, u32)>, // in-flight stores: (seq, addr granule)
    mshr: Vec<u64>,                    // completion cycles of outstanding DL1 misses
    hierarchy: MemoryHierarchy,
    predictor: Predictor,
    nfa: NfaTable,

    // Dispatch-stall bookkeeping for trauma attribution.
    dispatch_stall: Option<Trauma>,

    // Statistics.
    traumas: TraumaCounts,
    store_forwards: u64,
    retired: u64,
    unit_issued: [u64; UnitClass::COUNT],
    queue_occ: Vec<OccupancyHistogram>,
    inflight_occ: OccupancyHistogram,
    retireq_occ: OccupancyHistogram,
}

const NO_WRITER: u64 = u64::MAX;

impl<'a, S: InstSource> Engine<'a, S> {
    fn new(cfg: &'a SimConfig, n_insts: usize, src: S, buf: &'a mut DecodeBuf) -> Self {
        let queue_occ = UnitClass::ALL
            .iter()
            .map(|&c| OccupancyHistogram::new(cfg.cpu.issue_queue[c.index()] as usize))
            .collect();
        Engine {
            cfg,
            src,
            n_insts,
            cycle: 0,
            block: &mut buf.buf,
            block_start: 0,
            block_len: 0,
            next_fetch: 0,
            fetch_stall_until: FETCH_FREE,
            fetch_stall_reason: Trauma::Other,
            mispredict_blocker: None,
            ibuffer: VecDeque::with_capacity(cfg.cpu.ibuffer as usize),
            cur_fetch_line: u64::MAX,
            pending_branches: 0,
            branch_resolutions: Vec::with_capacity(cfg.branch.max_pred_branches as usize),
            rob: VecDeque::with_capacity(cfg.cpu.retire_queue as usize),
            head_seq: 0,
            queues: vec![VecDeque::new(); UnitClass::COUNT],
            free_regs: [
                cfg.cpu.gpr.saturating_sub(32),
                cfg.cpu.fpr.saturating_sub(32),
                cfg.cpu.vpr.saturating_sub(64),
            ],
            reg_writer: [NO_WRITER; 128],
            store_queue: VecDeque::new(),
            mshr: Vec::with_capacity(cfg.cpu.max_outstanding_misses as usize),
            hierarchy: MemoryHierarchy::new(&cfg.mem),
            predictor: Predictor::from_config(&cfg.branch),
            nfa: NfaTable::new(cfg.branch.nfa_size, cfg.branch.nfa_assoc),
            dispatch_stall: None,
            traumas: TraumaCounts::new(),
            store_forwards: 0,
            retired: 0,
            unit_issued: [0; UnitClass::COUNT],
            queue_occ,
            inflight_occ: OccupancyHistogram::new(cfg.cpu.inflight as usize),
            retireq_occ: OccupancyHistogram::new(cfg.cpu.retire_queue as usize),
        }
    }

    fn run(mut self) -> SimReport {
        let watchdog = self.n_insts as u64 * 1000 + 1_000_000;
        while self.next_fetch < self.n_insts || !self.ibuffer.is_empty() || !self.rob.is_empty() {
            self.cycle += 1;
            assert!(
                self.cycle < watchdog,
                "simulator watchdog tripped at cycle {} ({} of {} instructions retired): \
                 scheduling deadlock",
                self.cycle,
                self.retired,
                self.n_insts
            );

            self.expire_resolutions();
            let retired = self.retire();
            self.issue();
            self.dispatch_stall = None;
            self.dispatch();
            self.fetch();
            self.record_occupancy();
            // Moreno-style accounting: any cycle that retires fewer
            // instructions than the machine width is charged to the
            // stall reason of the oldest non-retiring operation.
            if retired < self.cfg.cpu.retire_width {
                let blame = self.blame();
                self.traumas.charge(blame, 1);
            }
        }

        // Issue slots offered per class: every simulated cycle each
        // unit of the class could have started one instruction.
        let mut unit_slots = [0u64; UnitClass::COUNT];
        for &class in &UnitClass::ALL {
            unit_slots[class.index()] = self.cycle * self.cfg.cpu.units[class.index()] as u64;
        }

        SimReport {
            cycles: self.cycle,
            instructions: self.retired,
            traumas: self.traumas,
            store_forwards: self.store_forwards,
            unit_issued: self.unit_issued,
            unit_slots,
            dl1: self.hierarchy.dl1_stats(),
            il1: self.hierarchy.il1_stats(),
            l2: self.hierarchy.l2_stats(),
            dtlb: self.hierarchy.dtlb_stats(),
            itlb: self.hierarchy.itlb_stats(),
            bp_predictions: self.predictor.predictions(),
            bp_mispredictions: self.predictor.mispredictions(),
            queue_occupancy: self.queue_occ,
            inflight_occupancy: self.inflight_occ,
            retireq_occupancy: self.retireq_occ,
        }
    }

    /// Decoded instruction `idx` out of the block buffer, refilling from
    /// the source when fetch steps past the buffered block.
    ///
    /// Fetch is sequential — `idx` is either the last index served (a
    /// stalled fetch retrying) or the one after it — so the offset into
    /// the current block is always in `0..=block_len`, and a refill is
    /// needed exactly when it equals `block_len`. The caller's
    /// `next_fetch < n_insts` guard guarantees the source still has
    /// instructions, so a refill always produces a non-empty block.
    #[inline]
    fn inst_at(&mut self, idx: usize) -> Inst {
        let off = idx - self.block_start;
        if off == self.block_len {
            self.block_start = idx;
            self.block_len = self.src.fill_block(self.block);
            debug_assert!(self.block_len > 0, "source dry at index {idx}");
            return self.block[0];
        }
        self.block[off]
    }

    #[inline]
    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        if seq < self.head_seq {
            return None; // already retired
        }
        self.rob.get((seq - self.head_seq) as usize)
    }

    #[inline]
    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        if seq < self.head_seq {
            return None;
        }
        self.rob.get_mut((seq - self.head_seq) as usize)
    }

    /// A dependency is satisfied when its producer has left the window
    /// or has completed execution.
    #[inline]
    fn dep_ready(&self, seq: u64) -> bool {
        match self.entry(seq) {
            None => true,
            Some(e) => {
                e.state == State::Done || (e.state == State::Executing && e.done_at <= self.cycle)
            }
        }
    }

    fn expire_resolutions(&mut self) {
        let now = self.cycle;
        let before = self.branch_resolutions.len();
        self.branch_resolutions.retain(|&t| t > now);
        self.pending_branches -= (before - self.branch_resolutions.len()) as u32;
        self.mshr.retain(|&t| t > now);
    }

    fn retire(&mut self) -> u32 {
        let mut n = 0;
        while n < self.cfg.cpu.retire_width {
            let Some(head) = self.rob.front() else { break };
            let complete = match head.state {
                State::Done => true,
                State::Executing => head.done_at <= self.cycle,
                State::Waiting => false,
            };
            if !complete {
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            if entry.inst.op.is_store() {
                let popped = self.store_queue.pop_front();
                debug_assert_eq!(popped.map(|(s, _)| s), Some(self.head_seq));
            }
            self.head_seq += 1;
            if entry.inst.dst.is_some() {
                let file = file_index(entry.inst.dst.file());
                self.free_regs[file] += 1;
            }
            self.retired += 1;
            n += 1;
        }
        n
    }

    fn issue(&mut self) {
        for &class in &UnitClass::ALL {
            let units = self.cfg.cpu.units[class.index()];
            let mut issued = 0;
            let mut examined = 0;
            let mut qi = 0;
            // Limited-window oldest-first select, like real issue logic.
            while issued < units && qi < self.queues[class.index()].len() && examined < 24 {
                examined += 1;
                let seq = self.queues[class.index()][qi];
                if !self.try_issue(seq) {
                    qi += 1;
                    continue;
                }
                self.queues[class.index()].remove(qi);
                issued += 1;
            }
        }
    }

    /// Attempts to issue the instruction `seq`; returns `true` on
    /// success.
    fn try_issue(&mut self, seq: u64) -> bool {
        let now = self.cycle;
        let Some(e) = self.entry(seq) else {
            return false;
        };
        if e.state != State::Waiting || e.dispatch_cycle >= now {
            return false;
        }
        for k in 0..e.ndeps as usize {
            if !self.dep_ready(e.deps[k]) {
                return false;
            }
        }
        let inst = e.inst;
        let class = e.queue;
        let base_lat = self.cfg.cpu.unit_latency[class.index()];

        let (done_at, served, tlb_miss, mshr_used) = if inst.op.is_mem() {
            // Memory operation: consult the hierarchy.
            let addr = inst.ea as u64;
            let will_hit = self.hierarchy_probe(addr);
            if !will_hit
                && inst.op.is_load()
                && self.mshr.len() >= self.cfg.cpu.max_outstanding_misses as usize
            {
                // No MSHR for a new miss: mark and retry later.
                if let Some(em) = self.entry_mut(seq) {
                    em.mshr_blocked = true;
                }
                return false;
            }
            let access = self.hierarchy.data_access(addr);
            let mut lat = access.latency;
            if inst.width() > 16 {
                lat += self.cfg.cpu.wide_load_extra_latency;
            }
            if inst.op.is_store() {
                // Stores drain through the store queue off the critical
                // path; completion is immediate for dependents.
                (
                    now + base_lat as u64,
                    Some(access.served_by),
                    access.tlb_miss,
                    false,
                )
            } else {
                (
                    now + lat.max(base_lat) as u64,
                    Some(access.served_by),
                    access.tlb_miss,
                    access.served_by != ServedBy::L1,
                )
            }
        } else {
            (now + base_lat as u64, None, false, false)
        };

        if mshr_used {
            self.mshr.push(done_at);
        }

        self.unit_issued[class.index()] += 1;
        let is_cond = {
            let e = self.entry_mut(seq).expect("entry exists");
            e.state = State::Executing;
            e.done_at = done_at;
            e.served = served;
            e.tlb_miss = tlb_miss;
            e.mshr_blocked = false;
            e.is_cond_branch
        };

        if is_cond {
            self.branch_resolutions.push(done_at);
            // A mispredicted branch schedules the fetch restart.
            let mispredicted = self.entry(seq).map(|e| e.mispredicted).unwrap_or(false);
            if mispredicted && self.mispredict_blocker == Some(seq) {
                self.mispredict_blocker = None;
                self.fetch_stall_until = done_at + self.cfg.branch.mispredict_recovery as u64;
                self.fetch_stall_reason = Trauma::IfPred;
            }
        }
        true
    }

    fn hierarchy_probe(&self, _addr: u64) -> bool {
        // The MSHR limit only matters for DL1 misses; infinite caches
        // always hit. A precise probe would need &self access to the
        // DL1 — exposed via MemoryHierarchy::probe_dl1.
        self.hierarchy.probe_dl1(_addr)
    }

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.cpu.dispatch_width {
            let Some(&(inst, fetch_cycle)) = self.ibuffer.front() else {
                break;
            };
            // Frontend pipeline depth: decode/rename take a few cycles.
            if fetch_cycle + self.cfg.cpu.frontend_depth as u64 > self.cycle {
                self.dispatch_stall = Some(Trauma::Decode);
                break;
            }
            if self.rob.len() >= self.cfg.cpu.retire_queue as usize {
                self.dispatch_stall = Some(Trauma::MmRoqf);
                break;
            }
            let class = unit_for(inst.op);
            if self.queues[class.index()].len() >= self.cfg.cpu.issue_queue[class.index()] as usize
            {
                self.dispatch_stall = Some(diq_trauma(class));
                break;
            }
            if inst.dst.is_some() {
                let file = file_index(inst.dst.file());
                if self.free_regs[file] == 0 {
                    self.dispatch_stall = Some(Trauma::Rename);
                    break;
                }
                self.free_regs[file] -= 1;
            }

            // Record dependencies on in-flight producers.
            let mut deps = [0u64; 4];
            let mut ndeps = 0u8;
            for src in inst.sources() {
                let w = self.reg_writer[src.id() as usize];
                if w != NO_WRITER && w >= self.head_seq {
                    deps[ndeps as usize] = w;
                    ndeps += 1;
                }
            }
            let seq = self.head_seq + self.rob.len() as u64;
            // Memory disambiguation: a load after an in-flight store to
            // the same 16-byte granule waits for that store (store-queue
            // forwarding, no speculative bypass).
            if inst.op.is_load() {
                let granule = inst.ea >> 4;
                if let Some(&(sseq, _)) =
                    self.store_queue.iter().rev().find(|&&(_, g)| g == granule)
                {
                    deps[ndeps as usize] = sseq;
                    ndeps += 1;
                    self.store_forwards += 1;
                }
            } else if inst.op.is_store() {
                self.store_queue.push_back((seq, inst.ea >> 4));
            }
            if inst.dst.is_some() {
                self.reg_writer[inst.dst.id() as usize] = seq;
            }

            let is_cond = inst.is_cond_branch();
            let mispredicted = is_cond && {
                // Prediction already happened at fetch; the outcome was
                // recorded in the ibuffer companion entry via the
                // blocker mechanism. Recompute from the blocker seq.
                self.mispredict_blocker == Some(seq)
            };

            self.rob.push_back(RobEntry {
                inst,
                state: State::Waiting,
                queue: class,
                done_at: 0,
                dispatch_cycle: self.cycle,
                deps,
                ndeps,
                served: None,
                tlb_miss: false,
                mispredicted,
                is_cond_branch: is_cond,
                mshr_blocked: false,
            });
            self.queues[class.index()].push_back(seq);
            self.ibuffer.pop_front();
            n += 1;
        }
    }

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        // While a mispredicted branch is unresolved, the frontend only
        // holds correct-path instructions that were already buffered;
        // no new fetch happens.
        if self.mispredict_blocker.is_some() {
            return;
        }
        // The last disruption reason stays sticky so that refill
        // (decode-depth) cycles after a redirect are charged to the
        // redirect's cause, as the paper's accounting does.

        let line_mask = !(self.cfg.mem.il1.line as u64 - 1);
        let mut n = 0;
        while n < self.cfg.cpu.fetch_width {
            if self.next_fetch >= self.n_insts {
                break;
            }
            if self.ibuffer.len() >= self.cfg.cpu.ibuffer as usize
                || self.rob.len() + self.ibuffer.len() >= self.cfg.cpu.inflight as usize
            {
                // Instruction buffer full, or the machine-wide in-flight
                // limit reached: fetch must wait for retirement.
                self.fetch_stall_reason = Trauma::IfFull;
                break;
            }
            if self.pending_branches >= self.cfg.branch.max_pred_branches {
                self.fetch_stall_reason = Trauma::IfBrch;
                break;
            }
            // A stalled fetch re-reads the same index next cycle; that
            // repeat stays inside the decoded block buffer.
            let inst = self.inst_at(self.next_fetch);

            // I-cache: accessing a new line may miss.
            let line = inst.pc as u64 & line_mask;
            if line != self.cur_fetch_line {
                let access = self.hierarchy.inst_access(line);
                self.cur_fetch_line = line;
                if access.served_by != ServedBy::L1 || access.tlb_miss {
                    self.fetch_stall_until = self.cycle + access.latency as u64;
                    self.fetch_stall_reason = if access.tlb_miss && access.served_by == ServedBy::L1
                    {
                        Trauma::IfTlb1
                    } else {
                        match access.served_by {
                            ServedBy::L2 => Trauma::IfL1,
                            _ => Trauma::IfL2,
                        }
                    };
                    break;
                }
            }

            let seq_if_dispatched = self.head_seq + (self.rob.len() + self.ibuffer.len()) as u64;
            self.ibuffer.push_back((inst, self.cycle));
            self.next_fetch += 1;
            n += 1;

            if inst.op.is_branch() {
                if inst.is_cond_branch() {
                    self.pending_branches += 1;
                    let correct = self.predictor.predict_and_update(inst.pc, inst.taken());
                    if !correct {
                        // Fetch stops until this branch resolves.
                        self.mispredict_blocker = Some(seq_if_dispatched);
                        break;
                    }
                }
                if inst.taken() {
                    // Redirect through the NFA/BTB.
                    if !self.nfa.lookup_insert(inst.pc) {
                        self.fetch_stall_until =
                            self.cycle + self.cfg.branch.nfa_miss_penalty as u64;
                        self.fetch_stall_reason = Trauma::IfNfa;
                    }
                    break; // taken branches end the fetch group
                }
            }
        }
    }

    fn record_occupancy(&mut self) {
        for &class in &UnitClass::ALL {
            let len = self.queues[class.index()].len();
            self.queue_occ[class.index()].record(len);
        }
        self.inflight_occ
            .record(self.rob.len() + self.ibuffer.len());
        self.retireq_occ.record(self.rob.len());
    }

    /// Stall-reason attribution for a zero-retire cycle.
    fn blame(&self) -> Trauma {
        if let Some(head) = self.rob.front() {
            match head.state {
                State::Executing | State::Done => {
                    // Multi-cycle execution at the head: charge the
                    // resource it occupies.
                    if head.tlb_miss && head.served == Some(ServedBy::L1) {
                        // The page walk, not the cache, is the delay.
                        Trauma::MmTlb1
                    } else {
                        match head.served {
                            Some(ServedBy::L2) => Trauma::MmDl1,
                            Some(ServedBy::Memory) => Trauma::MmDl2,
                            _ => rg_trauma_for(head.inst.op, head.served),
                        }
                    }
                }
                State::Waiting => {
                    if head.mshr_blocked {
                        return Trauma::MmDmqf;
                    }
                    // First unready dependency decides the blame.
                    for k in 0..head.ndeps as usize {
                        let dep = head.deps[k];
                        if !self.dep_ready(dep) {
                            if let Some(p) = self.entry(dep) {
                                return rg_trauma_for(p.inst.op, p.served);
                            }
                        }
                    }
                    // Ready but not issued: all units busy.
                    ful_trauma(head.queue)
                }
            }
        } else if self.mispredict_blocker.is_some() || self.fetch_stall_reason == Trauma::IfPred {
            Trauma::IfPred
        } else if self.cycle < self.fetch_stall_until {
            self.fetch_stall_reason
        } else if self.dispatch_stall == Some(Trauma::Decode)
            && matches!(
                self.fetch_stall_reason,
                Trauma::IfPred | Trauma::IfNfa | Trauma::IfL1 | Trauma::IfL2
            )
        {
            // Pipeline-refill cycles after a frontend disruption belong
            // to the disruption, not to "decode".
            self.fetch_stall_reason
        } else if let Some(t) = self.dispatch_stall {
            t
        } else if self.next_fetch >= self.n_insts {
            Trauma::Other
        } else {
            Trauma::Decode
        }
    }
}

#[inline]
fn file_index(file: RegFile) -> usize {
    match file {
        RegFile::Gpr => 0,
        RegFile::Fpr => 1,
        RegFile::Vr => 2,
    }
}

/// Register-dependency trauma for a producer of class `op`.
fn rg_trauma_for(op: OpClass, served: Option<ServedBy>) -> Trauma {
    match op {
        OpClass::IAlu | OpClass::Other => Trauma::RgFix,
        OpClass::ILoad | OpClass::VLoad => match served {
            Some(ServedBy::L2) => Trauma::MmDl1,
            Some(ServedBy::Memory) => Trauma::MmDl2,
            _ => Trauma::RgMem,
        },
        OpClass::IStore | OpClass::VStore => Trauma::StData,
        OpClass::Branch => Trauma::RgBr,
        OpClass::Fpu => Trauma::RgFpu,
        OpClass::VSimple => Trauma::RgVi,
        OpClass::VPerm => Trauma::RgVper,
        OpClass::VCmplx => Trauma::RgVcmplx,
        OpClass::VFpu => Trauma::RgVfpu,
    }
}

fn ful_trauma(class: UnitClass) -> Trauma {
    match class {
        UnitClass::Mem => Trauma::FulMem,
        UnitClass::Fix => Trauma::FulFix,
        UnitClass::Fpu => Trauma::FulFpu,
        UnitClass::Br => Trauma::FulBr,
        UnitClass::Vi => Trauma::FulVi,
        UnitClass::Vper => Trauma::FulVper,
        UnitClass::Vcmplx => Trauma::FulVcmplx,
        UnitClass::Vfpu => Trauma::FulVfpu,
    }
}

fn diq_trauma(class: UnitClass) -> Trauma {
    match class {
        UnitClass::Mem => Trauma::DiqMem,
        UnitClass::Fix => Trauma::DiqFix,
        UnitClass::Fpu => Trauma::DiqFpu,
        UnitClass::Br => Trauma::DiqBr,
        UnitClass::Vi => Trauma::DiqVi,
        UnitClass::Vper => Trauma::DiqVper,
        UnitClass::Vcmplx => Trauma::DiqVcmplx,
        UnitClass::Vfpu => Trauma::DiqVfpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    fn run(cfg: SimConfig, build: impl FnOnce(&mut Tracer)) -> SimReport {
        let mut t = Tracer::new();
        build(&mut t);
        Simulator::new(cfg).run(&t.finish())
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let r = run(SimConfig::four_way(), |_| {});
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..20_000u32 {
                // Rotate destination registers so ops are independent.
                t.ialu(i % 8, reg::gpr((i % 16) as u8), &[]);
            }
        });
        assert_eq!(r.instructions, 20_000);
        // 3 FX units on the 4-way core bound throughput at 3/cycle.
        assert!(r.ipc() > 2.5, "ipc {}", r.ipc());
        assert!(r.ipc() <= 3.1, "ipc {}", r.ipc());
    }

    #[test]
    fn serial_chain_is_one_per_cycle_at_best() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..5_000u32 {
                t.ialu(i % 8, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        assert!(r.ipc() <= 1.01, "ipc {}", r.ipc());
    }

    #[test]
    fn slow_integer_chain_blames_rg_fix() {
        // With 3-cycle FX latency a serial chain leaves two zero-retire
        // cycles per instruction, all charged to the integer dependency.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.unit_latency[UnitClass::Fix.index()] = 3;
        let r = run(cfg, |t| {
            for i in 0..5_000u32 {
                t.ialu(i % 8, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        assert!(r.ipc() < 0.45, "ipc {}", r.ipc());
        let top = r.traumas.top(1);
        assert_eq!(top[0].0, Trauma::RgFix);
    }

    #[test]
    fn vector_chain_blames_vi() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..5_000u32 {
                t.vsimple(i % 4, reg::vr(1), &[reg::vr(1)]);
            }
        });
        let top = r.traumas.top(1);
        assert_eq!(top[0].0, Trauma::RgVi);
        // 2-cycle VI latency on a serial chain: IPC ≈ 0.5.
        assert!(r.ipc() < 0.6, "ipc {}", r.ipc());
    }

    #[test]
    fn cold_misses_show_up_in_dl1_stats() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..1_000u32 {
                // Stride of a line: every access is a cold miss.
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                t.ialu(1, reg::gpr(2), &[reg::gpr(1)]);
            }
        });
        assert!(r.dl1.misses >= 999, "misses {}", r.dl1.misses);
        // Cold misses go all the way to memory; blame lands on the
        // memory-subsystem traumas.
        assert!(r.traumas.get(Trauma::MmDl1) + r.traumas.get(Trauma::MmDl2) > 0);
    }

    #[test]
    fn mispredicted_branches_charge_if_pred() {
        let r = run(SimConfig::four_way(), |t| {
            let mut x = 0x9E3779B9u32;
            for i in 0..4_000u32 {
                t.ialu(0, reg::gpr(1), &[]);
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                t.branch(1 + (i % 3), (x >> 17) & 1 == 1, 0, &[reg::gpr(1)]);
            }
        });
        assert!(r.bp_predictions >= 4_000);
        assert!(r.bp_accuracy() < 0.75, "accuracy {}", r.bp_accuracy());
        assert!(
            r.traumas.get(Trauma::IfPred) > r.cycles / 10,
            "if_pred {} of {}",
            r.traumas.get(Trauma::IfPred),
            r.cycles
        );
    }

    #[test]
    fn perfect_bp_removes_if_pred() {
        let mut cfg = SimConfig::four_way();
        cfg.branch = crate::config::BranchConfig::perfect();
        let r = run(cfg, |t| {
            let mut x = 1u32;
            for i in 0..2_000u32 {
                x = x.wrapping_mul(48271);
                t.ialu(0, reg::gpr(1), &[]);
                t.branch(1 + (i % 3), x & 1 == 1, 0, &[reg::gpr(1)]);
            }
        });
        assert_eq!(r.bp_mispredictions, 0);
        assert_eq!(r.traumas.get(Trauma::IfPred), 0);
    }

    #[test]
    fn wider_core_helps_parallel_code() {
        let build = |t: &mut Tracer| {
            for i in 0..10_000u32 {
                t.ialu(i % 8, reg::gpr((i % 24) as u8), &[]);
            }
        };
        let r4 = run(SimConfig::four_way(), build);
        let r16 = run(SimConfig::sixteen_way(), build);
        assert!(
            r16.cycles < r4.cycles,
            "16-way {} !< 4-way {}",
            r16.cycles,
            r4.cycles
        );
    }

    #[test]
    fn memory_latency_dominates_pointer_chase() {
        // A dependent-load chain touching a new line each time on a
        // 300-cycle-memory hierarchy: IPC must collapse.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..500u32 {
                t.iload(
                    0,
                    reg::gpr(1),
                    0x3000_0000 + (i * 40_037) % 0x0400_0000,
                    4,
                    &[reg::gpr(1)],
                );
            }
        });
        assert!(r.ipc() < 0.05, "ipc {}", r.ipc());
        assert!(r.traumas.get(Trauma::MmDl2) > 0);
    }

    #[test]
    fn determinism() {
        let build = |t: &mut Tracer| {
            let mut x = 7u32;
            for _ in 0..3_000u32 {
                x = x.wrapping_mul(48271).wrapping_add(11);
                t.iload(0, reg::gpr(1), 0x2000_0000 + (x % 65536), 4, &[]);
                t.ialu(1, reg::gpr(2), &[reg::gpr(1), reg::gpr(2)]);
                t.branch(2, x & 3 == 0, 0, &[reg::gpr(2)]);
            }
        };
        let a = run(SimConfig::four_way(), build);
        let b = run(SimConfig::four_way(), build);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn every_retired_instruction_issued_on_exactly_one_unit() {
        let r = run(SimConfig::four_way(), |t| {
            let mut x = 7u32;
            for i in 0..3_000u32 {
                x = x.wrapping_mul(48271).wrapping_add(11);
                t.iload(0, reg::gpr(1), 0x2000_0000 + (x % 65536), 4, &[]);
                t.vsimple(1, reg::vr(1), &[reg::vr(1)]);
                t.fpu(2, reg::fpr(1), &[reg::fpr(1)]);
                t.branch(3 + (i % 3), x & 3 == 0, 0, &[reg::gpr(1)]);
            }
        });
        assert_eq!(r.unit_issued.iter().sum::<u64>(), r.instructions);
        // Slots bound issues: no class can be more than 100% busy.
        for &class in &UnitClass::ALL {
            assert!(
                r.unit_issued[class.index()] <= r.unit_slots[class.index()],
                "{class:?} issued more than its slots"
            );
        }
        // The mix above touches mem, vi, fpu and br every iteration.
        for class in [UnitClass::Mem, UnitClass::Vi, UnitClass::Fpu, UnitClass::Br] {
            assert!(r.eu_utilisation(class) > 0.0, "{class:?} never issued");
        }
        assert!(r.issue_slot_utilisation() > 0.0);
        assert!(r.busiest_eu().is_some());
    }

    #[test]
    fn block_boundaries_are_invisible_to_replay() {
        // A trace much longer than BLOCK_LEN with fetch stalls landing
        // on arbitrary offsets: packed block decode, AoS block copy and
        // a shared reusable buffer must all agree bit-for-bit.
        let mut t = Tracer::new();
        let mut x = 1u32;
        for i in 0..(3 * sapa_isa::BLOCK_LEN as u32 + 17) {
            x = x.wrapping_mul(48271).wrapping_add(7);
            t.iload(i % 200, reg::gpr(1), 0x2000_0000 + (x % 32768), 4, &[]);
            t.branch(200 + (i % 5), x & 1 == 0, 0, &[reg::gpr(1)]);
        }
        let trace = t.finish();
        let packed = sapa_isa::PackedTrace::from_trace(&trace);
        let sim = Simulator::new(SimConfig::four_way());
        let aos = sim.run(&trace);
        let mut buf = DecodeBuf::new();
        assert_eq!(aos, sim.run_packed_with(&packed, &mut buf));
        // Same buffer reused for a second replay: no state leaks.
        assert_eq!(aos, sim.run_packed_with(&packed, &mut buf));
        assert_eq!(aos, sim.run_with(&trace, &mut buf));
    }

    #[test]
    fn occupancy_histograms_cover_all_cycles() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..1_000u32 {
                t.ialu(i % 4, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        let total: u64 = r.inflight_occupancy.as_slice().iter().sum();
        assert_eq!(total, r.cycles);
        let fixq: u64 = r.queue(UnitClass::Fix).as_slice().iter().sum();
        assert_eq!(fixq, r.cycles);
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use crate::config::UnitClass;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    fn run(cfg: SimConfig, build: impl FnOnce(&mut Tracer)) -> SimReport {
        let mut t = Tracer::new();
        build(&mut t);
        Simulator::new(cfg).run(&t.finish())
    }

    #[test]
    fn mshr_limit_throttles_independent_misses() {
        // Independent cold-missing loads: more MSHRs = more overlap.
        let build = |t: &mut Tracer| {
            for i in 0..2_000u32 {
                t.iload(
                    i % 4,
                    reg::gpr((i % 8) as u8),
                    0x2000_0000 + i * 128,
                    4,
                    &[],
                );
            }
        };
        let mut few = SimConfig::four_way();
        few.cpu.max_outstanding_misses = 1;
        let mut many = SimConfig::four_way();
        many.cpu.max_outstanding_misses = 16;
        let r_few = run(few, build);
        let r_many = run(many, build);
        assert!(
            (r_many.cycles as f64) * 1.5 < r_few.cycles as f64,
            "16 MSHRs {} vs 1 MSHR {}",
            r_many.cycles,
            r_few.cycles
        );
    }

    #[test]
    fn rename_stall_with_tiny_register_file() {
        // Barely more physical than architectural registers: long
        // dependence-free bursts stall on renaming.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.gpr = 34; // 2 spare rename registers
        let build = |t: &mut Tracer| {
            // A load at the head keeps the window from draining while
            // younger ALU ops request new registers.
            for i in 0..500u32 {
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                for k in 0..6u32 {
                    t.ialu(1 + k, reg::gpr((2 + k % 6) as u8), &[]);
                }
            }
        };
        let r_tiny = run(cfg, build);
        let r_full = run(SimConfig::four_way(), build);
        // The rename bottleneck slows the whole run: fewer ALU ops can
        // slip past the in-flight loads.
        assert!(
            r_tiny.cycles > r_full.cycles * 11 / 10,
            "tiny {} vs full {}",
            r_tiny.cycles,
            r_full.cycles
        );
    }

    #[test]
    fn issue_queue_full_charges_diq() {
        // One VI unit, tiny VI queue, long independent VI burst: the
        // queue fills and dispatch blocks.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.issue_queue[UnitClass::Vi.index()] = 2;
        let r = run(cfg, |t| {
            t.iload(0, reg::gpr(1), 0x2000_0000, 4, &[]);
            for i in 0..2_000u32 {
                // All depend on the initial slow load, so they pile up
                // in the VI queue.
                t.vsimple(1 + (i % 4), reg::vr((i % 16) as u8), &[reg::gpr(1)]);
            }
        });
        // The 2-entry queue runs pinned at capacity while the load is
        // outstanding and the VI unit drains it afterwards.
        let hist = r.queue(UnitClass::Vi);
        assert!(
            hist.cycles_at(2) > r.cycles / 4,
            "queue never filled: {:?} of {}",
            hist.as_slice(),
            r.cycles
        );
    }

    #[test]
    fn retire_queue_full_charges_roqf() {
        let mut cfg = SimConfig::four_way();
        cfg.cpu.retire_queue = 8;
        cfg.cpu.inflight = 16;
        let build = |t: &mut Tracer| {
            // Slow head (memory) + many fast followers.
            for i in 0..300u32 {
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                for k in 0..12u32 {
                    t.ialu(1 + k, reg::gpr(2), &[]);
                }
            }
        };
        let r_small = run(cfg, build);
        let r_big = run(SimConfig::four_way(), build);
        // A tiny window cannot overlap the independent misses: memory-
        // level parallelism collapses and the run slows dramatically.
        assert!(
            r_small.cycles > r_big.cycles * 2,
            "small window {} vs big {}",
            r_small.cycles,
            r_big.cycles
        );
        // The window sits pinned at its 8-entry capacity.
        assert!(r_small.retireq_occupancy.cycles_at(8) > r_small.cycles / 2);
    }

    #[test]
    fn store_forward_counts_are_reported() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..100u32 {
                let a = 0x2000_0000 + (i % 4) * 16;
                t.istore(0, a, 4, &[reg::gpr(1)]);
                t.iload(1, reg::gpr(2), a, 4, &[]);
                t.ialu(2, reg::gpr(1), &[reg::gpr(2)]);
            }
        });
        assert!(r.store_forwards > 50, "forwards {}", r.store_forwards);
    }

    #[test]
    fn nfa_misses_charge_if_nfa_on_first_encounters() {
        // Many distinct taken-branch sites: each first encounter is an
        // NFA miss with a redirect bubble.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..2_000u32 {
                t.ialu(4 * i, reg::gpr(1), &[]);
                t.jump(4 * i + 1, 4 * i + 2);
            }
        });
        assert!(r.traumas.get(Trauma::IfNfa) > 0, "no if_nfa recorded");
    }

    #[test]
    fn icache_misses_charge_if_l_traumas() {
        // Walk a huge code footprint: every line crossing misses.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..30_000u32 {
                t.ialu(i, reg::gpr(1), &[]);
            }
        });
        assert!(r.il1.misses > 100, "il1 misses {}", r.il1.misses);
        let if_cycles = r.traumas.get(Trauma::IfL1) + r.traumas.get(Trauma::IfL2);
        assert!(if_cycles > 0, "no fetch-miss stall cycles");
    }
}
