//! SSW-style three-pass traceback for the striped kernel.
//!
//! The striped scan is score-only by design — per-cell traceback state
//! would destroy the memory profile that makes it fast. Following the
//! SSW library (Zhao et al., arXiv:1208.6350), full alignments for the
//! few *reported* hits are reconstructed afterwards in three bounded
//! passes:
//!
//! 1. **End pass** — [`crate::striped::score_ends_with_profile`] rescans
//!    the subject tracking the minimal end cell (first column attaining
//!    the best score, smallest query index within it).
//! 2. **Start pass** — the same kernel over the *reversed* prefixes
//!    `query[..=qe]` / `subject[..=se]`; with the same minimal-endpoint
//!    rule its end cell is exactly the forward alignment's start.
//! 3. **CIGAR pass** — [`crate::banded::global_align`] over the pinned
//!    window, doubling the band width until the banded score matches
//!    the reported score (it is a lower bound that reaches equality
//!    once the band covers the optimal path).
//!
//! The result replays to exactly the reported score —
//! [`Alignment::replay_score`] is the property-test contract. Word-lane
//! saturation (scores within one matrix-maximum of `i16::MAX`) and any
//! defensive mismatch fall back to the full-matrix scalar
//! [`crate::sw::align`], so the contract holds unconditionally.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::QueryProfile;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::result::{Alignment, Cigar};
use crate::striped::{score_ends_with_profile, Workspace};
use crate::{banded, sw};

/// Initial half-width for the banded CIGAR pass; doubled until the
/// banded score reaches the reported score.
const INITIAL_BAND: usize = 8;

/// Reconstructs the full alignment behind one reported hit.
///
/// `expected` is the hit's exact Smith-Waterman score (from any exact
/// engine, including the adaptive byte/word striped path); `profile`
/// must be the forward query profile the scan used, and `ws` is
/// reusable scratch. Returns `None` when `expected <= 0` (no
/// positive-scoring alignment exists).
///
/// The returned alignment always replays to `expected` via
/// [`Alignment::replay_score`].
pub fn align_hit<const L: usize>(
    query: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    profile: &QueryProfile,
    subject: &[AminoAcid],
    expected: i32,
    ws: &mut Workspace<L>,
) -> Option<Alignment> {
    if expected <= 0 {
        return None;
    }
    // Word-lane headroom guard: near i16::MAX the striped H values can
    // saturate mid-column, so the end cell would be unreliable. Such
    // scores are vanishingly rare in protein search — take the scalar
    // full-matrix path.
    if expected >= i32::from(i16::MAX) - profile.max_score() {
        return full_matrix_fallback(query, subject, matrix, gaps, expected);
    }

    // Pass 1: forward ends.
    let fwd = score_ends_with_profile::<L>(profile, subject, gaps, ws);
    if fwd.score != expected {
        return full_matrix_fallback(query, subject, matrix, gaps, expected);
    }
    let (qe, se) = (fwd.query_end, fwd.subject_end);

    // Pass 2: the same minimal-endpoint kernel on the reversed
    // prefixes pins the start.
    let rev_q: Vec<AminoAcid> = query[..=qe].iter().rev().copied().collect();
    let rev_s: Vec<AminoAcid> = subject[..=se].iter().rev().copied().collect();
    let rev_profile = QueryProfile::build(&rev_q, matrix, L);
    let rev = score_ends_with_profile::<L>(&rev_profile, &rev_s, gaps, ws);
    if rev.score != expected {
        return full_matrix_fallback(query, subject, matrix, gaps, expected);
    }
    let qs = qe - rev.query_end;
    let ss = se - rev.subject_end;

    // Pass 3: banded global alignment over the window; the optimal
    // local path runs corner to corner in it, so the banded score
    // reaches `expected` once the band is wide enough.
    let wq = &query[qs..=qe];
    let wsub = &subject[ss..=se];
    let mut width = INITIAL_BAND;
    loop {
        let (score, ops) = banded::global_align(wq, wsub, matrix, gaps, width);
        if score == expected {
            return Some(Alignment {
                query_start: qs,
                query_end: qe + 1,
                subject_start: ss,
                subject_end: se + 1,
                cigar: Cigar::from_ops(&ops),
            });
        }
        if width >= wq.len().max(wsub.len()) {
            // Even the full band disagrees — should be unreachable for
            // exact scores; recover via the scalar path.
            return full_matrix_fallback(query, subject, matrix, gaps, expected);
        }
        width *= 2;
    }
}

/// Scalar full-matrix fallback: exact but `O(m · n)` memory. Returns
/// `None` if even the scalar aligner disagrees with `expected` (i.e.
/// `expected` was not this pair's Smith-Waterman score).
fn full_matrix_fallback(
    query: &[AminoAcid],
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    expected: i32,
) -> Option<Alignment> {
    let al = sw::align(query, subject, matrix, gaps);
    if al.score != expected {
        return None;
    }
    Some(Alignment {
        query_start: al.a_start,
        query_end: al.a_end,
        subject_start: al.b_start,
        subject_end: al.b_end,
        cigar: Cigar::from_ops(&al.ops),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    fn check_pair(q: &str, s: &str, gaps: GapPenalties) {
        let m = bl62();
        let query = seq(q);
        let subject = seq(s);
        let expected = sw::score(&query, &subject, &m, gaps);
        let profile = QueryProfile::build(&query, &m, 8);
        let mut ws = Workspace::<8>::new();
        let al = align_hit::<8>(&query, &m, gaps, &profile, &subject, expected, &mut ws);
        if expected <= 0 {
            assert!(al.is_none(), "{q} vs {s}");
            return;
        }
        let al = al.unwrap_or_else(|| panic!("no alignment for {q} vs {s}"));
        assert_eq!(
            al.replay_score(&query, &subject, &m, gaps),
            Some(expected),
            "{q} vs {s}: {al:?}"
        );
        assert!(al.query_end <= query.len() && al.subject_end <= subject.len());
        assert!(al.query_start < al.query_end && al.subject_start < al.subject_end);
    }

    #[test]
    fn small_alignments_replay_to_score() {
        let g = GapPenalties::paper();
        check_pair("HEAGAWGHEE", "PAWHEAE", g);
        check_pair("MKVLAA", "MKVLAA", g);
        check_pair("ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA", g);
        check_pair("MKWVTFISLLFLFSSAYS", "MKWVTFISLL", g);
        check_pair("WW", "WWWWWWWWWWWWWWWWWWWWWWWW", g);
        check_pair("AAAA", "WWWW", g); // no positive score
    }

    #[test]
    fn gapped_alignments_replay_under_cheap_gaps() {
        // Cheap gaps force real insertions/deletions in the CIGAR and
        // cross-lane lazy-F corrections in the scan passes.
        let g = GapPenalties::new(2, 1);
        check_pair(
            "ACDEFGHIKLMNPQRSTVWYACDEFGHIKL",
            "ACDEFGPQRSTVWYACDEFGHIKL",
            g,
        );
        check_pair("MKWVTFISLLGGGGGFLFSSAYS", "MKWVTFISLLFLFSSAYS", g);
    }

    #[test]
    fn embedded_match_gets_tight_window() {
        let m = bl62();
        let g = GapPenalties::paper();
        let query = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let subject = seq("GGGGGMKWVTFISLLFLFSSAYSRGVFRRGGGGG");
        let expected = sw::score(&query, &subject, &m, g);
        let profile = QueryProfile::build(&query, &m, 8);
        let mut ws = Workspace::<8>::new();
        let al = align_hit::<8>(&query, &m, g, &profile, &subject, expected, &mut ws).unwrap();
        assert_eq!(al.query_start, 0);
        assert_eq!(al.query_end, query.len());
        assert_eq!(al.subject_start, 5);
        assert_eq!(al.subject_end, 5 + query.len());
        assert_eq!(al.cigar.to_string(), format!("{}M", query.len()));
    }

    #[test]
    fn wrong_expected_score_returns_none() {
        let m = bl62();
        let g = GapPenalties::paper();
        let query = seq("HEAGAWGHEE");
        let subject = seq("PAWHEAE");
        let profile = QueryProfile::build(&query, &m, 8);
        let mut ws = Workspace::<8>::new();
        // 10_000 is not this pair's score at any precision.
        assert!(align_hit::<8>(&query, &m, g, &profile, &subject, 10_000, &mut ws).is_none());
        assert!(align_hit::<8>(&query, &m, g, &profile, &subject, 0, &mut ws).is_none());
        assert!(align_hit::<8>(&query, &m, g, &profile, &subject, -5, &mut ws).is_none());
    }

    #[test]
    fn near_saturation_scores_take_scalar_fallback() {
        // A uniform high-score matrix drives the score close to
        // i16::MAX, exercising the headroom guard.
        let m = SubstitutionMatrix::uniform(120, -120);
        let g = GapPenalties::paper();
        let query = seq(&"ACDEFGHIKL".repeat(28)); // 280 aa · 120 = 33600 > i16::MAX
        let expected = sw::score(&query, &query, &m, g);
        assert!(expected >= i32::from(i16::MAX) - 120);
        let profile = QueryProfile::build(&query, &m, 8);
        let mut ws = Workspace::<8>::new();
        let al = align_hit::<8>(&query, &m, g, &profile, &query, expected, &mut ws).unwrap();
        assert_eq!(al.replay_score(&query, &query, &m, g), Some(expected));
        assert_eq!(al.cigar.to_string(), format!("{}M", query.len()));
    }
}
