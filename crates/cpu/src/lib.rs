//! Turandot-like cycle-accurate out-of-order superscalar simulator.
//!
//! This crate is our from-scratch reimplementation of the simulation
//! infrastructure the paper uses: IBM's Turandot, a trace-driven,
//! fully parameterizable out-of-order PowerPC model, extended by the
//! authors with Altivec (and 256-bit Altivec) support, plus the
//! trauma-based stall accounting of Moreno et al. that produces the
//! paper's Figure 2.
//!
//! The model covers everything the paper's experiments vary:
//!
//! * pipeline widths (fetch/rename/dispatch/retire), in-flight and
//!   retire-queue limits, physical register files — Table IV presets
//!   [`config::CpuConfig::four_way`], [`config::CpuConfig::eight_way`],
//!   [`config::CpuConfig::sixteen_way`];
//! * per-class functional units and issue queues (LD/ST, FX, FP, BR,
//!   VI, VPER, VCMPLX, VFP);
//! * the memory hierarchy (IL1/DL1/shared L2/main memory, MSHRs) —
//!   Table V presets in [`config::MemConfig`];
//! * branch prediction (bimodal, gshare, combined "GP", perfect; BTB/
//!   NFA with redirect bubbles; misprediction recovery) — Table VI
//!   preset in [`config::BranchConfig`];
//! * trauma accounting over the classes of Table VII / Figure 2.
//!
//! # Example
//!
//! ```
//! use sapa_cpu::config::SimConfig;
//! use sapa_cpu::Simulator;
//! use sapa_isa::trace::Tracer;
//! use sapa_isa::reg;
//!
//! let mut t = Tracer::new();
//! for i in 0..100 {
//!     t.ialu(i % 7, reg::gpr(1), &[reg::gpr(1)]);
//! }
//! let trace = t.finish();
//! let report = Simulator::new(SimConfig::four_way()).run(&trace);
//! assert_eq!(report.instructions, 100);
//! assert!(report.cycles >= 100); // serial dependency chain
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod pipeline;
pub mod stats;
pub mod sweep;
pub mod trauma;

pub use config::SimConfig;
pub use pipeline::{DecodeBuf, Simulator};
pub use stats::SimReport;
pub use sweep::{run_jobs, run_jobs_isolated, JobFailure, SweepJob};
pub use trauma::Trauma;
