//! Extension experiment: the full Table II query sweep.
//!
//! The paper evaluates 11 queries but, for space, reports only
//! Glutathione S-transferase. This experiment runs the whole set and
//! shows how the characterization scales with query length: trace
//! sizes grow linearly for the Smith-Waterman codes and stay nearly
//! flat for the scan-dominated heuristics, while IPC and prediction
//! accuracy stay essentially constant — evidence that the paper's
//! single-query reporting loses nothing qualitative.

use crate::context::{Context, Scale};
use crate::format::{f2, heading, pct, Table};
use sapa_bioseq::db::DatabaseBuilder;
use sapa_bioseq::queries::QuerySet;
use sapa_cpu::{SimConfig, Simulator};
use sapa_workloads::registry::StandardInputs;
use sapa_workloads::Workload;

/// Renders the query sweep. Database scale follows the context scale.
pub fn run(ctx: &mut Context) -> String {
    let (db_size, sw_subset) = match ctx.scale() {
        Scale::Tiny => (8, 1),
        Scale::Small => (40, 1),
        Scale::Paper => (120, 2),
    };
    let queries = QuerySet::paper();

    let mut out = heading("Extension — all Table II queries (4-way, me1)");
    let mut t = Table::new(&["query", "len", "workload", "instructions", "IPC", "bp acc"]);
    for q in queries.queries() {
        let db = DatabaseBuilder::new()
            .seed(2006)
            .sequences(db_size)
            .homolog_template(q.clone())
            .build();
        let inputs = StandardInputs {
            query: q.clone(),
            db: db.sequences().to_vec(),
            sw_subset,
            ..StandardInputs::small()
        };
        for w in [Workload::Ssearch34, Workload::Blast] {
            let bundle = w.trace(&inputs);
            let r = Simulator::new(SimConfig::four_way()).run(&bundle.trace);
            t.row_owned(vec![
                q.id().to_string(),
                q.len().to_string(),
                w.label().to_string(),
                bundle.trace.len().to_string(),
                f2(r.ipc()),
                pct(r.bp_accuracy()),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_query() {
        let mut ctx = Context::new(Scale::Tiny);
        let out = run(&mut ctx);
        for q in QuerySet::paper().queries() {
            assert!(out.contains(q.id()), "{} missing", q.id());
        }
    }
}
