//! Owned protein sequences.

use crate::alphabet::AminoAcid;
use crate::{Error, Result};

/// An identified protein sequence.
///
/// ```
/// use sapa_bioseq::Sequence;
/// let s = Sequence::from_str("sp|TEST", "MKVLAA").unwrap();
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.to_string(), "MKVLAA");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sequence {
    id: String,
    description: String,
    residues: Vec<AminoAcid>,
}

impl Sequence {
    /// Creates a sequence from already-validated residues.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        residues: Vec<AminoAcid>,
    ) -> Self {
        Sequence {
            id: id.into(),
            description: description.into(),
            residues,
        }
    }

    /// Parses the residue string `text` (single-letter codes, whitespace
    /// not allowed).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidResidue`] at the first non-amino-acid byte.
    pub fn from_str(id: impl Into<String>, text: &str) -> Result<Self> {
        let mut residues = Vec::with_capacity(text.len());
        for (position, b) in text.bytes().enumerate() {
            match AminoAcid::from_byte(b) {
                Some(aa) => residues.push(aa),
                None => return Err(Error::InvalidResidue { byte: b, position }),
            }
        }
        Ok(Sequence::new(id, String::new(), residues))
    }

    /// Stable identifier (e.g. an accession).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Free-form description from the FASTA header.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The residues.
    pub fn residues(&self) -> &[AminoAcid] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residue indices (0..=23) as a byte vector; the layout used by the
    /// instrumented workloads when placing the sequence in the simulated
    /// address space.
    pub fn to_index_bytes(&self) -> Vec<u8> {
        self.residues.iter().map(|aa| aa.index() as u8).collect()
    }

    /// Iterates over residues.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, AminoAcid>> {
        self.residues.iter().copied()
    }
}

impl std::fmt::Display for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for aa in &self.residues {
            write!(f, "{}", aa.to_char())?;
        }
        Ok(())
    }
}

impl AsRef<[AminoAcid]> for Sequence {
    fn as_ref(&self) -> &[AminoAcid] {
        &self.residues
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = AminoAcid;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AminoAcid>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let text = "ACDEFGHIKLMNPQRSTVWYBZX*";
        let s = Sequence::from_str("t", text).unwrap();
        assert_eq!(s.to_string(), text);
        assert_eq!(s.len(), text.len());
    }

    #[test]
    fn parse_error_carries_position() {
        let err = Sequence::from_str("t", "AC1DE").unwrap_err();
        match err {
            Error::InvalidResidue { byte, position } => {
                assert_eq!(byte, b'1');
                assert_eq!(position, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::from_str("t", "").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "");
    }

    #[test]
    fn index_bytes_match_alphabet() {
        let s = Sequence::from_str("t", "AR").unwrap();
        assert_eq!(s.to_index_bytes(), vec![0, 1]);
    }
}
