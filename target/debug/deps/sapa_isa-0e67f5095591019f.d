/root/repo/target/debug/deps/sapa_isa-0e67f5095591019f.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/sapa_isa-0e67f5095591019f: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/stats.rs:
crates/isa/src/trace.rs:
crates/isa/src/validate.rs:
