//! Set-associative caches and the two-level memory hierarchy.

use crate::config::{CacheConfig, MemConfig, PrefetchConfig};

/// Where a memory access was finally served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Hit in the L1 (or the level itself for single-level users).
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both; served by main memory.
    Memory,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 for no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative, write-allocate cache level with LRU replacement.
///
/// Tag storage only (contents are irrelevant to timing). A `size` of
/// `None` in the config models the paper's infinite ("Inf") caches:
/// every access hits.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (every preset),
    /// letting the hot set-index computation be a mask instead of a
    /// division; `usize::MAX` flags the modulo fallback.
    set_mask: usize,
    line_shift: u32,
    /// `ways[set * assoc + way]` = tag, `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache; `None`-sized configs yield an always-hit cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let (sets, ways) = match cfg.size {
            Some(size) => {
                let sets = (size / (cfg.line as u64 * cfg.assoc as u64)) as usize;
                (sets.max(1), cfg.assoc as usize)
            }
            None => (0, 0),
        };
        Cache {
            line_shift: cfg.line.trailing_zeros(),
            cfg,
            sets,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether this is an always-hit (infinite) cache.
    pub fn is_infinite(&self) -> bool {
        self.cfg.size.is_none()
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != usize::MAX {
            line as usize & self.set_mask
        } else {
            line as usize % self.sets
        }
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.cfg.latency
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// On a miss the line is allocated (write-allocate for stores too).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        if self.is_infinite() {
            return true;
        }
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        self.clock += 1;

        // Hit path.
        for w in 0..assoc {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: replace LRU way.
        self.stats.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Installs the line containing `addr` without touching the
    /// demand statistics (prefetch fills).
    pub fn install(&mut self, addr: u64) {
        let before = self.stats;
        self.access(addr);
        self.stats = before;
    }

    /// Probes for `addr` without updating state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        if self.is_infinite() {
            return true;
        }
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let assoc = self.cfg.assoc as usize;
        self.tags[set * assoc..set * assoc + assoc].contains(&line)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Result of a hierarchy access: total latency and the level that
/// served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycles from issue to data available.
    pub latency: u32,
    /// Serving level, for trauma attribution.
    pub served_by: ServedBy,
    /// Whether the access missed in the TLB (page-walk penalty
    /// included in `latency`).
    pub tlb_miss: bool,
}

/// A translation-lookaside buffer over 4 KB pages (LRU, set-assoc).
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: usize,
    /// Same trick as [`Cache::set_mask`]: mask when `sets` is a power
    /// of two, `usize::MAX` for the modulo fallback.
    set_mask: usize,
    assoc: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Tlb {
    const PAGE_SHIFT: u32 = 12;

    /// Builds a TLB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(entries: u32, assoc: u32) -> Self {
        assert!(assoc > 0 && entries > 0 && entries.is_multiple_of(assoc));
        let sets = (entries / assoc) as usize;
        Tlb {
            sets,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            assoc: assoc as usize,
            tags: vec![u64::MAX; entries as usize],
            stamps: vec![0; entries as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Translates the page containing `addr`; returns `true` on hit.
    /// A miss walks the page table and installs the entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let page = addr >> Self::PAGE_SHIFT;
        let set = if self.set_mask != usize::MAX {
            page as usize & self.set_mask
        } else {
            page as usize % self.sets
        };
        let base = set * self.assoc;
        self.clock += 1;
        for w in 0..self.assoc {
            if self.tags[base + w] == page {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        self.stats.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = page;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The data-side memory hierarchy: DL1 → shared L2 → memory, with
/// optional TLBs and an optional next-line prefetcher.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    dl1: Cache,
    il1: Cache,
    l2: Cache,
    mem_latency: u32,
    dtlb: Option<Tlb>,
    itlb: Option<Tlb>,
    tlb_penalty: u32,
    prefetch: PrefetchConfig,
    line: u64,
    /// Recent miss lines, for stream detection (ring buffer).
    recent_misses: [u64; 8],
    recent_head: usize,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a Table V preset.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MemConfig::validate`].
    pub fn new(cfg: &MemConfig) -> Self {
        cfg.validate().expect("invalid memory configuration");
        MemoryHierarchy {
            dl1: Cache::new(cfg.dl1),
            il1: Cache::new(cfg.il1),
            l2: Cache::new(cfg.l2),
            mem_latency: cfg.mem_latency,
            dtlb: cfg.tlb.map(|t| Tlb::new(t.dtlb_entries, t.dtlb_assoc)),
            itlb: cfg.tlb.map(|t| Tlb::new(t.itlb_entries, t.itlb_assoc)),
            tlb_penalty: cfg.tlb.map(|t| t.miss_penalty).unwrap_or(0),
            prefetch: cfg.prefetch,
            line: cfg.dl1.line as u64,
            recent_misses: [u64::MAX; 8],
            recent_head: 0,
        }
    }

    /// A data access (load or store) to `addr`.
    pub fn data_access(&mut self, addr: u64) -> AccessResult {
        let tlb_miss = match self.dtlb.as_mut() {
            Some(tlb) => !tlb.access(addr),
            None => false,
        };
        let walk = if tlb_miss { self.tlb_penalty } else { 0 };
        let result = if self.dl1.access(addr) {
            AccessResult {
                latency: self.dl1.latency() + walk,
                served_by: ServedBy::L1,
                tlb_miss,
            }
        } else if self.l2.access(addr) {
            AccessResult {
                latency: self.dl1.latency() + self.l2.latency() + walk,
                served_by: ServedBy::L2,
                tlb_miss,
            }
        } else {
            AccessResult {
                latency: self.dl1.latency() + self.l2.latency() + self.mem_latency + walk,
                served_by: ServedBy::Memory,
                tlb_miss,
            }
        };
        if result.served_by != ServedBy::L1 && self.prefetch.degree > 0 {
            // Stream prefetcher: only prefetch when the miss continues
            // a sequential pattern (a miss to the previous line is in
            // the recent-miss window). Blind next-line prefetching
            // pollutes the cache on random-access misses — exactly
            // BLAST's word-table pattern.
            let miss_line = addr / self.line.max(1);
            let streaming = self
                .recent_misses
                .iter()
                .any(|&l| l != u64::MAX && l + 1 == miss_line);
            self.recent_misses[self.recent_head] = miss_line;
            self.recent_head = (self.recent_head + 1) % self.recent_misses.len();
            if streaming {
                for k in 1..=self.prefetch.degree as u64 {
                    let next = addr + k * self.line;
                    if !self.dl1.probe(next) {
                        // Installed off the books: prefetch traffic
                        // must not pollute the demand-miss statistics.
                        self.dl1.install(next);
                        self.l2.install(next);
                    }
                    // Keep the stream alive past the prefetched span.
                    self.recent_misses[self.recent_head] = miss_line + k;
                    self.recent_head = (self.recent_head + 1) % self.recent_misses.len();
                }
            }
        }
        result
    }

    /// An instruction-fetch access to `addr`.
    pub fn inst_access(&mut self, addr: u64) -> AccessResult {
        let tlb_miss = match self.itlb.as_mut() {
            Some(tlb) => !tlb.access(addr),
            None => false,
        };
        let walk = if tlb_miss { self.tlb_penalty } else { 0 };
        if self.il1.access(addr) {
            AccessResult {
                latency: self.il1.latency() + walk,
                served_by: ServedBy::L1,
                tlb_miss,
            }
        } else if self.l2.access(addr) {
            AccessResult {
                latency: self.il1.latency() + self.l2.latency() + walk,
                served_by: ServedBy::L2,
                tlb_miss,
            }
        } else {
            AccessResult {
                latency: self.il1.latency() + self.l2.latency() + self.mem_latency + walk,
                served_by: ServedBy::Memory,
                tlb_miss,
            }
        }
    }

    /// DTLB statistics (zeroes without a TLB).
    pub fn dtlb_stats(&self) -> CacheStats {
        self.dtlb.as_ref().map(Tlb::stats).unwrap_or_default()
    }

    /// ITLB statistics (zeroes without a TLB).
    pub fn itlb_stats(&self) -> CacheStats {
        self.itlb.as_ref().map(Tlb::stats).unwrap_or_default()
    }

    /// Probes the DL1 without side effects (used by the MSHR check:
    /// a load that would miss may not issue when all MSHRs are busy).
    pub fn probe_dl1(&self, addr: u64) -> bool {
        self.dl1.probe(addr)
    }

    /// DL1 statistics.
    pub fn dl1_stats(&self) -> CacheStats {
        self.dl1.stats()
    }

    /// IL1 statistics.
    pub fn il1_stats(&self) -> CacheStats {
        self.il1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(size: u64, assoc: u32, line: u32) -> Cache {
        Cache::new(CacheConfig {
            size: Some(size),
            assoc,
            line,
            latency: 1,
        })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = small(1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    #[allow(clippy::erasing_op)] // line_number * line_size kept explicit
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways x 64B lines = 256B cache.
        let mut c = small(256, 2, 64);
        // Three lines mapping to set 0: line numbers 0, 2, 4 (even).
        assert!(!c.access(0 * 64));
        assert!(!c.access(2 * 64));
        assert!(c.access(0 * 64)); // refresh line 0
        assert!(!c.access(4 * 64)); // evicts line 2 (LRU)
        assert!(c.access(0 * 64));
        assert!(!c.access(2 * 64)); // line 2 was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = small(128, 1, 64); // 2 sets, 1 way
        assert!(!c.access(0));
        assert!(!c.access(128)); // same set, evicts
        assert!(!c.access(0));
    }

    #[test]
    fn infinite_cache_always_hits() {
        let mut c = Cache::new(CacheConfig::infinite(1));
        for i in 0..1000u64 {
            assert!(c.access(i * 4096));
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small(1024, 2, 64);
        assert!(!c.probe(0x40));
        assert_eq!(c.stats().accesses, 0);
        c.access(0x40);
        assert!(c.probe(0x40));
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemoryHierarchy::new(&MemConfig::me1());
        let first = h.data_access(0x2000_0000);
        assert_eq!(first.served_by, ServedBy::Memory);
        assert!(first.tlb_miss);
        // 1 (L1) + 12 (L2) + 300 (memory) + 30 (cold TLB walk).
        assert_eq!(first.latency, 1 + 12 + 300 + 30);
        let second = h.data_access(0x2000_0000);
        assert_eq!(second.served_by, ServedBy::L1);
        assert!(!second.tlb_miss);
        assert_eq!(second.latency, 1);
    }

    #[test]
    fn l2_serves_after_dl1_eviction() {
        // Small DL1 (direct-mapped-ish) with big L2: revisit after
        // eviction should be an L2 hit.
        let cfg = MemConfig {
            name: "tiny".into(),
            dl1: CacheConfig {
                size: Some(256),
                assoc: 1,
                line: 64,
                latency: 1,
            },
            il1: CacheConfig::infinite(1),
            l2: CacheConfig {
                size: Some(1 << 20),
                assoc: 8,
                line: 64,
                latency: 12,
            },
            mem_latency: 300,
            tlb: None,
            prefetch: PrefetchConfig::default(),
        };
        let mut h = MemoryHierarchy::new(&cfg);
        h.data_access(0); // miss everywhere
        for i in 1..8u64 {
            h.data_access(i * 256); // conflict-evict line 0 from DL1
        }
        let back = h.data_access(0);
        assert_eq!(back.served_by, ServedBy::L2);
        assert_eq!(back.latency, 13);
    }

    #[test]
    fn miss_rate_computation() {
        let s = CacheStats {
            accesses: 10,
            misses: 3,
        };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}

#[cfg(test)]
mod tlb_tests {
    use super::*;
    use crate::config::TlbConfig;

    #[test]
    fn tlb_hits_within_a_page() {
        let mut t = Tlb::new(64, 4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF)); // same 4K page
        assert!(!t.access(0x2000)); // next page
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn tlb_capacity_evicts_lru() {
        let mut t = Tlb::new(4, 1); // 4 sets, direct-mapped
        assert!(!t.access(0x0000));
        assert!(!t.access(0x4000)); // page 4 -> set 0, evicts page 0
        assert!(!t.access(0x0000));
    }

    #[test]
    fn hierarchy_without_tlb_reports_no_misses() {
        let mut cfg = MemConfig::me1();
        cfg.tlb = None;
        let mut h = MemoryHierarchy::new(&cfg);
        let r = h.data_access(0x5000_0000);
        assert!(!r.tlb_miss);
        assert_eq!(h.dtlb_stats().accesses, 0);
    }

    #[test]
    fn tlb_walk_penalty_configurable() {
        let mut cfg = MemConfig::meinf(); // all caches hit
        cfg.tlb = Some(TlbConfig {
            miss_penalty: 50,
            ..TlbConfig::default()
        });
        let mut h = MemoryHierarchy::new(&cfg);
        let first = h.data_access(0x9000_0000);
        assert_eq!(first.latency, 1 + 50);
        let second = h.data_access(0x9000_0000);
        assert_eq!(second.latency, 1);
    }

    #[test]
    fn prefetcher_hides_streaming_misses() {
        let mut base = MemConfig::me1();
        base.name = "nopf".into();
        let mut pf = MemConfig::me1();
        pf.name = "pf".into();
        pf.prefetch = PrefetchConfig { degree: 2 };

        let miss_count = |cfg: &MemConfig| {
            let mut h = MemoryHierarchy::new(cfg);
            for i in 0..1000u64 {
                h.data_access(0x2000_0000 + i * 64); // sequential stream
            }
            h.dl1_stats().misses
        };
        let without = miss_count(&base);
        let with = miss_count(&pf);
        assert!(with < without / 2, "prefetch {with} vs demand {without}");
    }
}
