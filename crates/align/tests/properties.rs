//! Property-based tests for the alignment algorithms.
//!
//! The single most important invariant of the whole reproduction is that
//! the Smith-Waterman implementations (textbook Gotoh, SSEARCH-style
//! lazy-F, anti-diagonal SIMD, striped SIMD, at both lane widths and
//! both precisions) compute the same score on arbitrary inputs — the
//! paper's workloads are different *machines* running the same *math*.
//!
//! The random cases are generated with the repo's own deterministic
//! xoshiro generator (the container has no registry access, so external
//! property-test frameworks are unavailable); every run tests the same
//! corpus, and a failing case prints its case index for replay.

use sapa_align::engine::{Engine, Prefilter, SearchRequest};
use sapa_align::{banded, blast, fasta, nw, simd_sw, striped, sw, xdrop};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::QueryProfile;
use sapa_bioseq::rng::Xoshiro256;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

const CASES: usize = 96;

/// Uniformly random standard residue (ambiguity codes are exercised by
/// unit tests; heuristics skip them by design).
fn residue(rng: &mut Xoshiro256) -> AminoAcid {
    let i = rng.next_below(AminoAcid::STANDARD_COUNT as u64) as usize;
    AminoAcid::from_index(i).unwrap()
}

/// Random protein of length `0..max_len`.
fn protein(rng: &mut Xoshiro256, max_len: usize) -> Vec<AminoAcid> {
    let len = rng.next_below(max_len as u64) as usize;
    (0..len).map(|_| residue(rng)).collect()
}

/// Gap-heavy protein: long runs of one residue interleaved with noise,
/// which makes optimal alignments open and extend gaps aggressively.
fn gappy_protein(rng: &mut Xoshiro256, max_len: usize) -> Vec<AminoAcid> {
    let len = rng.next_below(max_len as u64) as usize;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let run = 1 + rng.next_below(6) as usize;
        let r = residue(rng);
        for _ in 0..run.min(len - out.len()) {
            out.push(r);
        }
        if rng.next_below(3) == 0 && out.len() < len {
            out.push(residue(rng));
        }
    }
    out
}

fn gap_penalties(rng: &mut Xoshiro256) -> GapPenalties {
    GapPenalties::new(1 + rng.next_below(14) as i32, 1 + rng.next_below(4) as i32)
}

#[test]
fn simd_sw_matches_scalar() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0x51AD);
    for case in 0..CASES {
        let a = protein(&mut rng, 48);
        let b = protein(&mut rng, 48);
        let g = gap_penalties(&mut rng);
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(simd_sw::score::<8>(&a, &b, &m, g), expect, "case {case}");
        assert_eq!(simd_sw::score::<16>(&a, &b, &m, g), expect, "case {case}");
    }
}

#[test]
fn byte_precision_simd_matches_scalar() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0xB17E);
    for case in 0..CASES {
        let a = protein(&mut rng, 40);
        let b = protein(&mut rng, 40);
        let g = gap_penalties(&mut rng);
        let expect = sw::score(&a, &b, &m, g);
        // The byte pass either agrees exactly or reports overflow.
        if let Some(s) = simd_sw::score_bytes::<16>(&a, &b, &m, g) {
            assert_eq!(s, expect, "case {case}");
        }
        // The adaptive wrapper always agrees.
        assert_eq!(
            simd_sw::score_adaptive::<16, 8>(&a, &b, &m, g),
            expect,
            "case {case}"
        );
        assert_eq!(
            simd_sw::score_adaptive::<32, 16>(&a, &b, &m, g),
            expect,
            "case {case}"
        );
    }
}

/// The tentpole invariant: the Farrar striped kernel is score-identical
/// to the scalar Gotoh oracle at both lane widths and both precisions,
/// across random, gap-heavy, and all-identical inputs.
#[test]
fn striped_matches_scalar() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0x57A1);
    for case in 0..CASES {
        let a = protein(&mut rng, 64);
        let b = protein(&mut rng, 64);
        let g = gap_penalties(&mut rng);
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(
            striped::score::<8>(&a, &b, &m, g),
            expect,
            "L=8 case {case}"
        );
        assert_eq!(
            striped::score::<16>(&a, &b, &m, g),
            expect,
            "L=16 case {case}"
        );
        assert_eq!(
            striped::score_adaptive::<16, 8>(&a, &b, &m, g),
            expect,
            "adaptive 128-bit case {case}"
        );
        assert_eq!(
            striped::score_adaptive::<32, 16>(&a, &b, &m, g),
            expect,
            "adaptive 256-bit case {case}"
        );
    }
}

#[test]
fn striped_matches_scalar_on_gap_heavy_inputs() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0x6A99);
    for case in 0..CASES {
        let a = gappy_protein(&mut rng, 72);
        let b = gappy_protein(&mut rng, 72);
        // Cheap gaps so optimal alignments actually use them.
        let g = GapPenalties::new(1 + rng.next_below(4) as i32, 1);
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(
            striped::score::<8>(&a, &b, &m, g),
            expect,
            "L=8 case {case}"
        );
        assert_eq!(
            striped::score::<16>(&a, &b, &m, g),
            expect,
            "L=16 case {case}"
        );
        assert_eq!(
            striped::score_adaptive::<16, 8>(&a, &b, &m, g),
            expect,
            "adaptive case {case}"
        );
    }
}

#[test]
fn striped_matches_scalar_on_all_identical_inputs() {
    // All-identical sequences maximize score growth per cell — the
    // worst case for the lazy-F early exit and for byte saturation.
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    for len in [1usize, 7, 8, 9, 16, 17, 33, 64, 120] {
        let a = vec![AminoAcid::Trp; len];
        let expect = sw::score(&a, &a, &m, g);
        assert_eq!(striped::score::<8>(&a, &a, &m, g), expect, "len {len}");
        assert_eq!(striped::score::<16>(&a, &a, &m, g), expect, "len {len}");
        assert_eq!(
            striped::score_adaptive::<16, 8>(&a, &a, &m, g),
            expect,
            "adaptive len {len}"
        );
    }
}

#[test]
fn striped_byte_pass_agrees_or_overflows() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0xB0B5);
    for case in 0..CASES {
        let a = protein(&mut rng, 48);
        let b = protein(&mut rng, 48);
        let g = gap_penalties(&mut rng);
        let expect = sw::score(&a, &b, &m, g);
        if let Some(s) = striped::score_bytes::<16>(&a, &b, &m, g) {
            assert_eq!(s, expect, "LB=16 case {case}");
        }
        if let Some(s) = striped::score_bytes::<32>(&a, &b, &m, g) {
            assert_eq!(s, expect, "LB=32 case {case}");
        }
    }
}

/// An overflow-forcing case: a long near-identical pair whose true score
/// exceeds the byte kernel's headroom must take the 8→16-bit rescore
/// path and still produce the exact score.
#[test]
fn striped_overflow_forces_word_rescore() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let a = vec![AminoAcid::Trp; 64]; // self-score 64 × 11 = 704 >> u8 range
    assert_eq!(striped::score_bytes::<16>(&a, &a, &m, g), None);
    assert_eq!(striped::score_bytes::<32>(&a, &a, &m, g), None);
    let expect = sw::score(&a, &a, &m, g);
    assert_eq!(striped::score_adaptive::<16, 8>(&a, &a, &m, g), expect);
    assert_eq!(striped::score_adaptive::<32, 16>(&a, &a, &m, g), expect);
}

/// Profile reuse across subjects must be score-equivalent to building
/// the profile per pair (what the batched search driver relies on).
#[test]
fn striped_profile_reuse_is_pure() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xCAFE);
    let query = protein(&mut rng, 80);
    let profile = QueryProfile::build(&query, &m, 8);
    let mut ws = striped::Workspace::<8>::new();
    let mut bws = striped::ByteWorkspace::<16>::new();
    for case in 0..CASES {
        let b = protein(&mut rng, 64);
        let expect = sw::score(&query, &b, &m, g);
        assert_eq!(
            striped::score_with_profile::<8>(&profile, &b, g, &mut ws),
            expect,
            "word case {case}"
        );
        assert_eq!(
            striped::score_adaptive_with_profile::<16, 8>(&profile, &b, g, &mut bws, &mut ws),
            expect,
            "adaptive case {case}"
        );
    }
}

#[test]
fn lazy_f_matches_scalar() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0x1A2F);
    for case in 0..CASES {
        let a = protein(&mut rng, 48);
        let b = protein(&mut rng, 48);
        let g = gap_penalties(&mut rng);
        assert_eq!(
            sw::score_lazy_f(&a, &b, &m, g),
            sw::score(&a, &b, &m, g),
            "case {case}"
        );
    }
}

#[test]
fn sw_score_is_symmetric() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x5E33);
    for case in 0..CASES {
        let a = protein(&mut rng, 32);
        let b = protein(&mut rng, 32);
        assert_eq!(
            sw::score(&a, &b, &m, g),
            sw::score(&b, &a, &m, g),
            "case {case}"
        );
    }
}

#[test]
fn sw_score_nonnegative_and_bounded() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xB0BD);
    for case in 0..CASES {
        let a = protein(&mut rng, 32);
        let b = protein(&mut rng, 32);
        let s = sw::score(&a, &b, &m, g);
        assert!(s >= 0, "case {case}");
        // Upper bound: the shorter sequence matched perfectly at the
        // matrix maximum.
        let bound = (a.len().min(b.len()) as i32) * m.max_score();
        assert!(s <= bound, "case {case}: {s} > {bound}");
    }
}

#[test]
fn sw_self_score_is_diagonal_sum() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xD1A6);
    for case in 0..CASES {
        let a = protein(&mut rng, 32);
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(sw::score(&a, &a, &m, g), expected.max(0), "case {case}");
    }
}

#[test]
fn banded_never_exceeds_full() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xBA4D);
    for case in 0..CASES {
        let a = protein(&mut rng, 32);
        let b = protein(&mut rng, 32);
        let diag = rng.next_below(16) as isize - 8;
        let width = 1 + rng.next_below(5) as usize;
        assert!(
            banded::score(&a, &b, &m, g, diag, width) <= sw::score(&a, &b, &m, g),
            "case {case}"
        );
    }
}

#[test]
fn banded_full_width_equals_full() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xF0F0);
    for case in 0..CASES {
        let a = protein(&mut rng, 24);
        let b = protein(&mut rng, 24);
        if a.is_empty() || b.is_empty() {
            continue;
        }
        assert_eq!(
            banded::score(&a, &b, &m, g, 0, a.len() + b.len()),
            sw::score(&a, &b, &m, g),
            "case {case}"
        );
    }
}

#[test]
fn global_at_most_local() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x6B0A);
    for case in 0..CASES {
        let a = protein(&mut rng, 24);
        let b = protein(&mut rng, 24);
        assert!(
            nw::score(&a, &b, &m, g) <= sw::score(&a, &b, &m, g),
            "case {case}"
        );
    }
}

#[test]
fn alignment_hierarchy_global_semiglobal_local() {
    // global ≤ semi-global ≤ local: each relaxes more constraints.
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x41E2);
    for case in 0..CASES {
        let a = protein(&mut rng, 24);
        let b = protein(&mut rng, 24);
        let global = nw::score(&a, &b, &m, g);
        let semi = nw::semiglobal_score(&a, &b, &m, g);
        let local = sw::score(&a, &b, &m, g);
        assert!(global <= semi, "case {case}: global {global} > semi {semi}");
        assert!(semi <= local, "case {case}: semi {semi} > local {local}");
    }
}

#[test]
fn global_traceback_matches_score() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x67B4);
    for case in 0..CASES {
        let a = protein(&mut rng, 16);
        let b = protein(&mut rng, 16);
        let al = nw::align(&a, &b, &m, g);
        assert_eq!(al.score, nw::score(&a, &b, &m, g), "case {case}");
    }
}

#[test]
fn traceback_score_matches() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x7ACE);
    for case in 0..CASES {
        let a = protein(&mut rng, 20);
        let b = protein(&mut rng, 20);
        let al = sw::align(&a, &b, &m, g);
        assert_eq!(al.score, sw::score(&a, &b, &m, g), "case {case}");
    }
}

#[test]
fn heuristic_scores_never_exceed_sw() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0x43A7);
    for case in 0..CASES {
        let a = protein(&mut rng, 40);
        let b = protein(&mut rng, 40);
        if a.len() < 3 || b.len() < 3 {
            continue;
        }
        let full = sw::score(&a, &b, &m, g);

        // FASTA's opt is a banded SW — a lower bound on full SW.
        let idx = fasta::KtupIndex::build(&a, 2);
        let fs = fasta::score_subject(&idx, &b, &m, g, &fasta::FastaParams::default());
        assert!(fs.opt <= full, "case {case}: opt {} > sw {full}", fs.opt);

        // BLAST's reported score (banded or ungapped) is also ≤ full SW.
        let widx = blast::WordIndex::build(&a, &m, 11);
        let db: Vec<&[AminoAcid]> = vec![&b];
        let res = blast::search(&widx, db, &m, g, &blast::BlastParams::default(), 5);
        if let Some(best) = res.best_score() {
            assert!(best <= full, "case {case}: blast {best} > sw {full}");
        }
    }
}

#[test]
fn xdrop_monotone_in_x_and_bounded_by_local() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xD409);
    for case in 0..CASES {
        let a = protein(&mut rng, 24);
        let b = protein(&mut rng, 24);
        let x_small = 2 + rng.next_below(6) as i32;
        let tight = xdrop::extend_right(&a, &b, &m, g, x_small);
        let loose = xdrop::extend_right(&a, &b, &m, g, 10_000);
        assert!(tight <= loose, "case {case}: tight {tight} > loose {loose}");
        // An origin-anchored extension can never beat the free local
        // alignment.
        assert!(loose <= sw::score(&a, &b, &m, g).max(0), "case {case}");
        assert!(loose >= 0, "case {case}");
    }
}

/// The deconstructed lazy-F kernels (early-exit + prefix-scan
/// correction) must be *bit-identical* to the pre-rework reference
/// kernels kept in-tree as oracles — same scores as scalar SW for the
/// word pass, and the exact same `Option` (including the overflow
/// `None` decisions) for the byte pass.
#[test]
fn deconstructed_lazy_f_is_bit_identical_to_reference() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0xDEC0);
    let mut ws8 = striped::Workspace::<8>::new();
    let mut ws16 = striped::Workspace::<16>::new();
    let mut bws16 = striped::ByteWorkspace::<16>::new();
    let mut bws32 = striped::ByteWorkspace::<32>::new();
    for case in 0..CASES {
        // Alternate random and gap-heavy inputs; cheap gaps every
        // third case keep the correction path hot.
        let (a, b) = if case % 2 == 0 {
            (protein(&mut rng, 90), protein(&mut rng, 90))
        } else {
            (gappy_protein(&mut rng, 90), gappy_protein(&mut rng, 90))
        };
        let g = if case % 3 == 0 {
            GapPenalties::new(1 + rng.next_below(3) as i32, 1)
        } else {
            gap_penalties(&mut rng)
        };
        let expect = sw::score(&a, &b, &m, g);

        let p128 = QueryProfile::build(&a, &m, 8);
        let p256 = QueryProfile::build(&a, &m, 16);

        let new = striped::score_with_profile::<8>(&p128, &b, g, &mut ws8);
        let old = striped::score_with_profile_ref::<8>(&p128, &b, g, &mut ws8);
        assert_eq!(new, old, "word L=8 case {case}");
        assert_eq!(new, expect, "word L=8 vs scalar case {case}");

        let new = striped::score_with_profile::<16>(&p256, &b, g, &mut ws16);
        let old = striped::score_with_profile_ref::<16>(&p256, &b, g, &mut ws16);
        assert_eq!(new, old, "word L=16 case {case}");
        assert_eq!(new, expect, "word L=16 vs scalar case {case}");

        // Byte pass: Option equality — both kernels must make the same
        // overflow call, and agree with scalar when they answer.
        let new = striped::score_bytes_with_profile::<16>(&p128, &b, g, &mut bws16);
        let old = striped::score_bytes_with_profile_ref::<16>(&p128, &b, g, &mut bws16);
        assert_eq!(new, old, "byte LB=16 case {case}");
        if let Some(s) = new {
            assert_eq!(s, expect, "byte LB=16 vs scalar case {case}");
        }

        let new = striped::score_bytes_with_profile::<32>(&p256, &b, g, &mut bws32);
        let old = striped::score_bytes_with_profile_ref::<32>(&p256, &b, g, &mut bws32);
        assert_eq!(new, old, "byte LB=32 case {case}");
        if let Some(s) = new {
            assert_eq!(s, expect, "byte LB=32 vs scalar case {case}");
        }
    }
}

/// End-to-end traceback contract: every hit an exact engine reports
/// with `report_alignments` carries coordinates and a CIGAR that
/// replay to exactly the reported score — including hits that took the
/// byte-saturation → word rescore path.
#[test]
fn traceback_cigars_replay_to_reported_score() {
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let mut rng = Xoshiro256::new(0xC16A);

    // ~120-residue query; the database plants a near-identical copy
    // (few point edits), whose score far exceeds byte headroom and
    // forces the adaptive engines through the word rescore, plus
    // random/gappy decoys and a truncated fragment.
    let query: Vec<AminoAcid> = (0..120)
        .map(|_| {
            let i = rng.next_below(20) as usize;
            AminoAcid::from_index(i).unwrap()
        })
        .collect();
    let mut near = query.clone();
    for _ in 0..4 {
        let at = rng.next_below(near.len() as u64) as usize;
        let i = rng.next_below(20) as usize;
        near[at] = AminoAcid::from_index(i).unwrap();
    }
    let mut subjects: Vec<Vec<AminoAcid>> = vec![near, query[20..100].to_vec()];
    for _ in 0..12 {
        subjects.push(protein(&mut rng, 110));
        subjects.push(gappy_protein(&mut rng, 110));
    }
    let slices: Vec<&[AminoAcid]> = subjects.iter().map(|s| s.as_slice()).collect();

    let req = SearchRequest {
        query: &query,
        matrix: &m,
        gaps: g,
        top_k: slices.len(),
        min_score: 1,
        deadline: None,
        report_alignments: true,
        prefilter: Prefilter::Off,
    };
    for engine in Engine::ALL.into_iter().filter(|e| e.is_exact()) {
        let resp = engine.search(&req, &slices, 2);
        assert!(!resp.hits.is_empty(), "{engine}");
        // The planted near-copy must rank first with a score beyond
        // byte range, proving the rescore path is in play.
        assert_eq!(resp.hits[0].seq_index, 0, "{engine}");
        assert!(resp.hits[0].score > 255, "{engine}: {}", resp.hits[0].score);
        for hit in &resp.hits {
            let al = hit
                .alignment
                .as_ref()
                .unwrap_or_else(|| panic!("{engine}: hit {} missing alignment", hit.seq_index));
            assert_eq!(
                al.replay_score(&query, slices[hit.seq_index], &m, g),
                Some(hit.score),
                "{engine}: hit {} CIGAR {}",
                hit.seq_index,
                al.cigar
            );
        }
    }
}

#[test]
fn word_index_entries_meet_threshold() {
    let m = SubstitutionMatrix::blosum62();
    let mut rng = Xoshiro256::new(0x3070);
    for case in 0..CASES {
        let a = protein(&mut rng, 24);
        if a.len() < 3 {
            continue;
        }
        let t = 8 + rng.next_below(6) as i32;
        let idx = blast::WordIndex::build(&a, &m, t);
        for word in 0..blast::WORD_TABLE_SIZE {
            for &qi in idx.lookup(word) {
                let q = &a[qi as usize..qi as usize + 3];
                let c = [word / 400, (word / 20) % 20, word % 20];
                let score: i32 = (0..3).map(|k| m.score_by_index(q[k].index(), c[k])).sum();
                assert!(score >= t, "case {case}");
            }
        }
    }
}
