//! A small blocking client for the line protocol.
//!
//! Used by the load generator, the benches, and the chaos suite; also
//! a reference for writing clients in other languages (the protocol is
//! just one JSON object per line in each direction).

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// Parameters for building one `search` request line.
#[derive(Debug, Clone)]
pub struct SearchParams<'a> {
    /// Request id (echoed back; correlate replies with this).
    pub id: u64,
    /// Tenant to bill the request to.
    pub tenant: &'a str,
    /// Engine registry name (`"striped"`, `"blast"`, …).
    pub engine: &'a str,
    /// Query residues as text.
    pub query: &'a str,
    /// Ranked hits to request.
    pub top_k: usize,
    /// Minimum raw score to report.
    pub min_score: i32,
    /// Optional deterministic cell budget.
    pub deadline_cells: Option<u64>,
    /// Optional best-effort wall deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SearchParams<'_> {
    /// Renders the request as one protocol line (no newline).
    pub fn render(&self) -> String {
        let mut pairs = vec![
            ("op", Json::str("search")),
            ("id", Json::num_u64(self.id)),
            ("tenant", Json::str(self.tenant)),
            ("engine", Json::str(self.engine)),
            ("query", Json::str(self.query)),
            ("top_k", Json::num_u64(self.top_k as u64)),
            ("min_score", Json::Num(f64::from(self.min_score))),
        ];
        if let Some(cells) = self.deadline_cells {
            pairs.push(("deadline_cells", Json::num_u64(cells)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::num_u64(ms)));
        }
        Json::obj(pairs).render()
    }
}

/// A blocking line-protocol connection.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects with `timeout` applied to connect, reads, and writes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            pending: Vec::new(),
        })
    }

    /// Sends one raw line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Sends pre-framed bytes verbatim (the abuse path: callers may
    /// garble the frame first). The newline is still appended so the
    /// stream stays line-delimited.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)?;
        self.stream.write_all(b"\n")
    }

    /// Receives the next response line; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including read timeouts).
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| io::Error::new(ErrorKind::InvalidData, "response not utf-8"));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one line and waits for the paired response line.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or if the server closed before replying.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()?.ok_or_else(|| {
            io::Error::new(ErrorKind::UnexpectedEof, "connection closed before reply")
        })
    }

    /// Sends a search built from `params` and returns the reply line.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn search(&mut self, params: &SearchParams<'_>) -> io::Result<String> {
        self.request(&params.render())
    }

    /// Half-closes the write side, simulating a client that stops
    /// sending but keeps reading (or just leaves).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
