//! Architectural register name space.
//!
//! A flat `u8` id space modeled on the PowerPC+Altivec architectural
//! state the paper's traces reference:
//!
//! | ids        | file                      | constructor |
//! |------------|---------------------------|-------------|
//! | `0..=31`   | general purpose (GPR)     | [`gpr`]     |
//! | `32..=63`  | floating point (FPR)      | [`fpr`]     |
//! | `64..=127` | Altivec vector (VR 0..63) | [`vr`]      |
//! | `255`      | "no register"             | [`Reg::NONE`] |
//!
//! The vector file has 64 names (twice Altivec's 32) so the futuristic
//! 256-bit workload can address wide registers without aliasing.

/// An architectural register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Sentinel for "no register" (e.g. a store has no destination).
    pub const NONE: Reg = Reg(255);

    /// Total number of real architectural registers (excludes NONE).
    pub const COUNT: usize = 128;

    /// Raw id.
    #[inline]
    pub const fn id(self) -> u8 {
        self.0
    }

    /// Whether this is a real register (not [`Reg::NONE`]).
    #[inline]
    pub const fn is_some(self) -> bool {
        self.0 != 255
    }

    /// The register file this name belongs to.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Reg::NONE`].
    pub fn file(self) -> RegFile {
        assert!(self.is_some(), "Reg::NONE has no register file");
        match self.0 {
            0..=31 => RegFile::Gpr,
            32..=63 => RegFile::Fpr,
            _ => RegFile::Vr,
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_some() {
            return write!(f, "-");
        }
        match self.file() {
            RegFile::Gpr => write!(f, "r{}", self.0),
            RegFile::Fpr => write!(f, "f{}", self.0 - 32),
            RegFile::Vr => write!(f, "v{}", self.0 - 64),
        }
    }
}

/// The three architectural register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegFile {
    /// General-purpose (integer) registers.
    Gpr,
    /// Floating-point registers.
    Fpr,
    /// Altivec vector registers.
    Vr,
}

/// General-purpose register `n`.
///
/// # Panics
///
/// Panics if `n >= 32`.
#[inline]
pub const fn gpr(n: u8) -> Reg {
    assert!(n < 32, "GPR index out of range");
    Reg(n)
}

/// Floating-point register `n`.
///
/// # Panics
///
/// Panics if `n >= 32`.
#[inline]
pub const fn fpr(n: u8) -> Reg {
    assert!(n < 32, "FPR index out of range");
    Reg(32 + n)
}

/// Vector register `n`.
///
/// # Panics
///
/// Panics if `n >= 64`.
#[inline]
pub const fn vr(n: u8) -> Reg {
    assert!(n < 64, "VR index out of range");
    Reg(64 + n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_partition_the_space() {
        assert_eq!(gpr(0).file(), RegFile::Gpr);
        assert_eq!(gpr(31).file(), RegFile::Gpr);
        assert_eq!(fpr(0).file(), RegFile::Fpr);
        assert_eq!(fpr(31).file(), RegFile::Fpr);
        assert_eq!(vr(0).file(), RegFile::Vr);
        assert_eq!(vr(63).file(), RegFile::Vr);
    }

    #[test]
    fn display_names() {
        assert_eq!(gpr(3).to_string(), "r3");
        assert_eq!(fpr(1).to_string(), "f1");
        assert_eq!(vr(9).to_string(), "v9");
        assert_eq!(Reg::NONE.to_string(), "-");
    }

    #[test]
    fn none_is_not_some() {
        assert!(!Reg::NONE.is_some());
        assert!(gpr(0).is_some());
    }

    #[test]
    #[should_panic(expected = "GPR index")]
    fn gpr_bounds_checked() {
        let _ = gpr(32);
    }

    #[test]
    #[should_panic(expected = "no register file")]
    fn none_has_no_file() {
        let _ = Reg::NONE.file();
    }
}
