/root/repo/target/debug/deps/sapa_align-54bc84a991eb69de.d: crates/align/src/lib.rs crates/align/src/banded.rs crates/align/src/blast.rs crates/align/src/blastn.rs crates/align/src/fasta.rs crates/align/src/nw.rs crates/align/src/parallel.rs crates/align/src/result.rs crates/align/src/simd_sw.rs crates/align/src/stats.rs crates/align/src/striped.rs crates/align/src/sw.rs crates/align/src/xdrop.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_align-54bc84a991eb69de.rmeta: crates/align/src/lib.rs crates/align/src/banded.rs crates/align/src/blast.rs crates/align/src/blastn.rs crates/align/src/fasta.rs crates/align/src/nw.rs crates/align/src/parallel.rs crates/align/src/result.rs crates/align/src/simd_sw.rs crates/align/src/stats.rs crates/align/src/striped.rs crates/align/src/sw.rs crates/align/src/xdrop.rs Cargo.toml

crates/align/src/lib.rs:
crates/align/src/banded.rs:
crates/align/src/blast.rs:
crates/align/src/blastn.rs:
crates/align/src/fasta.rs:
crates/align/src/nw.rs:
crates/align/src/parallel.rs:
crates/align/src/result.rs:
crates/align/src/simd_sw.rs:
crates/align/src/stats.rs:
crates/align/src/striped.rs:
crates/align/src/sw.rs:
crates/align/src/xdrop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
