//! Instrumented sequence-alignment workloads.
//!
//! Each module in this crate is one of the paper's five applications
//! (Table I), implemented so that it **computes the real result** (the
//! scores are cross-checked against [`sapa_align`]'s reference
//! implementations in the test suite) while **emitting an instruction
//! trace** through [`sapa_isa::trace::Tracer`] that mirrors the dynamic
//! instruction stream of the original compiled code: the same loads
//! from the same data-structure layouts, the same data-dependent branch
//! outcomes, the same register dependence chains.
//!
//! | Module | Paper workload | Character |
//! |--------|----------------|-----------|
//! | [`ssearch`] | `SSEARCH34` | branchy scalar Smith-Waterman (lazy gap states) |
//! | [`sw_simd`] (L=8) | `SW_vmx128` | anti-diagonal Altivec SW |
//! | [`sw_simd`] (L=16) | `SW_vmx256` | 256-bit Altivec SW |
//! | [`fasta`] | `FASTA34` | k-tuple heuristic |
//! | [`blast`] | `BLAST` (blastp) | neighborhood-word heuristic |
//! | [`blastn`] | extension: blastn | packed-DNA scan (paper Listing 1) |
//!
//! [`registry::Workload`] ties them together behind one enum, and
//! [`registry::StandardInputs`] builds the suite's default query +
//! database (deterministic, Table II's Glutathione S-transferase
//! stand-in against the synthetic SwissProt-like database).
//!
//! ```
//! use sapa_workloads::registry::{StandardInputs, Workload};
//!
//! let inputs = StandardInputs::small(); // tiny inputs for doc tests
//! let bundle = Workload::Blast.trace(&inputs);
//! assert!(bundle.trace.len() > 0);
//! ```

pub mod blast;
pub mod blastn;
pub mod fasta;
pub mod layout;
pub mod registry;
pub mod ssearch;
pub mod sw_simd;

pub use registry::{StandardInputs, TraceBundle, Workload};
