//! Sensitivity study: the speed/sensitivity trade-off the paper's
//! introduction describes (Shpaer et al.'s comparison, its reference
//! [28]). Full Smith-Waterman must find remote homologs the heuristics
//! miss, while everyone finds close homologs.

use sapa_core::align::{blast, fasta, sw};
use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::SubstitutionMatrix;
use sapa_core::bioseq::{AminoAcid, Sequence};

struct Recall {
    sw: usize,
    blast: usize,
    fasta: usize,
    planted: usize,
}

fn measure(identity: f64, seed: u64) -> Recall {
    let queries = QuerySet::paper();
    let query = queries.default_query();
    let db = DatabaseBuilder::new()
        .seed(seed)
        .sequences(120)
        .homolog_fraction(0.1)
        .homolog_identity(identity)
        .homolog_template(query.clone())
        .build();
    let truth: Vec<usize> = db
        .iter()
        .enumerate()
        .filter(|(_, s)| s.description().contains("homolog"))
        .map(|(i, _)| i)
        .collect();

    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let slices: Vec<&[AminoAcid]> = db.iter().map(Sequence::residues).collect();

    // A score threshold calibrated to the search space (roughly E≈1e-3).
    let ka = sapa_core::align::stats::KarlinAltschul::for_gaps(g);
    let threshold = ka.score_for_evalue(1e-3, query.len(), db.total_residues());

    let sw_found: Vec<usize> = slices
        .iter()
        .enumerate()
        .filter(|(_, s)| sw::score(query.residues(), s, &m, g) >= threshold)
        .map(|(i, _)| i)
        .collect();

    let widx = blast::WordIndex::build(query.residues(), &m, 11);
    let blast_res = blast::search(
        &widx,
        slices.iter().copied(),
        &m,
        g,
        &blast::BlastParams::default(),
        500,
    );
    let blast_found: Vec<usize> = blast_res
        .hits()
        .iter()
        .filter(|h| h.score >= threshold)
        .map(|h| h.seq_index)
        .collect();

    let kidx = fasta::KtupIndex::build(query.residues(), 2);
    let fasta_res = fasta::search(
        &kidx,
        slices.iter().copied(),
        &m,
        g,
        &fasta::FastaParams::default(),
        500,
    );
    let fasta_found: Vec<usize> = fasta_res
        .hits()
        .iter()
        .filter(|h| h.score >= threshold)
        .map(|h| h.seq_index)
        .collect();

    let hit = |found: &[usize]| truth.iter().filter(|t| found.contains(t)).count();
    Recall {
        sw: hit(&sw_found),
        blast: hit(&blast_found),
        fasta: hit(&fasta_found),
        planted: truth.len(),
    }
}

#[test]
fn everyone_finds_close_homologs() {
    let r = measure(0.8, 31);
    assert!(r.planted > 0);
    assert_eq!(r.sw, r.planted, "SW missed close homologs");
    assert_eq!(r.blast, r.planted, "BLAST missed close homologs");
    assert_eq!(r.fasta, r.planted, "FASTA missed close homologs");
}

#[test]
fn smith_waterman_is_most_sensitive_on_remote_homologs() {
    // At ~40% identity the heuristics start losing hits; SW (the
    // rigorous algorithm) must dominate both.
    let mut sw_total = 0usize;
    let mut blast_total = 0usize;
    let mut fasta_total = 0usize;
    let mut planted = 0usize;
    for seed in [41, 42, 43] {
        let r = measure(0.4, seed);
        sw_total += r.sw;
        blast_total += r.blast;
        fasta_total += r.fasta;
        planted += r.planted;
    }
    assert!(planted >= 10, "too few homologs planted: {planted}");
    assert!(
        sw_total >= blast_total,
        "SW {sw_total} < BLAST {blast_total}"
    );
    assert!(
        sw_total >= fasta_total,
        "SW {sw_total} < FASTA {fasta_total}"
    );
    // And SW still finds a sizable fraction at 40% identity.
    assert!(
        sw_total * 2 >= planted,
        "SW recall too low: {sw_total}/{planted}"
    );
}
