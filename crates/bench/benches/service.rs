//! End-to-end service benchmark: request latency and throughput through
//! the whole daemon stack (TCP framing, admission, DRR dispatch, worker
//! pool, engine execution), not just the kernels.
//!
//! Three rounds, each against a fresh in-process daemon:
//!
//! * `clean` — mixed-engine, mixed-tenant traffic with everything
//!   healthy: the latency/throughput baseline.
//! * `fault` — the same traffic with the chaos plan armed at 5%: what
//!   per-subject quarantine costs, and proof the counters still balance
//!   under fire.
//! * `overload` — a deliberately tiny admission budget: measures that
//!   rejections are fast (a rejected request must cost microseconds,
//!   not a scan).
//!
//! Writes `BENCH_service.json` at the repository root (p50/p99 per
//! round, qps, rejection and quarantine counts); `--smoke` shrinks the
//! run and writes `BENCH_service_smoke.json` (gitignored) for CI. In
//! `--test` mode (cargo's bench-as-test) nothing is written.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sapa_core::fault::FaultPlan;
use sapa_service::json::{self, Json};
use sapa_service::{quiet_injected_panics, serve, Client, SearchParams, ServiceConfig, Snapshot};

const QUERIES: [&str; 3] = [
    "MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGE",
    "HEAGAWGHEEAEHGAWGHEEFGSATWLKMNPQRSTVWYAC",
    "PAWHEAEWHEAPAWHEAEKLMNPQRSTVWYACDEFGHIKL",
];
const ENGINES: [&str; 3] = ["striped", "blast", "fasta"];
const TIMEOUT: Duration = Duration::from_secs(60);

struct RoundResult {
    name: &'static str,
    sent: u64,
    results: u64,
    typed_errors: u64,
    wall: Duration,
    p50_us: u64,
    p99_us: u64,
    snapshot: Snapshot,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Drives `total` requests over `conns` closed-loop connections against
/// a fresh daemon built from `cfg`, and returns the latency/counter
/// digest for the round.
fn round(name: &'static str, cfg: ServiceConfig, total: u64, conns: u64) -> RoundResult {
    let server = serve(cfg).expect("bind bench daemon");
    let addr: SocketAddr = server.addr();
    let tallies = Arc::new(Mutex::new((0u64, 0u64))); // (results, typed errors)
    let started = Instant::now();
    let threads: Vec<_> = (0..conns)
        .map(|conn| {
            let tallies = Arc::clone(&tallies);
            thread::spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).expect("bench connect");
                let mut id = conn;
                while id < total {
                    let params = SearchParams {
                        id,
                        tenant: ["t0", "t1", "t2", "t3"][(id % 4) as usize],
                        engine: ENGINES[(id % 3) as usize],
                        query: QUERIES[(id % 3) as usize],
                        top_k: 10,
                        min_score: 1,
                        deadline_cells: None,
                        deadline_ms: None,
                    };
                    let reply = client
                        .search(&params)
                        .unwrap_or_else(|e| panic!("bench request {id} died: {e}"));
                    let v = json::parse(&reply).expect("bench reply parses");
                    match v.get("type").and_then(Json::as_str) {
                        Some("result") => tallies.lock().unwrap().0 += 1,
                        Some("error") => tallies.lock().unwrap().1 += 1,
                        other => panic!("bench reply type {other:?}: {reply}"),
                    }
                    id += conns;
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("bench client thread");
    }
    let wall = started.elapsed();

    // Latency pass: with throughput measured, re-time a serial sample of
    // requests for the percentile digest (closed-loop per-request
    // timing; queueing under the concurrent round is throughput's job).
    let mut lat = Vec::new();
    {
        let mut client = Client::connect(addr, TIMEOUT).expect("bench latency connect");
        let sample = (total / 4).clamp(16, 200);
        for id in 0..sample {
            let params = SearchParams {
                id: 1_000_000 + id,
                tenant: "lat",
                engine: ENGINES[(id % 3) as usize],
                query: QUERIES[(id % 3) as usize],
                top_k: 10,
                min_score: 1,
                deadline_cells: None,
                deadline_ms: None,
            };
            let t0 = Instant::now();
            // Any reply counts: in the overload round this times the
            // rejection path, which is exactly what we want there.
            let _ = client.search(&params).expect("latency request");
            lat.push(t0.elapsed().as_micros() as u64);
        }
    }
    lat.sort_unstable();

    let snapshot = server.shutdown();
    assert!(
        snapshot.balances(),
        "{name}: accounting broke: {snapshot:?}"
    );
    let (results, typed_errors) = *tallies.lock().unwrap();
    RoundResult {
        name,
        sent: total,
        results,
        typed_errors,
        wall,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        snapshot,
    }
}

fn round_json(r: &RoundResult) -> Json {
    let s = &r.snapshot;
    Json::obj(vec![
        ("round", Json::str(r.name)),
        ("sent", Json::num_u64(r.sent)),
        ("results", Json::num_u64(r.results)),
        ("typed_errors", Json::num_u64(r.typed_errors)),
        ("wall_s", Json::Num(r.wall.as_secs_f64())),
        (
            "qps",
            Json::Num(r.results as f64 / r.wall.as_secs_f64().max(1e-9)),
        ),
        ("p50_us", Json::num_u64(r.p50_us)),
        ("p99_us", Json::num_u64(r.p99_us)),
        ("submitted", Json::num_u64(s.submitted)),
        ("served_clean", Json::num_u64(s.served_clean)),
        ("rejected", Json::num_u64(s.rejected())),
        ("rejected_overloaded", Json::num_u64(s.rejected_overloaded)),
        (
            "quarantined_requests",
            Json::num_u64(s.quarantined_requests),
        ),
        (
            "quarantined_subjects",
            Json::num_u64(s.quarantined_subjects),
        ),
        ("balances", Json::Bool(s.balances())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let test_mode = args.iter().any(|a| a == "--test");
    quiet_injected_panics();

    let (total, conns, db_seqs) = if smoke || test_mode {
        (60, 4, 48)
    } else {
        (600, 8, 120)
    };
    let base = ServiceConfig {
        workers: 2,
        db_seqs,
        db_median_len: 60.0,
        ..ServiceConfig::default()
    };

    let clean = round("clean", base.clone(), total, conns);
    let fault = round(
        "fault",
        ServiceConfig {
            fault_plan: FaultPlan::new(2006, 0.05),
            ..base.clone()
        },
        total,
        conns,
    );
    // Overload: budget below a single scan's price, so every request is
    // rejected at the gate. Rejections must be fast — the p50 here is
    // the cost of saying no.
    let overload = round(
        "overload",
        ServiceConfig {
            budget_cells: 1,
            ..base
        },
        total.min(200),
        conns,
    );
    assert_eq!(
        overload.snapshot.rejected(),
        overload.snapshot.submitted,
        "the 1-cell budget must reject everything"
    );

    let rounds = [clean, fault, overload];
    for r in &rounds {
        println!(
            "{:>9}: {} sent, {} results, {} rejected, {} quarantined, \
             qps {:.1}, p50 {} us, p99 {} us",
            r.name,
            r.sent,
            r.results,
            r.snapshot.rejected(),
            r.snapshot.quarantined_requests,
            r.results as f64 / r.wall.as_secs_f64().max(1e-9),
            r.p50_us,
            r.p99_us,
        );
    }

    if test_mode {
        return;
    }
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let report = Json::obj(vec![
        ("bench", Json::str("service")),
        ("host_cpus", Json::num_u64(cpus as u64)),
        ("requests_per_round", Json::num_u64(total)),
        ("conns", Json::num_u64(conns)),
        ("db_seqs", Json::num_u64(db_seqs as u64)),
        (
            "engines",
            Json::Arr(ENGINES.iter().map(|e| Json::str(e)).collect()),
        ),
        ("rounds", Json::Arr(rounds.iter().map(round_json).collect())),
    ]);
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_service_smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json")
    };
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
