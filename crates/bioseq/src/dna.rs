//! Nucleotide sequences and the 2-bit packed database format.
//!
//! The paper's Listing 1 is NCBI blastn's hot loop: the nucleotide
//! database is stored four bases per byte, and the word finder unpacks
//! bases with the `READDB_UNPACK_BASE_{1..4}` macros while extending
//! hits. This module provides that representation — [`Nucleotide`],
//! [`DnaSequence`], and the packed [`PackedDna`] with the same
//! byte-layout and unpack accessors — plus a deterministic synthetic
//! DNA generator mirroring [`crate::db`].

use crate::rng::Xoshiro256;

/// One DNA base.
///
/// The 2-bit encoding (A=0, C=1, G=2, T=3) matches the NCBI packed
/// database format that the paper's Listing 1 unpacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Nucleotide {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Nucleotide {
    /// All four bases in encoding order.
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// The 2-bit code.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Reconstructs a base from its 2-bit code (masking to 2 bits).
    #[inline]
    pub const fn from_code(code: u8) -> Nucleotide {
        match code & 3 {
            0 => Nucleotide::A,
            1 => Nucleotide::C,
            2 => Nucleotide::G,
            _ => Nucleotide::T,
        }
    }

    /// Parses an IUPAC base letter (case-insensitive; `U` maps to `T`).
    pub fn from_char(c: char) -> Option<Nucleotide> {
        match c.to_ascii_uppercase() {
            'A' => Some(Nucleotide::A),
            'C' => Some(Nucleotide::C),
            'G' => Some(Nucleotide::G),
            'T' | 'U' => Some(Nucleotide::T),
            _ => None,
        }
    }

    /// The single-letter code.
    pub const fn to_char(self) -> char {
        match self {
            Nucleotide::A => 'A',
            Nucleotide::C => 'C',
            Nucleotide::G => 'G',
            Nucleotide::T => 'T',
        }
    }

    /// Watson-Crick complement.
    pub const fn complement(self) -> Nucleotide {
        match self {
            Nucleotide::A => Nucleotide::T,
            Nucleotide::T => Nucleotide::A,
            Nucleotide::C => Nucleotide::G,
            Nucleotide::G => Nucleotide::C,
        }
    }
}

impl std::fmt::Display for Nucleotide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An identified DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnaSequence {
    id: String,
    bases: Vec<Nucleotide>,
}

impl DnaSequence {
    /// Creates a sequence from bases.
    pub fn new(id: impl Into<String>, bases: Vec<Nucleotide>) -> Self {
        DnaSequence {
            id: id.into(),
            bases,
        }
    }

    /// Parses a base string.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidResidue`] at the first byte that
    /// is not an IUPAC base.
    pub fn from_str(id: impl Into<String>, text: &str) -> crate::Result<Self> {
        let mut bases = Vec::with_capacity(text.len());
        for (position, c) in text.chars().enumerate() {
            match Nucleotide::from_char(c) {
                Some(b) => bases.push(b),
                None => {
                    return Err(crate::Error::InvalidResidue {
                        byte: c as u8,
                        position,
                    })
                }
            }
        }
        Ok(DnaSequence::new(id, bases))
    }

    /// Stable identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The bases.
    pub fn bases(&self) -> &[Nucleotide] {
        &self.bases
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The reverse complement.
    pub fn reverse_complement(&self) -> DnaSequence {
        DnaSequence {
            id: format!("{}|rc", self.id),
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Packs into the NCBI 4-bases-per-byte representation.
    pub fn pack(&self) -> PackedDna {
        PackedDna::from_bases(&self.bases)
    }
}

impl std::fmt::Display for DnaSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A 2-bit packed DNA sequence: four bases per byte, first base in the
/// two most significant bits — NCBI's `ncbi2na` layout, the structure
/// the paper's Listing 1 walks with `READDB_UNPACK_BASE_{1..4}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedDna {
    bytes: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// Packs a base slice.
    pub fn from_bases(bases: &[Nucleotide]) -> Self {
        let mut bytes = vec![0u8; bases.len().div_ceil(4)];
        for (i, b) in bases.iter().enumerate() {
            bytes[i / 4] |= b.code() << (2 * (3 - (i % 4)));
        }
        PackedDna {
            bytes,
            len: bases.len(),
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bytes (the simulated database image the traced
    /// scanner loads from).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Base `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> Nucleotide {
        assert!(i < self.len, "base index {i} out of range {}", self.len);
        let byte = self.bytes[i / 4];
        Nucleotide::from_code(unpack_base(byte, 4 - (i % 4) as u8))
    }

    /// Unpacks all bases.
    pub fn unpack(&self) -> Vec<Nucleotide> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// `READDB_UNPACK_BASE_k(byte)` of the paper's Listing 1: extracts base
/// `k` (4 = most significant pair, 1 = least) from a packed byte.
///
/// # Panics
///
/// Panics if `k` is not in `1..=4`.
#[inline]
pub fn unpack_base(byte: u8, k: u8) -> u8 {
    assert!((1..=4).contains(&k), "base position must be 1..=4");
    (byte >> (2 * (k - 1))) & 3
}

/// Generates a deterministic random DNA sequence of `len` bases
/// (uniform composition).
pub fn random_dna(id: impl Into<String>, len: usize, seed: u64) -> DnaSequence {
    let mut rng = Xoshiro256::new(seed ^ 0xD7A);
    let bases = (0..len)
        .map(|_| Nucleotide::from_code(rng.next_u64() as u8))
        .collect();
    DnaSequence::new(id, bases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let s = DnaSequence::from_str("d", "ACGTacgtU").unwrap();
        assert_eq!(s.to_string(), "ACGTACGTT");
        assert!(DnaSequence::from_str("d", "ACGX").is_err());
    }

    #[test]
    fn complement_and_reverse_complement() {
        assert_eq!(Nucleotide::A.complement(), Nucleotide::T);
        assert_eq!(Nucleotide::G.complement(), Nucleotide::C);
        let s = DnaSequence::from_str("d", "AACGT").unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn packing_round_trips() {
        for text in ["", "A", "ACG", "ACGT", "ACGTTGCA", "ACGTTGCAT"] {
            let s = DnaSequence::from_str("d", text).unwrap();
            let packed = s.pack();
            assert_eq!(packed.len(), s.len());
            assert_eq!(packed.unpack(), s.bases());
            for (i, &b) in s.bases().iter().enumerate() {
                assert_eq!(packed.get(i), b, "{text} base {i}");
            }
        }
    }

    #[test]
    fn packed_layout_matches_ncbi2na() {
        // "ACGT" => A(00) C(01) G(10) T(11) => 0b00011011.
        let s = DnaSequence::from_str("d", "ACGT").unwrap();
        assert_eq!(s.pack().bytes(), &[0b0001_1011]);
    }

    #[test]
    fn unpack_base_macros() {
        let byte = 0b0001_1011; // ACGT
        assert_eq!(unpack_base(byte, 4), 0); // A
        assert_eq!(unpack_base(byte, 3), 1); // C
        assert_eq!(unpack_base(byte, 2), 2); // G
        assert_eq!(unpack_base(byte, 1), 3); // T
    }

    #[test]
    #[should_panic(expected = "base position")]
    fn unpack_base_bounds() {
        let _ = unpack_base(0, 5);
    }

    #[test]
    fn random_dna_is_deterministic_and_balanced() {
        let a = random_dna("r", 4000, 9);
        assert_eq!(a, random_dna("r", 4000, 9));
        let mut counts = [0usize; 4];
        for &b in a.bases() {
            counts[b.code() as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed composition {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_get_bounds_checked() {
        let s = DnaSequence::from_str("d", "ACG").unwrap();
        let _ = s.pack().get(3);
    }
}
