//! Property-based tests of the cycle-accurate simulator: for random
//! (but well-formed) traces, structural invariants must hold under any
//! preset configuration.

use proptest::prelude::*;
use sapa_core::cpu::config::{BranchConfig, SimConfig};
use sapa_core::cpu::Simulator;
use sapa_core::isa::reg;
use sapa_core::isa::trace::{Trace, Tracer};

/// A tiny random "program": a list of abstract ops turned into a trace.
#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8),
    Load(u8, u32),
    Store(u8, u32),
    Branch(bool),
    Vec(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..16).prop_map(|(d, s)| Op::Alu(d, s)),
        (0u8..16, 0u32..0x4000).prop_map(|(d, a)| Op::Load(d, a)),
        (0u8..16, 0u32..0x4000).prop_map(|(s, a)| Op::Store(s, a)),
        any::<bool>().prop_map(Op::Branch),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Op::Vec(d, s)),
    ]
}

fn build_trace(ops: &[Op]) -> Trace {
    let mut t = Tracer::new();
    for (i, op) in ops.iter().enumerate() {
        let site = (i % 37) as u32;
        match *op {
            Op::Alu(d, s) => t.ialu(site, reg::gpr(d), &[reg::gpr(s)]),
            Op::Load(d, a) => t.iload(site, reg::gpr(d), 0x1000_0000 + a, 4, &[reg::gpr(1)]),
            Op::Store(s, a) => t.istore(site, 0x1000_0000 + a, 4, &[reg::gpr(s)]),
            Op::Branch(taken) => t.branch(site, taken, 0, &[reg::gpr(2)]),
            Op::Vec(d, s) => t.vsimple(site, reg::vr(d), &[reg::vr(s)]),
        }
    }
    t.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_instruction_retires_exactly_once(
        ops in proptest::collection::vec(op_strategy(), 0..400),
    ) {
        let trace = build_trace(&ops);
        for cfg in [SimConfig::four_way(), SimConfig::eight_way(), SimConfig::sixteen_way()] {
            let r = Simulator::new(cfg).run(&trace);
            prop_assert_eq!(r.instructions as usize, ops.len());
        }
    }

    #[test]
    fn cycles_bound_below_by_width_and_above_by_worst_case(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let trace = build_trace(&ops);
        let cfg = SimConfig::four_way();
        let retire_width = cfg.cpu.retire_width as u64;
        let r = Simulator::new(cfg).run(&trace);
        let n = ops.len() as u64;
        prop_assert!(r.cycles >= n / retire_width);
        // Worst case: every instruction serial through memory.
        prop_assert!(r.cycles <= n * 400 + 10_000, "cycles {}", r.cycles);
    }

    #[test]
    fn stall_cycles_never_exceed_total_cycles(
        ops in proptest::collection::vec(op_strategy(), 0..300),
    ) {
        let trace = build_trace(&ops);
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        prop_assert!(r.traumas.total() <= r.cycles);
    }

    #[test]
    fn perfect_bp_never_slower(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let trace = build_trace(&ops);
        let real = Simulator::new(SimConfig::four_way()).run(&trace);
        let mut cfg = SimConfig::four_way();
        cfg.branch = BranchConfig::perfect();
        let perfect = Simulator::new(cfg).run(&trace);
        prop_assert!(perfect.cycles <= real.cycles,
            "perfect {} > real {}", perfect.cycles, real.cycles);
    }

    #[test]
    fn wider_machines_never_lose_much(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        // Wider presets have strictly more of every resource; allow a
        // small tolerance for scheduling-order artifacts.
        let trace = build_trace(&ops);
        let four = Simulator::new(SimConfig::four_way()).run(&trace);
        let sixteen = Simulator::new(SimConfig::sixteen_way()).run(&trace);
        prop_assert!(
            sixteen.cycles as f64 <= four.cycles as f64 * 1.10 + 50.0,
            "16-way {} vs 4-way {}", sixteen.cycles, four.cycles
        );
    }

    #[test]
    fn cache_stats_are_consistent(
        ops in proptest::collection::vec(op_strategy(), 0..300),
    ) {
        let trace = build_trace(&ops);
        let mem_ops = trace.stats().mem_ops();
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        prop_assert_eq!(r.dl1.accesses, mem_ops);
        prop_assert!(r.dl1.misses <= r.dl1.accesses);
        prop_assert!(r.l2.misses <= r.l2.accesses);
    }

    #[test]
    fn branch_stats_match_trace(
        ops in proptest::collection::vec(op_strategy(), 0..300),
    ) {
        let trace = build_trace(&ops);
        let cond = trace
            .insts()
            .iter()
            .filter(|i| i.is_cond_branch())
            .count() as u64;
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        prop_assert_eq!(r.bp_predictions, cond);
        prop_assert!(r.bp_mispredictions <= r.bp_predictions);
    }

    #[test]
    fn occupancy_histograms_account_every_cycle(
        ops in proptest::collection::vec(op_strategy(), 0..300),
    ) {
        let trace = build_trace(&ops);
        let r = Simulator::new(SimConfig::four_way()).run(&trace);
        let inflight: u64 = r.inflight_occupancy.as_slice().iter().sum();
        prop_assert_eq!(inflight, r.cycles);
        let retq: u64 = r.retireq_occupancy.as_slice().iter().sum();
        prop_assert_eq!(retq, r.cycles);
    }
}
