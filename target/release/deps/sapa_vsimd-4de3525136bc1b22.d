/root/repo/target/release/deps/sapa_vsimd-4de3525136bc1b22.d: crates/vsimd/src/lib.rs

/root/repo/target/release/deps/sapa_vsimd-4de3525136bc1b22: crates/vsimd/src/lib.rs

crates/vsimd/src/lib.rs:
