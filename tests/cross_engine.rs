//! Cross-engine consistency: the traced workloads must report exactly
//! the same biology as the reference algorithms, across a spread of
//! synthetic databases — and every registry [`Engine`] must agree with
//! scalar Smith-Waterman through the unified search API.

use sapa_core::align::engine::{Engine, Prefilter, SearchRequest};
use sapa_core::align::{blast as ref_blast, fasta as ref_fasta, sw as ref_sw};
use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_core::workloads::{blast, fasta, ssearch, sw_simd};

fn setup(seed: u64, n: usize) -> (Vec<AminoAcid>, Vec<sapa_core::bioseq::Sequence>) {
    let queries = QuerySet::paper();
    let query = queries.by_accession("P02232").unwrap(); // Globin, 143 aa
    let db = DatabaseBuilder::new()
        .seed(seed)
        .sequences(n)
        .median_length(120.0)
        .homolog_template(query.clone())
        .homolog_fraction(0.1)
        .build();
    (query.residues().to_vec(), db.sequences().to_vec())
}

#[test]
fn traced_ssearch_equals_reference_sw_on_every_subject() {
    let (q, db) = setup(11, 25);
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let run = ssearch::run(&q, &db, &m, g, 500);
    for (i, s) in db.iter().enumerate() {
        assert_eq!(
            run.scores[i],
            ref_sw::score(&q, s.residues(), &m, g),
            "subject {i}"
        );
    }
}

#[test]
fn traced_simd_sw_equals_reference_at_both_widths() {
    let (q, db) = setup(12, 15);
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let r128 = sw_simd::run::<8>(&q, &db, &m, g, 500);
    let r256 = sw_simd::run::<16>(&q, &db, &m, g, 500);
    for (i, s) in db.iter().enumerate() {
        let expect = ref_sw::score(&q, s.residues(), &m, g);
        assert_eq!(r128.scores[i], expect, "vmx128 subject {i}");
        assert_eq!(r256.scores[i], expect, "vmx256 subject {i}");
    }
}

#[test]
fn traced_blast_equals_reference_search() {
    let (q, db) = setup(13, 40);
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let p = ref_blast::BlastParams::default();
    let traced = blast::run(&q, &db, &m, g, &p, 500);
    let idx = ref_blast::WordIndex::build(&q, &m, p.threshold);
    let slices: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
    let reference = ref_blast::search(&idx, slices, &m, g, &p, 500);
    assert_eq!(traced.hits, reference.hits().to_vec());
}

#[test]
fn traced_fasta_equals_reference_scores() {
    let (q, db) = setup(14, 40);
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();
    let p = ref_fasta::FastaParams::default();
    let traced = fasta::run(&q, &db, &m, g, &p, 500);
    let idx = ref_fasta::KtupIndex::build(&q, p.ktup);
    for (i, s) in db.iter().enumerate() {
        let expect = ref_fasta::score_subject(&idx, s.residues(), &m, g, &p);
        assert_eq!(traced.scores[i], expect, "subject {i}");
    }
}

#[test]
fn heuristics_rank_strong_homologs_like_full_sw() {
    // On high-identity homologs, all three searches must agree on the
    // top hit (the sensitivity differences the paper discusses appear
    // at low identity, not at 90%).
    let queries = QuerySet::paper();
    let query = queries.by_accession("P01111").unwrap();
    let db = DatabaseBuilder::new()
        .seed(15)
        .sequences(60)
        .homolog_template(query.clone())
        .homolog_fraction(0.05)
        .homolog_identity(0.9)
        .build();
    let q = query.residues().to_vec();
    let m = SubstitutionMatrix::blosum62();
    let g = GapPenalties::paper();

    let ss = ssearch::run(&q, db.sequences(), &m, g, 10);
    let bl = blast::run(
        &q,
        db.sequences(),
        &m,
        g,
        &ref_blast::BlastParams::default(),
        10,
    );
    let fa = fasta::run(
        &q,
        db.sequences(),
        &m,
        g,
        &ref_fasta::FastaParams::default(),
        10,
    );

    let top_ss = ss.hits.first().map(|h| h.seq_index);
    assert!(top_ss.is_some(), "SW found nothing");
    assert_eq!(
        bl.hits.first().map(|h| h.seq_index),
        top_ss,
        "BLAST top hit"
    );
    assert_eq!(
        fa.hits.first().map(|h| h.seq_index),
        top_ss,
        "FASTA top hit"
    );
}

/// One shared request over the standard small inputs for the registry
/// sweep tests below.
fn registry_fixture() -> (sapa_core::workloads::StandardInputs, Vec<AminoAcid>) {
    let inputs = sapa_core::workloads::StandardInputs::small();
    let q = inputs.query.residues().to_vec();
    (inputs, q)
}

#[test]
fn every_engine_agrees_with_scalar_sw() {
    // The equivalence matrix: all four exact engines report identical
    // ranked hits; the heuristics may miss hits (that is their design)
    // but every hit they do report must rescore to its claimed value
    // under the engine's own scorer.
    let (inputs, q) = registry_fixture();
    let subjects: Vec<&[AminoAcid]> = inputs.db.iter().map(|s| s.residues()).collect();
    let req = SearchRequest {
        query: &q,
        matrix: &inputs.matrix,
        gaps: inputs.gaps,
        top_k: inputs.keep,
        min_score: 1,
        deadline: None,
        report_alignments: false,
        prefilter: Prefilter::Off,
    };
    let reference = Engine::Sw.search(&req, &subjects, 1);
    assert!(!reference.hits.is_empty(), "SW found nothing");

    for engine in Engine::ALL {
        let resp = engine.search(&req, &subjects, 1);
        if engine.is_exact() {
            assert_eq!(resp.hits, reference.hits, "{engine} differs from sw");
        } else {
            for h in &resp.hits {
                let subject = subjects[h.seq_index];
                let rescored = match engine {
                    Engine::Fasta => {
                        let idx =
                            ref_fasta::KtupIndex::build(&q, ref_fasta::FastaParams::default().ktup);
                        let s = ref_fasta::score_subject(
                            &idx,
                            subject,
                            &inputs.matrix,
                            inputs.gaps,
                            &ref_fasta::FastaParams::default(),
                        );
                        s.opt.max(s.initn)
                    }
                    Engine::Blast => {
                        let p = ref_blast::BlastParams::default();
                        let idx = ref_blast::WordIndex::build(&q, &inputs.matrix, p.threshold);
                        ref_blast::score_subject(&idx, subject, &inputs.matrix, inputs.gaps, &p)
                    }
                    _ => unreachable!(),
                };
                assert_eq!(
                    h.score, rescored,
                    "{engine} hit on subject {} does not rescore",
                    h.seq_index
                );
            }
        }
    }
}

#[test]
fn ranked_results_are_thread_count_invariant() {
    // The full SearchResponse — hit order, scores, E-values, stats —
    // must be identical whether the scan ran on 1, 2, or 4 workers.
    let (inputs, q) = registry_fixture();
    let subjects: Vec<&[AminoAcid]> = inputs.db.iter().map(|s| s.residues()).collect();
    let req = SearchRequest {
        query: &q,
        matrix: &inputs.matrix,
        gaps: inputs.gaps,
        top_k: inputs.keep,
        min_score: 1,
        deadline: None,
        report_alignments: false,
        prefilter: Prefilter::Off,
    };
    for engine in Engine::ALL {
        let serial = engine.search(&req, &subjects, 1);
        for threads in [2usize, 4] {
            let mut parallel = engine.search(&req, &subjects, threads);
            assert_eq!(parallel.stats.threads, threads);
            parallel.stats.threads = serial.stats.threads;
            assert_eq!(parallel, serial, "{engine} differs at {threads} threads");
        }
    }
}
