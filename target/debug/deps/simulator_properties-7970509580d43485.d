/root/repo/target/debug/deps/simulator_properties-7970509580d43485.d: crates/core/../../tests/simulator_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_properties-7970509580d43485.rmeta: crates/core/../../tests/simulator_properties.rs Cargo.toml

crates/core/../../tests/simulator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
