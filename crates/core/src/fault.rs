//! Deterministic fault injection for chaos-testing the suite.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, so this module makes failure a first-class, *reproducible*
//! input: a [`FaultPlan`] names which fault sites are armed, at what
//! rate, and under which seed, and every trigger decision is a pure
//! function of `(seed, site, key)`. The `key` is derived from the
//! *content* being processed ([`subject_key`] hashes the subject's
//! residues), never from a worker index or arrival order — so the same
//! plan faults the same subjects at 1, 2, or 4 threads, and a chaos
//! test can assert byte-identical quarantine reports across thread
//! counts.
//!
//! Six sites cover the suite's failure surface:
//!
//! * [`FaultSite::WorkerPanic`] — [`FaultyEngine`] panics inside
//!   `score_one`, exercising the search pipeline's `catch_unwind`
//!   quarantine ([`crate::align::parallel::engine_scores`]).
//! * [`FaultSite::RescoreStorm`] — [`FaultyEngine`] scores the subject
//!   twice and reports the extra pass through `rescored`, stressing the
//!   fallback-accounting path without changing any score.
//! * [`FaultSite::TraceCorrupt`] — [`corrupt_packed`] flips seeded
//!   bytes in a [`PackedTrace`] heap, exercising
//!   [`PackedTrace::check`]'s structural/checksum detection and the
//!   simulator's `try_run_packed` gate.
//! * [`FaultSite::FastaTruncate`] — [`truncate_fasta`] cuts a FASTA
//!   byte stream short, exercising parser error paths.
//! * [`FaultSite::FrameGarble`] — [`garble_frame`] mutates one service
//!   protocol frame (truncation, byte flips, garbage), exercising the
//!   alignment daemon's typed-error protocol handling.
//! * [`FaultSite::ClientAbort`] — a service client (the load
//!   generator's abuse mode) drops its connection mid-exchange,
//!   exercising the daemon's half-closed-socket and write-error paths.
//!
//! A disabled plan ([`FaultPlan::DISABLED`], or any plan with
//! `rate <= 0`) costs one branch per decision point and allocates
//! nothing, so production code can thread a plan through
//! unconditionally.

use sapa_align::engine::AlignmentEngine;
use sapa_bioseq::rng::SplitMix64;
use sapa_bioseq::AminoAcid;
use sapa_isa::PackedTrace;

/// A named place where a [`FaultPlan`] may inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside an engine's `score_one` (worker isolation).
    WorkerPanic,
    /// Redundant extra scoring pass counted as a rescore (accounting).
    RescoreStorm,
    /// Byte flips in a packed trace heap (decode hardening).
    TraceCorrupt,
    /// Truncation of a FASTA byte stream (parser hardening).
    FastaTruncate,
    /// Corruption of one service protocol frame before it is sent —
    /// the abusive-client simulation driven by [`garble_frame`]
    /// (daemon protocol hardening).
    FrameGarble,
    /// A service client dropping its connection mid-exchange, after
    /// submitting a request but before (fully) reading the response
    /// (daemon connection hardening).
    ClientAbort,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::WorkerPanic,
        FaultSite::RescoreStorm,
        FaultSite::TraceCorrupt,
        FaultSite::FastaTruncate,
        FaultSite::FrameGarble,
        FaultSite::ClientAbort,
    ];

    fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Per-site salt so the same key triggers independently per site.
    fn salt(self) -> u64 {
        // Arbitrary odd constants, fixed forever for reproducibility.
        match self {
            FaultSite::WorkerPanic => 0x9E37_79B9_7F4A_7C15,
            FaultSite::RescoreStorm => 0xC2B2_AE3D_27D4_EB4F,
            FaultSite::TraceCorrupt => 0x1656_67B1_9E37_79F9,
            FaultSite::FastaTruncate => 0x27D4_EB2F_1656_67C5,
            FaultSite::FrameGarble => 0xA076_1D64_78BD_642F,
            FaultSite::ClientAbort => 0xE703_7ED1_A0B4_28DB,
        }
    }
}

/// A seeded, rate-limited set of armed fault sites.
///
/// `Copy` and three words wide, so it is cheap to thread through every
/// layer. Triggering is deterministic: see [`FaultPlan::triggers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every trigger decision.
    pub seed: u64,
    /// Per-decision trigger probability in `[0, 1]`. Non-positive
    /// rates disable the plan outright.
    pub rate: f64,
    sites: u8,
}

impl FaultPlan {
    /// The plan that never fires (the production default).
    pub const DISABLED: FaultPlan = FaultPlan {
        seed: 0,
        rate: 0.0,
        sites: 0,
    };

    /// A plan with **all** sites armed at `rate` under `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        let mut sites = 0;
        for s in FaultSite::ALL {
            sites |= s.bit();
        }
        FaultPlan { seed, rate, sites }
    }

    /// A plan arming exactly one `site`.
    pub fn only(seed: u64, rate: f64, site: FaultSite) -> Self {
        FaultPlan {
            seed,
            rate,
            sites: site.bit(),
        }
    }

    /// Whether `site` is armed (ignores rate).
    pub fn armed(&self, site: FaultSite) -> bool {
        self.sites & site.bit() != 0
    }

    /// Whether this plan can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.sites == 0 || self.rate <= 0.0
    }

    /// Decides whether the fault at `site` fires for work item `key`.
    ///
    /// Pure in `(self, site, key)`: no global state, no thread or
    /// ordering dependence. The decision hashes `seed`, the site's
    /// salt, and `key` through SplitMix64 and compares the top 53 bits
    /// against `rate`, so over many keys the empirical rate converges
    /// to the requested one.
    pub fn triggers(&self, site: FaultSite, key: u64) -> bool {
        if self.is_disabled() || !self.armed(site) {
            return false;
        }
        let mixed = SplitMix64::new(self.seed ^ site.salt() ^ key).next_u64();
        let u = (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }
}

/// Content hash of a subject sequence (FNV-1a over residue bytes).
///
/// Used as the trigger key for per-subject fault sites so decisions
/// follow the *data*, not its position in the database or which worker
/// happened to claim it.
pub fn subject_key(subject: &[AminoAcid]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &aa in subject {
        h ^= u64::from(aa as u8);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-worker scratch for a [`FaultyEngine`]: the inner engine's
/// workspace plus a count of injected rescore storms.
pub struct FaultyScratch<W> {
    /// The wrapped engine's own workspace.
    pub inner: W,
    /// Extra scoring passes injected by [`FaultSite::RescoreStorm`].
    pub storms: usize,
}

/// An [`AlignmentEngine`] decorator that injects faults per subject.
///
/// Scores are never altered: a rescore storm runs the inner kernel a
/// second time (and asserts the result matches), and a worker panic
/// aborts the subject before any score exists. Subjects the plan does
/// not fault are scored bit-identically to the bare inner engine.
pub struct FaultyEngine<E> {
    inner: E,
    plan: FaultPlan,
}

impl<E> FaultyEngine<E> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultyEngine { inner, plan }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: AlignmentEngine> AlignmentEngine for FaultyEngine<E> {
    type Workspace = FaultyScratch<E::Workspace>;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn workspace(&self) -> Self::Workspace {
        FaultyScratch {
            inner: self.inner.workspace(),
            storms: 0,
        }
    }

    fn score_one(&self, ws: &mut Self::Workspace, subject: &[AminoAcid]) -> i32 {
        let key = subject_key(subject);
        if self.plan.triggers(FaultSite::WorkerPanic, key) {
            panic!(
                "injected fault: worker panic on {}-residue subject (key {key:#018x})",
                subject.len()
            );
        }
        let score = self.inner.score_one(&mut ws.inner, subject);
        if self.plan.triggers(FaultSite::RescoreStorm, key) {
            ws.storms += 1;
            let again = self.inner.score_one(&mut ws.inner, subject);
            assert_eq!(
                again, score,
                "injected rescore disagreed with original score"
            );
        }
        score
    }

    fn rescored(&self, ws: &Self::Workspace) -> usize {
        self.inner.rescored(&ws.inner) + ws.storms
    }

    fn cost_len(&self, subject_len: usize) -> u64 {
        self.inner.cost_len(subject_len)
    }
}

/// Returns a copy of `trace` with seeded byte corruption applied.
///
/// Flips `ceil(rate × heap_bytes)` bytes (at least one, when the site
/// is armed and the heap is non-empty) at SplitMix64-chosen offsets
/// with guaranteed-nonzero XOR masks. The stored checksum is *not*
/// refreshed, so [`PackedTrace::check`] is guaranteed to reject the
/// result. Returns an unmodified clone when the plan is disabled or
/// [`FaultSite::TraceCorrupt`] is unarmed.
pub fn corrupt_packed(trace: &PackedTrace, plan: &FaultPlan) -> PackedTrace {
    let bytes = trace.heap_bytes();
    if plan.is_disabled() || !plan.armed(FaultSite::TraceCorrupt) || bytes == 0 {
        return trace.clone();
    }
    let flips = ((bytes as f64 * plan.rate).ceil() as usize).clamp(1, bytes);
    let mut rng = SplitMix64::new(plan.seed ^ FaultSite::TraceCorrupt.salt());
    let mut out = trace.clone();
    for _ in 0..flips {
        let r = rng.next_u64();
        let offset = (r % bytes as u64) as usize;
        let xor = ((r >> 32) as u8) | 1; // never a no-op flip
        out = out.with_corrupted_byte(offset, xor);
    }
    out
}

/// Returns `bytes` truncated at a seeded cut point, simulating a FASTA
/// file whose tail was lost mid-write.
///
/// The cut keeps at least one byte (and at most `len - 1`, so the
/// result is always a strict prefix of non-empty input). Returns the
/// input unchanged when the plan is disabled or
/// [`FaultSite::FastaTruncate`] is unarmed.
pub fn truncate_fasta(bytes: &[u8], plan: &FaultPlan) -> Vec<u8> {
    if plan.is_disabled() || !plan.armed(FaultSite::FastaTruncate) || bytes.len() < 2 {
        return bytes.to_vec();
    }
    let mut rng = SplitMix64::new(plan.seed ^ FaultSite::FastaTruncate.salt());
    let cut = 1 + (rng.next_u64() % (bytes.len() as u64 - 1)) as usize;
    bytes[..cut].to_vec()
}

/// Deterministically mutates one service protocol frame, simulating an
/// abusive or broken client, when [`FaultSite::FrameGarble`] fires for
/// `key` (callers use the request id, so the same traffic schedule
/// garbles the same frames on every run).
///
/// Returns `None` when the site does not fire — send the frame as-is —
/// or `Some(mutated)` with one seeded mutation applied: a truncation, a
/// burst of byte flips, an insertion of garbage bytes, or a wholesale
/// replacement with junk. The mutated frame never contains `\n` or
/// `\r`, so it still parses as exactly one line of a line-delimited
/// protocol and the receiver must answer it with exactly one typed
/// error (the accounting chaos tests depend on that one-to-one-ness).
pub fn garble_frame(frame: &[u8], plan: &FaultPlan, key: u64) -> Option<Vec<u8>> {
    if !plan.triggers(FaultSite::FrameGarble, key) {
        return None;
    }
    let mut rng = SplitMix64::new(plan.seed ^ FaultSite::FrameGarble.salt() ^ key);
    // Maps any byte into printable non-newline space.
    fn junk(b: u8) -> u8 {
        b' ' + (b % 94)
    }
    let mut out = frame.to_vec();
    match rng.next_u64() % 4 {
        0 => {
            // Truncate: anywhere from an empty frame to all-but-one byte.
            let cut = (rng.next_u64() % out.len().max(1) as u64) as usize;
            out.truncate(cut);
        }
        1 => {
            // Flip 1–4 bytes in place.
            for _ in 0..1 + rng.next_u64() % 4 {
                if out.is_empty() {
                    break;
                }
                let r = rng.next_u64();
                let at = (r % out.len() as u64) as usize;
                out[at] = junk((r >> 32) as u8);
            }
        }
        2 => {
            // Insert a short run of garbage at a seeded offset.
            let r = rng.next_u64();
            let at = (r % (out.len() as u64 + 1)) as usize;
            let run: Vec<u8> = (0..2 + (r >> 32) % 7)
                .map(|i| junk((r >> i) as u8))
                .collect();
            out.splice(at..at, run);
        }
        _ => {
            // Replace the whole frame with printable junk.
            let len = 1 + (rng.next_u64() % 40) as usize;
            out = (0..len).map(|_| junk(rng.next_u64() as u8)).collect();
        }
    }
    debug_assert!(!out.contains(&b'\n') && !out.contains(&b'\r'));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_align::engine::SwEngine;
    use sapa_bioseq::matrix::GapPenalties;
    use sapa_bioseq::{Sequence, SubstitutionMatrix};

    fn residues(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn score_once<E: AlignmentEngine>(engine: &E, subject: &[AminoAcid]) -> i32 {
        let mut ws = engine.workspace();
        engine.score_one(&mut ws, subject)
    }

    #[test]
    fn disabled_plan_never_triggers() {
        let plan = FaultPlan::DISABLED;
        for site in FaultSite::ALL {
            for key in 0..1000 {
                assert!(!plan.triggers(site, key));
            }
        }
        assert!(plan.is_disabled());
    }

    #[test]
    fn trigger_rate_is_approximately_honoured() {
        let plan = FaultPlan::new(42, 0.05);
        let n = 20_000;
        let hits = (0..n)
            .filter(|&k| plan.triggers(FaultSite::WorkerPanic, k))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn sites_trigger_independently() {
        let plan = FaultPlan::new(7, 0.5);
        let panic_set: Vec<u64> = (0..64)
            .filter(|&k| plan.triggers(FaultSite::WorkerPanic, k))
            .collect();
        let storm_set: Vec<u64> = (0..64)
            .filter(|&k| plan.triggers(FaultSite::RescoreStorm, k))
            .collect();
        assert_ne!(panic_set, storm_set);
    }

    #[test]
    fn only_arms_exactly_one_site() {
        let plan = FaultPlan::only(1, 1.0, FaultSite::TraceCorrupt);
        assert!(plan.armed(FaultSite::TraceCorrupt));
        assert!(!plan.armed(FaultSite::WorkerPanic));
        assert!(plan.triggers(FaultSite::TraceCorrupt, 9));
        assert!(!plan.triggers(FaultSite::WorkerPanic, 9));
    }

    #[test]
    fn subject_key_is_content_not_position() {
        let a = residues("MKWVTFISLL");
        let b = residues("MKWVTFISLL");
        let c = residues("MKWVTFISLK");
        assert_eq!(subject_key(&a), subject_key(&b));
        assert_ne!(subject_key(&a), subject_key(&c));
    }

    #[test]
    fn faulty_engine_scores_match_inner_when_disabled() {
        let query = residues("HEAGAWGHEE");
        let subject = residues("PAWHEAE");
        let matrix = SubstitutionMatrix::blosum62();
        let inner = SwEngine::new(&query, &matrix, GapPenalties::paper());
        let bare = score_once(&inner, &subject);
        let faulty = FaultyEngine::new(
            SwEngine::new(&query, &matrix, GapPenalties::paper()),
            FaultPlan::DISABLED,
        );
        let mut ws = faulty.workspace();
        assert_eq!(faulty.score_one(&mut ws, &subject), bare);
        assert_eq!(faulty.rescored(&ws), 0);
    }

    #[test]
    fn rescore_storm_preserves_score_and_counts() {
        let query = residues("HEAGAWGHEE");
        let subject = residues("PAWHEAE");
        let matrix = SubstitutionMatrix::blosum62();
        let bare = score_once(
            &SwEngine::new(&query, &matrix, GapPenalties::paper()),
            &subject,
        );
        let faulty = FaultyEngine::new(
            SwEngine::new(&query, &matrix, GapPenalties::paper()),
            FaultPlan::only(3, 1.0, FaultSite::RescoreStorm),
        );
        let mut ws = faulty.workspace();
        assert_eq!(faulty.score_one(&mut ws, &subject), bare);
        assert_eq!(faulty.rescored(&ws), 1);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn armed_worker_panic_fires() {
        let query = residues("HEAGAWGHEE");
        let subject = residues("PAWHEAE");
        let matrix = SubstitutionMatrix::blosum62();
        let faulty = FaultyEngine::new(
            SwEngine::new(&query, &matrix, GapPenalties::paper()),
            FaultPlan::only(5, 1.0, FaultSite::WorkerPanic),
        );
        let mut ws = faulty.workspace();
        faulty.score_one(&mut ws, &subject);
    }

    fn sample_packed(len: usize) -> PackedTrace {
        use sapa_isa::{reg, Tracer};
        let mut t = Tracer::new();
        for i in 0..len {
            match i % 3 {
                0 => t.ialu(i as u32, reg::gpr(1), &[reg::gpr(2)]),
                1 => t.iload(i as u32, reg::gpr(3), 0x1000_0040, 4, &[reg::gpr(1)]),
                _ => t.branch(i as u32, i % 2 == 0, 0, &[reg::gpr(3)]),
            }
        }
        PackedTrace::from_trace(&t.finish())
    }

    #[test]
    fn corrupt_packed_is_deterministic_and_detected() {
        let trace = sample_packed(64);
        let plan = FaultPlan::new(11, 0.02);
        let a = corrupt_packed(&trace, &plan);
        let b = corrupt_packed(&trace, &plan);
        assert_eq!(a, b, "corruption must be reproducible");
        assert!(a.check().is_err(), "corruption must be detected");
        assert!(trace.check().is_ok(), "original untouched");
    }

    #[test]
    fn corrupt_packed_disabled_is_identity() {
        let trace = sample_packed(6);
        let out = corrupt_packed(&trace, &FaultPlan::DISABLED);
        assert_eq!(out, trace);
        assert!(out.check().is_ok());
    }

    #[test]
    fn garble_frame_is_deterministic_single_line_and_rate_gated() {
        let frame = br#"{"op":"search","id":7,"tenant":"t0","query":"HEAGAWGHEE"}"#;
        let armed = FaultPlan::only(21, 1.0, FaultSite::FrameGarble);
        for key in 0..64u64 {
            let a = garble_frame(frame, &armed, key).expect("rate 1.0 must fire");
            let b = garble_frame(frame, &armed, key).expect("rate 1.0 must fire");
            assert_eq!(a, b, "key {key}: garbling must be reproducible");
            assert!(
                !a.contains(&b'\n') && !a.contains(&b'\r'),
                "key {key}: a garbled frame must stay one line"
            );
        }
        // Different keys produce different mutations (not all identical).
        let distinct: std::collections::HashSet<Vec<u8>> = (0..64u64)
            .filter_map(|k| garble_frame(frame, &armed, k))
            .collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct mutations",
            distinct.len()
        );
        // Disabled or unarmed plans never mutate.
        assert_eq!(garble_frame(frame, &FaultPlan::DISABLED, 3), None);
        let other = FaultPlan::only(21, 1.0, FaultSite::ClientAbort);
        assert_eq!(garble_frame(frame, &other, 3), None);
    }

    #[test]
    fn service_sites_are_registered_and_independent() {
        assert_eq!(FaultSite::ALL.len(), 6);
        let plan = FaultPlan::new(17, 0.5);
        assert!(plan.armed(FaultSite::FrameGarble));
        assert!(plan.armed(FaultSite::ClientAbort));
        let garbles: Vec<u64> = (0..128)
            .filter(|&k| plan.triggers(FaultSite::FrameGarble, k))
            .collect();
        let aborts: Vec<u64> = (0..128)
            .filter(|&k| plan.triggers(FaultSite::ClientAbort, k))
            .collect();
        assert_ne!(garbles, aborts, "sites must trigger independently");
        assert!(!garbles.is_empty() && !aborts.is_empty());
    }

    #[test]
    fn truncate_fasta_yields_strict_prefix() {
        let fasta = b">q test\nMKWVTFISLLFLFSSAYS\nRGVFRRDAHKSE\n";
        let plan = FaultPlan::only(13, 1.0, FaultSite::FastaTruncate);
        let cut = truncate_fasta(fasta, &plan);
        assert!(!cut.is_empty() && cut.len() < fasta.len());
        assert_eq!(&fasta[..cut.len()], &cut[..]);
        assert_eq!(cut, truncate_fasta(fasta, &plan), "deterministic");
        assert_eq!(truncate_fasta(fasta, &FaultPlan::DISABLED), fasta.to_vec());
    }
}
