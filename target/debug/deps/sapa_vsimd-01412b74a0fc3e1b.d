/root/repo/target/debug/deps/sapa_vsimd-01412b74a0fc3e1b.d: crates/vsimd/src/lib.rs

/root/repo/target/debug/deps/libsapa_vsimd-01412b74a0fc3e1b.rlib: crates/vsimd/src/lib.rs

/root/repo/target/debug/deps/libsapa_vsimd-01412b74a0fc3e1b.rmeta: crates/vsimd/src/lib.rs

crates/vsimd/src/lib.rs:
