/root/repo/target/debug/deps/sapa_vsimd-c7f49cdbde06d6ca.d: crates/vsimd/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_vsimd-c7f49cdbde06d6ca.rmeta: crates/vsimd/src/lib.rs Cargo.toml

crates/vsimd/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
