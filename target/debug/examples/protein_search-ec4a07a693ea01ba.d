/root/repo/target/debug/examples/protein_search-ec4a07a693ea01ba.d: crates/core/../../examples/protein_search.rs

/root/repo/target/debug/examples/protein_search-ec4a07a693ea01ba: crates/core/../../examples/protein_search.rs

crates/core/../../examples/protein_search.rs:
