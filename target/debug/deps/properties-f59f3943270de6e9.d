/root/repo/target/debug/deps/properties-f59f3943270de6e9.d: crates/align/tests/properties.rs

/root/repo/target/debug/deps/properties-f59f3943270de6e9: crates/align/tests/properties.rs

crates/align/tests/properties.rs:
