/root/repo/target/debug/examples/nucleotide_search-f1eb8355cdb65f2e.d: crates/core/../../examples/nucleotide_search.rs

/root/repo/target/debug/examples/nucleotide_search-f1eb8355cdb65f2e: crates/core/../../examples/nucleotide_search.rs

crates/core/../../examples/nucleotide_search.rs:
