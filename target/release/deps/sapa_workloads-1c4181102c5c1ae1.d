/root/repo/target/release/deps/sapa_workloads-1c4181102c5c1ae1.d: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

/root/repo/target/release/deps/libsapa_workloads-1c4181102c5c1ae1.rlib: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

/root/repo/target/release/deps/libsapa_workloads-1c4181102c5c1ae1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

crates/workloads/src/lib.rs:
crates/workloads/src/blast.rs:
crates/workloads/src/blastn.rs:
crates/workloads/src/fasta.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/ssearch.rs:
crates/workloads/src/sw_simd.rs:
