/root/repo/target/debug/deps/sapa_cpu-2f77217498995654.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/debug/deps/libsapa_cpu-2f77217498995654.rlib: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

/root/repo/target/debug/deps/libsapa_cpu-2f77217498995654.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/cache.rs crates/cpu/src/config.rs crates/cpu/src/pipeline.rs crates/cpu/src/stats.rs crates/cpu/src/trauma.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/cache.rs:
crates/cpu/src/config.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/stats.rs:
crates/cpu/src/trauma.rs:
