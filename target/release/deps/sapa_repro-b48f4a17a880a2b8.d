/root/repo/target/release/deps/sapa_repro-b48f4a17a880a2b8.d: crates/repro/src/main.rs

/root/repo/target/release/deps/sapa_repro-b48f4a17a880a2b8: crates/repro/src/main.rs

crates/repro/src/main.rs:
