//! Chaos suite: deterministic fault injection across the whole stack.
//!
//! Every test here follows one discipline: inject faults from a seeded
//! [`FaultPlan`], let the pipeline degrade gracefully, and then assert
//! that what survived is *exactly* reproducible — same quarantine
//! report, same scores, same rendered output — at 1, 2, and 4 worker
//! threads. Fault decisions are keyed on subject content, never on
//! scheduling, so these assertions are exact equalities, not
//! tolerances.

use std::sync::Once;

use sapa_core::align::engine::{
    AlignmentEngine, Deadline, Engine, Prefilter, SearchRequest, SwEngine,
};
use sapa_core::align::parallel::{
    engine_scores, engine_search, engine_search_bounded, QUARANTINED_SCORE,
};
use sapa_core::bioseq::compose::{sample_residue, swissprot_cdf};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::rng::Xoshiro256;
use sapa_core::bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_core::cpu::{run_jobs_isolated, SimConfig, Simulator, SweepJob};
use sapa_core::fault::{
    corrupt_packed, subject_key, truncate_fasta, FaultPlan, FaultSite, FaultyEngine,
};
use sapa_core::isa::PackedTrace;
use sapa_core::workloads::{StandardInputs, Workload};

/// Silences panic backtraces for *injected* faults only, so the chaos
/// runs don't bury real failures in hundreds of expected panic dumps.
/// Genuine panics still print through the previous hook.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

/// A deterministic 2000-subject synthetic database, 24–56 residues per
/// subject (small enough that full Smith-Waterman over the whole set
/// stays fast on one core).
fn database() -> Vec<Vec<AminoAcid>> {
    let cdf = swissprot_cdf();
    let mut rng = Xoshiro256::new(0x5A5A_2006);
    (0..2000)
        .map(|_| {
            let len = 24 + (rng.next_below(33) as usize);
            (0..len)
                .map(|_| sample_residue(&cdf, rng.next_f64()))
                .collect()
        })
        .collect()
}

fn query() -> Vec<AminoAcid> {
    let cdf = swissprot_cdf();
    let mut rng = Xoshiro256::new(0xBEEF);
    (0..32)
        .map(|_| sample_residue(&cdf, rng.next_f64()))
        .collect()
}

/// The acceptance-scenario plan: every site armed, 5% per decision.
fn plan() -> FaultPlan {
    FaultPlan::new(2006, 0.05)
}

#[test]
fn faulted_search_survives_and_is_thread_count_invariant() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let run = |threads: usize| {
        let engine = FaultyEngine::new(SwEngine::new(&q, &matrix, GapPenalties::paper()), plan());
        let (results, mut stats) = engine_search(&engine, &subjects, threads, 50, 1);
        stats.threads = 0; // normalize the only legitimately varying field
                           // Render to a string: "byte-identical output" is the contract.
        let mut text = String::new();
        for h in results.hits() {
            text.push_str(&format!("{} {}\n", h.seq_index, h.score));
        }
        for qn in &stats.quarantined {
            text.push_str(&format!("Q {} {}\n", qn.index, qn.cause));
        }
        (results, stats, text)
    };

    let (_, stats1, text1) = run(1);
    assert!(
        !stats1.quarantined.is_empty(),
        "a 5% panic rate over 2000 subjects must quarantine some"
    );
    assert!(stats1.quarantined.len() < 400, "rate wildly off");
    for q in &stats1.quarantined {
        assert!(q.cause.contains("injected fault"), "cause: {}", q.cause);
    }
    for threads in [2usize, 4] {
        let (_, stats_n, text_n) = run(threads);
        assert_eq!(stats1, stats_n, "stats differ at {threads} threads");
        assert_eq!(text1, text_n, "output differs at {threads} threads");
    }
}

#[test]
fn non_faulted_scores_are_bit_identical_to_a_clean_run() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let clean_engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let (clean, _) = engine_scores(&clean_engine, &subjects, 2);

    let faulty = FaultyEngine::new(SwEngine::new(&q, &matrix, GapPenalties::paper()), plan());
    let (scores, stats) = engine_scores(&faulty, &subjects, 2);

    let quarantined: Vec<usize> = stats.quarantined.iter().map(|q| q.index).collect();
    for (i, (&got, &want)) in scores.iter().zip(&clean).enumerate() {
        if quarantined.contains(&i) {
            assert_eq!(got, QUARANTINED_SCORE, "subject {i}");
        } else {
            assert_eq!(got, want, "subject {i} drifted under fault injection");
        }
    }
    // The plan's panic decisions are content-keyed: every quarantined
    // index must actually be one the plan faults.
    for &i in &quarantined {
        assert!(plan().triggers(FaultSite::WorkerPanic, subject_key(subjects[i])));
    }
}

#[test]
fn rescore_storms_change_accounting_not_scores() {
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let clean_engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let (clean, _) = engine_scores(&clean_engine, &subjects, 2);

    let stormy = FaultyEngine::new(
        SwEngine::new(&q, &matrix, GapPenalties::paper()),
        FaultPlan::only(99, 0.2, FaultSite::RescoreStorm),
    );
    let run = |threads: usize| engine_scores(&stormy, &subjects, threads);
    let (scores, stats) = run(1);
    assert_eq!(scores, clean, "storms must never alter scores");
    assert!(stats.rescored > 0, "a 20% storm rate must fire");
    assert!(stats.quarantined.is_empty());
    // Storm counts ride in per-workspace counters; the graveyard merge
    // keeps the total exact at any thread count.
    for threads in [2usize, 4] {
        assert_eq!(run(threads).1.rescored, stats.rescored);
    }
}

#[test]
fn cell_budget_partial_search_is_deterministic_across_threads() {
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();
    let engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let total: u64 = subjects.iter().map(|s| engine.cost(s)).sum();

    let run = |threads: usize| {
        engine_search_bounded(
            &engine,
            &subjects,
            threads,
            50,
            1,
            Some(Deadline::Cells(total / 3)),
        )
    };
    let one = run(1);
    assert!(!one.completed);
    assert!(one.stats.subjects > 0 && one.stats.subjects < subjects.len());
    for threads in [2usize, 4] {
        let n = run(threads);
        assert_eq!(n.completed, one.completed);
        assert_eq!(n.stats.subjects, one.stats.subjects);
        assert_eq!(n.results.hits(), one.results.hits());
    }
}

#[test]
fn deadline_and_quarantine_compose_in_the_request_layer() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();
    let req = SearchRequest {
        query: &q,
        matrix: &matrix,
        gaps: GapPenalties::paper(),
        top_k: 25,
        min_score: 1,
        deadline: Some(Deadline::Cells(200_000)),
        report_alignments: false,
        prefilter: Prefilter::Off,
    };
    let run = |threads: usize| {
        let mut resp = Engine::Sw.search(&req, &subjects, threads);
        resp.stats.threads = 0;
        resp
    };
    let one = run(1);
    assert!(!one.completed);
    assert_eq!(one.coverage, one.stats.subjects);
    assert_eq!(run(2), one);
    assert_eq!(run(4), one);
}

#[test]
fn corrupted_packed_traces_are_rejected_not_replayed() {
    let inputs = StandardInputs::with_db_size(12, 1);
    let bundle = Workload::Blast.trace(&inputs);
    let packed = PackedTrace::from_trace(&bundle.trace);
    assert!(packed.check().is_ok(), "clean trace must validate");

    let sim = Simulator::new(SimConfig::four_way());
    for seed in 0..8 {
        let bad = corrupt_packed(&packed, &FaultPlan::new(seed, 0.001));
        let err = sim
            .try_run_packed(&bad)
            .expect_err("corruption must be detected before replay");
        assert!(!format!("{err}").is_empty());
    }
    // And the clean trace still replays after all that.
    assert!(sim.try_run_packed(&packed).is_ok());
}

#[test]
fn sweep_batch_finishes_around_a_poisoned_job() {
    let inputs = StandardInputs::with_db_size(12, 1);
    let packed = PackedTrace::from_trace(&Workload::Fasta34.trace(&inputs).trace);
    let bad = corrupt_packed(&packed, &FaultPlan::new(3, 0.01));

    let clean = std::sync::Arc::new(packed);
    let poisoned = std::sync::Arc::new(bad);
    let jobs: Vec<SweepJob> = (0..5)
        .map(|i| {
            let trace = if i == 2 {
                std::sync::Arc::clone(&poisoned)
            } else {
                std::sync::Arc::clone(&clean)
            };
            SweepJob::new(trace, SimConfig::four_way())
        })
        .collect();
    for threads in [1usize, 2, 4] {
        let outcomes = run_jobs_isolated(&jobs, threads);
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 2 {
                let cause = &o.as_ref().unwrap_err().cause;
                assert!(cause.contains("trace error"), "cause: {cause}");
            } else {
                assert!(o.is_ok(), "clean job {i} failed at {threads} threads");
            }
        }
    }
}

#[test]
fn truncated_fasta_never_panics() {
    use sapa_core::bioseq::fasta::{read_fasta, write_fasta};
    use sapa_core::bioseq::Sequence;

    let seqs = vec![
        Sequence::from_str("a", "MKWVTFISLLFLFSSAYS").unwrap(),
        Sequence::from_str("b", "HEAGAWGHEE").unwrap(),
        Sequence::from_str("c", "PAWHEAE").unwrap(),
    ];
    let mut bytes = Vec::new();
    write_fasta(&mut bytes, &seqs).unwrap();

    // Every seeded cut, and for good measure every prefix length, must
    // yield Ok(shorter set) or Err — never a panic.
    for seed in 0..32 {
        let plan = FaultPlan::only(seed, 1.0, FaultSite::FastaTruncate);
        let cut = truncate_fasta(&bytes, &plan);
        let _ = read_fasta(&cut[..]);
    }
    for n in 0..bytes.len() {
        let _ = read_fasta(&bytes[..n]);
    }
}
