//! Banded alignment around a seed diagonal.
//!
//! Both heuristics rescore promising regions with dynamic programming
//! restricted to a diagonal band: FASTA's `opt` score and our stand-in
//! for BLAST's gapped extension. Restricting columns `j` to
//! `i + diag - width ..= i + diag + width` makes the cost
//! `O(len(a) · (2·width+1))` instead of `O(len(a) · len(b))`.
//!
//! [`global_align`] is the traceback sibling: a banded *global*
//! (Needleman-Wunsch) pass with full path recovery, used as the third
//! pass of the striped traceback ([`crate::traceback`]) to emit a
//! CIGAR over the bounded window the two striped passes pinned down.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::sw::{AlignOp, NEG};

/// Computes the best local alignment score restricted to the band of
/// half-width `width` around `diag`, where a cell `(i, j)` (0-based
/// residue indices) lies on diagonal `j - i`.
///
/// The result is a lower bound on the unrestricted [`crate::sw::score`]
/// and equals it when the band covers the whole matrix.
///
/// # Panics
///
/// Panics if `width` is zero (an empty band is almost certainly a bug
/// at the call site).
pub fn score(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    diag: isize,
    width: usize,
) -> i32 {
    assert!(width > 0, "band width must be positive");
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    let n = b.len() as isize;
    let w = width as isize;

    // Band-local storage indexed by offset = j - (i + diag) + width,
    // so offsets 0..=2*width. h/f hold the previous row.
    let band = 2 * width + 1;
    let mut h = vec![0i32; band];
    let mut f = vec![NEG; band];
    let mut best = 0;

    for (i, &ai) in a.iter().enumerate() {
        let i = i as isize;
        // Row i of the band covers columns j in [i+diag-w, i+diag+w].
        // Relative to row i-1 the window shifts right by one: the
        // previous row's offset for column j is (offset + 1).
        let mut h_left = 0i32; // H[i][j-1]: left neighbour, NEG outside band
        let mut e_left = NEG;
        let mut new_h = vec![NEG; band];
        let mut new_f = vec![NEG; band];
        for off in 0..band as isize {
            let j = i + diag - w + off;
            if j < 0 || j >= n {
                h_left = NEG;
                e_left = NEG;
                continue;
            }
            // Previous row, same column: offset+1 in the old arrays.
            let (h_up, f_up) = if (off + 1) < band as isize {
                (h[(off + 1) as usize], f[(off + 1) as usize])
            } else {
                (NEG, NEG)
            };
            // Previous row, previous column: same offset in old arrays.
            let h_diag_val = if i == 0 || j == 0 {
                0 // matrix boundary: alignments may start fresh
            } else {
                h[off as usize]
            };
            let h_up = if i == 0 { 0 } else { h_up };
            let h_left_eff = if j == 0 { 0 } else { h_left };

            let e_ij = (e_left - ext).max(h_left_eff - open_ext);
            let f_ij = (f_up - ext).max(h_up - open_ext);
            let diag_score = h_diag_val + matrix.score(ai, b[j as usize]);
            let h_ij = 0.max(diag_score).max(e_ij).max(f_ij);

            new_h[off as usize] = h_ij;
            new_f[off as usize] = f_ij;
            h_left = h_ij;
            e_left = e_ij;
            if h_ij > best {
                best = h_ij;
            }
        }
        h = new_h;
        f = new_f;
    }
    best
}

/// Banded *global* alignment (Needleman-Wunsch, affine gaps) with
/// traceback: returns the optimal end-to-end score restricted to the
/// band and the operations from `(0, 0)` to `(len(a), len(b))`.
///
/// The band covers diagonals `j - i` in
/// `min(0, n - m) - width ..= max(0, n - m) + width`, which always
/// contains both corners, so the result is a lower bound on the
/// unrestricted [`crate::nw::score`] and equals it once the band covers
/// every diagonal an optimal path uses — the caller (the three-pass
/// traceback) doubles `width` until the score stops being band-limited.
///
/// Memory is `O(len(a) · band)`; this runs over the small window the
/// striped end/start passes identified, not over whole subjects.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn global_align(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    width: usize,
) -> (i32, Vec<AlignOp>) {
    assert!(width > 0, "band width must be positive");
    let m = a.len();
    let n = b.len();
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    // Diagonal range; offset od = (j - i) - lo indexes a row's band.
    let lo = 0isize.min(n as isize - m as isize) - width as isize;
    let hi = 0isize.max(n as isize - m as isize) + width as isize;
    let band = (hi - lo + 1) as usize;

    let idx = |i: usize, od: usize| i * band + od;
    let mut h = vec![NEG; (m + 1) * band];
    let mut e = vec![NEG; (m + 1) * band];
    let mut f = vec![NEG; (m + 1) * band];

    // Boundaries: row 0 is one open horizontal gap, column 0 one open
    // vertical gap — charged end-to-end, no local zero floor.
    h[idx(0, (-lo) as usize)] = 0;
    for j in 1..=n.min(hi as usize) {
        let od = (j as isize - lo) as usize;
        h[idx(0, od)] = -(open_ext + (j as i32 - 1) * ext);
        e[idx(0, od)] = h[idx(0, od)];
    }
    for i in 1..=m.min((-lo) as usize) {
        let od = (-(i as isize) - lo) as usize;
        h[idx(i, od)] = -(open_ext + (i as i32 - 1) * ext);
        f[idx(i, od)] = h[idx(i, od)];
    }

    for i in 1..=m {
        let j_min = 1.max(i as isize + lo) as usize;
        let j_max = n.min((i as isize + hi) as usize);
        for j in j_min..=j_max {
            let od = (j as isize - i as isize - lo) as usize;
            // Left neighbour (i, j-1) sits at od-1; above (i-1, j) at
            // od+1; the diagonal (i-1, j-1) at the same offset.
            let (h_left, e_left) = if od > 0 {
                (h[idx(i, od - 1)], e[idx(i, od - 1)])
            } else {
                (NEG, NEG)
            };
            let (h_up, f_up) = if od + 1 < band {
                (h[idx(i - 1, od + 1)], f[idx(i - 1, od + 1)])
            } else {
                (NEG, NEG)
            };
            let e_ij = (e_left - ext).max(h_left - open_ext);
            let f_ij = (f_up - ext).max(h_up - open_ext);
            let diag = h[idx(i - 1, od)] + matrix.score(a[i - 1], b[j - 1]);
            e[idx(i, od)] = e_ij;
            f[idx(i, od)] = f_ij;
            h[idx(i, od)] = diag.max(e_ij).max(f_ij);
        }
    }

    // Traceback from (m, n) to (0, 0), same H/E/F state machine as
    // `sw::align` but without the zero-floor stop.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let od_of = |i: usize, j: usize| (j as isize - i as isize - lo) as usize;
    let mut ops = Vec::new();
    let (mut i, mut j) = (m, n);
    let mut state = State::H;
    while i > 0 || j > 0 {
        match state {
            State::H => {
                if i == 0 {
                    ops.push(AlignOp::Insert);
                    j -= 1;
                } else if j == 0 {
                    ops.push(AlignOp::Delete);
                    i -= 1;
                } else {
                    let od = od_of(i, j);
                    let v = h[idx(i, od)];
                    if v == h[idx(i - 1, od)] + matrix.score(a[i - 1], b[j - 1]) {
                        ops.push(AlignOp::Subst);
                        i -= 1;
                        j -= 1;
                    } else if v == e[idx(i, od)] {
                        state = State::E;
                    } else {
                        debug_assert_eq!(v, f[idx(i, od)]);
                        state = State::F;
                    }
                }
            }
            State::E => {
                let od = od_of(i, j);
                ops.push(AlignOp::Insert);
                let closes = od == 0 || e[idx(i, od)] == h[idx(i, od - 1)] - open_ext;
                if closes {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                let od = od_of(i, j);
                ops.push(AlignOp::Delete);
                let closes = od + 1 >= band || f[idx(i, od)] == h[idx(i - 1, od + 1)] - open_ext;
                if closes {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }
    ops.reverse();
    (h[idx(m, (n as isize - m as isize - lo) as usize)], ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn full_band_equals_unrestricted() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("HEAGAWGHEE");
        let b = seq("PAWHEAE");
        let full = crate::sw::score(&a, &b, &m, g);
        let banded = score(&a, &b, &m, g, 0, a.len() + b.len());
        assert_eq!(banded, full);
    }

    #[test]
    fn band_is_lower_bound() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKVLAAGWWYHEMKVL");
        let b = seq("AAGWMKVLWYHE");
        let full = crate::sw::score(&a, &b, &m, g);
        for diag in -3isize..=3 {
            for width in [1usize, 2, 4, 8] {
                assert!(score(&a, &b, &m, g, diag, width) <= full);
            }
        }
    }

    #[test]
    fn identity_on_diagonal_zero() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKWVTFISLL");
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &a, &m, g, 0, 2), expected);
    }

    #[test]
    fn shifted_match_needs_matching_diag() {
        let m = bl62();
        let g = GapPenalties::paper();
        // b = 5 junk + a: the true alignment lies on diagonal +5.
        let a = seq("MKWVTFWWYHE");
        let b = seq("PGPGP MKWVTFWWYHE".replace(' ', "").as_str());
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &b, &m, g, 5, 2), expected);
        assert!(score(&a, &b, &m, g, 0, 1) < expected);
    }

    #[test]
    fn empty_inputs() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(score(&[], &seq("AA"), &m, g, 0, 2), 0);
        assert_eq!(score(&seq("AA"), &[], &m, g, 0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn zero_width_rejected() {
        let m = bl62();
        let _ = score(&seq("A"), &seq("A"), &m, GapPenalties::paper(), 0, 0);
    }

    fn replay_global(a: &[AminoAcid], b: &[AminoAcid], ops: &[AlignOp], g: GapPenalties) -> i32 {
        let m = bl62();
        let (mut i, mut j) = (0usize, 0usize);
        let mut total = 0;
        let mut gap: Option<AlignOp> = None;
        for &op in ops {
            match op {
                AlignOp::Subst => {
                    total += m.score(a[i], b[j]);
                    i += 1;
                    j += 1;
                    gap = None;
                }
                AlignOp::Delete => {
                    total -= if gap == Some(AlignOp::Delete) {
                        g.extend
                    } else {
                        g.open + g.extend
                    };
                    i += 1;
                    gap = Some(AlignOp::Delete);
                }
                AlignOp::Insert => {
                    total -= if gap == Some(AlignOp::Insert) {
                        g.extend
                    } else {
                        g.open + g.extend
                    };
                    j += 1;
                    gap = Some(AlignOp::Insert);
                }
            }
        }
        assert_eq!(
            (i, j),
            (a.len(), b.len()),
            "ops must consume both sequences"
        );
        total
    }

    #[test]
    fn global_wide_band_matches_nw_oracle() {
        let m = bl62();
        let g = GapPenalties::paper();
        let pairs = [
            ("HEAGAWGHEE", "PAWHEAE"),
            ("MKVLAA", "MKVLAA"),
            ("ACDEFGHIKLMNPQRSTVWY", "ACDEFGPQRSTVWY"),
            ("AW", "HEAGAWGHEE"),
        ];
        for (x, y) in pairs {
            let a = seq(x);
            let b = seq(y);
            let expect = crate::nw::score(&a, &b, &m, g);
            let (s, ops) = global_align(&a, &b, &m, g, a.len() + b.len());
            assert_eq!(s, expect, "{x} vs {y}");
            assert_eq!(replay_global(&a, &b, &ops, g), s, "{x} vs {y}");
        }
    }

    #[test]
    fn global_narrow_band_is_lower_bound_and_consistent() {
        let m = bl62();
        let g = GapPenalties::new(2, 1);
        let a = seq("MKVLAAGWWYHEMKVL");
        let b = seq("AAGWMKVLWYHE");
        let full = crate::nw::score(&a, &b, &m, g);
        for width in [1usize, 2, 4, 8, 64] {
            let (s, ops) = global_align(&a, &b, &m, g, width);
            assert!(s <= full, "width {width}");
            assert_eq!(replay_global(&a, &b, &ops, g), s, "width {width}");
        }
        let (s, _) = global_align(&a, &b, &m, g, 64);
        assert_eq!(s, full);
    }

    #[test]
    fn global_empty_inputs_are_pure_gaps() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("ACDE");
        let (s, ops) = global_align(&a, &[], &m, g, 2);
        assert_eq!(s, -g.gap_cost(4));
        assert_eq!(ops, vec![AlignOp::Delete; 4]);
        let (s, ops) = global_align(&[], &a, &m, g, 2);
        assert_eq!(s, -g.gap_cost(4));
        assert_eq!(ops, vec![AlignOp::Insert; 4]);
        let (s, ops) = global_align(&[], &[], &m, g, 2);
        assert_eq!(s, 0);
        assert!(ops.is_empty());
    }
}
