//! A realistic protein database search — the workload the paper's
//! introduction motivates: find everything in a (synthetic SwissProt-
//! like) database related to one query, comparing the sensitivity/speed
//! trade-off of the three search strategies.
//!
//! ```text
//! cargo run --release --example protein_search
//! ```

use std::time::Instant;

use sapa_core::align::{blast, fasta, parallel, sw};
use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::{AminoAcid, ProfileCache, SubstitutionMatrix};

fn main() {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();

    // The paper's reporting query: Glutathione S-transferase, 222 aa.
    let queries = QuerySet::paper();
    let query = queries.default_query();

    // A database with planted homologs of the query at ~55% identity,
    // so the sensitivity comparison is meaningful.
    let db = DatabaseBuilder::new()
        .seed(7)
        .sequences(600)
        .homolog_fraction(0.03)
        .homolog_template(query.clone())
        .build();
    let truth: Vec<usize> = db
        .iter()
        .enumerate()
        .filter(|(_, s)| s.description().contains("homolog"))
        .map(|(i, _)| i)
        .collect();
    println!(
        "database: {} sequences, {} residues, {} planted homologs\n",
        db.len(),
        db.total_residues(),
        truth.len()
    );

    let slices: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();

    // --- Full Smith-Waterman: the sensitivity gold standard.
    let t0 = Instant::now();
    let mut sw_hits: Vec<(usize, i32)> = slices
        .iter()
        .enumerate()
        .map(|(i, s)| (i, sw::score(query.residues(), s, &matrix, gaps)))
        .filter(|&(_, score)| score >= 50)
        .collect();
    sw_hits.sort_by_key(|h| std::cmp::Reverse(h.1));
    let sw_time = t0.elapsed();

    // --- Striped Smith-Waterman (Farrar): same gold-standard scores,
    // one cached query profile shared across the whole scan, adaptive
    // 8-bit first pass with 16-bit rescore on overflow.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut profiles = ProfileCache::new();
    let t0 = Instant::now();
    let profile = profiles.get_or_build(query.residues(), &matrix, 8);
    let (mut striped_res, stats) =
        parallel::search_striped_with_profile::<16, 8>(&profile, &slices, gaps, threads, 500, 50);
    let striped_time = t0.elapsed();

    // --- BLAST.
    let t0 = Instant::now();
    let widx = blast::WordIndex::build(query.residues(), &matrix, 11);
    let mut blast_res = blast::search(
        &widx,
        slices.iter().copied(),
        &matrix,
        gaps,
        &blast::BlastParams::default(),
        500,
    );
    let blast_time = t0.elapsed();

    // --- FASTA.
    let t0 = Instant::now();
    let kidx = fasta::KtupIndex::build(query.residues(), 2);
    let mut fasta_res = fasta::search(
        &kidx,
        slices.iter().copied(),
        &matrix,
        gaps,
        &fasta::FastaParams::default(),
        500,
    );
    let fasta_time = t0.elapsed();

    let recall = |found: &[usize]| {
        let hits = truth.iter().filter(|t| found.contains(t)).count();
        format!("{hits}/{}", truth.len())
    };

    let sw_found: Vec<usize> = sw_hits.iter().map(|h| h.0).collect();
    let striped_found: Vec<usize> = striped_res.hits().iter().map(|h| h.seq_index).collect();
    let blast_found: Vec<usize> = blast_res.hits().iter().map(|h| h.seq_index).collect();
    let fasta_found: Vec<usize> = fasta_res.hits().iter().map(|h| h.seq_index).collect();

    // The striped engine is exact: identical hit set to scalar SW.
    assert_eq!(
        striped_found,
        sw_found.iter().copied().take(500).collect::<Vec<_>>()
    );

    println!("engine            time        hits   homolog recall");
    println!("---------------------------------------------------");
    println!(
        "Smith-Waterman    {:<10.1?}  {:<5}  {}",
        sw_time,
        sw_found.len(),
        recall(&sw_found)
    );
    println!(
        "SW striped x{:<2}   {:<10.1?}  {:<5}  {}",
        threads,
        striped_time,
        striped_found.len(),
        recall(&striped_found)
    );
    println!(
        "BLAST             {:<10.1?}  {:<5}  {}",
        blast_time,
        blast_found.len(),
        recall(&blast_found)
    );
    println!(
        "FASTA             {:<10.1?}  {:<5}  {}",
        fasta_time,
        fasta_found.len(),
        recall(&fasta_found)
    );

    println!(
        "\nstriped scan: {} subjects, {} rescored in 16-bit after 8-bit overflow",
        stats.subjects, stats.rescored
    );

    println!("\ntop Smith-Waterman hits:");
    for (i, score) in sw_hits.iter().take(5) {
        println!("  {} score {}", db.sequences()[*i].id(), score);
    }
}
