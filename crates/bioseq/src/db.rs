//! Synthetic SwissProt-like protein database generation.
//!
//! The paper searches the real SwissProt release (172,233 sequences,
//! 62.6 M residues). We cannot redistribute SwissProt, and a full-size
//! database would make cycle-accurate simulation of every configuration
//! sweep intractable, so this module synthesizes a database that
//! preserves the properties the characterization depends on:
//!
//! * **residue composition** — drawn from [`crate::compose`]'s Swiss-Prot
//!   background frequencies (drives BLAST word fan-out / FASTA k-tuple
//!   hit rates);
//! * **length distribution** — log-normal with a median near 360
//!   residues, truncated to `[25, 4000]` (drives loop trip counts and
//!   data-set size);
//! * **planted homologs** — a configurable fraction of sequences are
//!   mutated copies of a given query, so heuristic extensions and
//!   rescoring paths actually execute, as they do on real data.
//!
//! Generation is fully deterministic in the seed.

use crate::alphabet::AminoAcid;
use crate::compose::{sample_residue, swissprot_cdf};
use crate::rng::Xoshiro256;
use crate::seq::Sequence;

/// A generated protein database.
///
/// ```
/// use sapa_bioseq::DatabaseBuilder;
/// let db = DatabaseBuilder::new().seed(1).sequences(50).build();
/// assert_eq!(db.len(), 50);
/// let same = DatabaseBuilder::new().seed(1).sequences(50).build();
/// assert_eq!(db.sequences()[7], same.sequences()[7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    sequences: Vec<Sequence>,
    total_residues: usize,
}

impl Database {
    /// Builds a database from explicit sequences.
    pub fn from_sequences(sequences: Vec<Sequence>) -> Self {
        let total_residues = sequences.iter().map(Sequence::len).sum();
        Database {
            sequences,
            total_residues,
        }
    }

    /// The sequences, in generation order.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total residue count across all sequences.
    pub fn total_residues(&self) -> usize {
        self.total_residues
    }

    /// Iterates over the sequences.
    pub fn iter(&self) -> std::slice::Iter<'_, Sequence> {
        self.sequences.iter()
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a Sequence;
    type IntoIter = std::slice::Iter<'a, Sequence>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Builder for [`Database`].
///
/// The defaults produce the suite's standard evaluation database: 400
/// sequences, log-normal lengths with median 360, 2% planted homologs at
/// 55% identity. (`sequences` is the main knob for scaling experiments
/// up or down; trace sizes grow linearly with total residues.)
#[derive(Debug, Clone)]
pub struct DatabaseBuilder {
    seed: u64,
    sequences: usize,
    median_length: f64,
    sigma: f64,
    min_length: usize,
    max_length: usize,
    homolog_fraction: f64,
    homolog_identity: f64,
    homolog_indel_rate: f64,
    homolog_template: Option<Sequence>,
}

impl DatabaseBuilder {
    /// Creates a builder with the suite's standard parameters.
    pub fn new() -> Self {
        DatabaseBuilder {
            seed: 0x5EED,
            sequences: 400,
            median_length: 360.0,
            sigma: 0.55,
            min_length: 25,
            max_length: 4000,
            homolog_fraction: 0.02,
            homolog_identity: 0.55,
            homolog_indel_rate: 0.01,
            homolog_template: None,
        }
    }

    /// Sets the generation seed. Two builds with identical parameters and
    /// seeds produce identical databases.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of sequences to generate.
    pub fn sequences(mut self, n: usize) -> Self {
        self.sequences = n;
        self
    }

    /// Sets the median sequence length of the log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive.
    pub fn median_length(mut self, median: f64) -> Self {
        assert!(median > 0.0, "median length must be positive");
        self.median_length = median;
        self
    }

    /// Sets the log-normal shape parameter (sigma of ln-length).
    pub fn length_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma = sigma;
        self
    }

    /// Clamps generated lengths to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn length_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "invalid length bounds");
        self.min_length = min;
        self.max_length = max;
        self
    }

    /// Sets the fraction of sequences that are mutated copies of the
    /// homolog template (see [`DatabaseBuilder::homolog_template`]).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn homolog_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.homolog_fraction = fraction;
        self
    }

    /// Sets the point-identity of planted homologs (fraction of positions
    /// left unmutated).
    ///
    /// # Panics
    ///
    /// Panics if `identity` is outside `[0, 1]`.
    pub fn homolog_identity(mut self, identity: f64) -> Self {
        assert!((0.0..=1.0).contains(&identity), "identity must be in [0,1]");
        self.homolog_identity = identity;
        self
    }

    /// Sets the per-position probability of a short (1-3 residue) indel
    /// in planted homologs. Zero disables indels, which keeps homolog
    /// lengths equal to the template length.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn homolog_indel_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.homolog_indel_rate = rate;
        self
    }

    /// Supplies the sequence that planted homologs are derived from
    /// (typically the query under evaluation). Without a template,
    /// homologs are derived from an internally generated sequence.
    pub fn homolog_template(mut self, template: Sequence) -> Self {
        self.homolog_template = Some(template);
        self
    }

    /// Generates the database.
    pub fn build(&self) -> Database {
        let mut rng = Xoshiro256::new(self.seed ^ 0xDB_5EED);
        let cdf = swissprot_cdf();

        let template: Vec<AminoAcid> = match &self.homolog_template {
            Some(t) => t.residues().to_vec(),
            None => random_residues(&mut rng, &cdf, 300),
        };

        let mut sequences = Vec::with_capacity(self.sequences);
        for i in 0..self.sequences {
            let is_homolog = self.homolog_fraction > 0.0 && rng.next_f64() < self.homolog_fraction;
            let residues = if is_homolog && !template.is_empty() {
                mutate(
                    &mut rng,
                    &cdf,
                    &template,
                    self.homolog_identity,
                    self.homolog_indel_rate,
                )
            } else {
                let len = self.sample_length(&mut rng);
                random_residues(&mut rng, &cdf, len)
            };
            let kind = if is_homolog { "homolog" } else { "random" };
            sequences.push(Sequence::new(
                format!("SYN{i:06}"),
                format!("synthetic swissprot-like sequence ({kind})"),
                residues,
            ));
        }
        Database::from_sequences(sequences)
    }

    fn sample_length(&self, rng: &mut Xoshiro256) -> usize {
        let ln_len = self.median_length.ln() + self.sigma * rng.next_gaussian();
        (ln_len.exp().round() as usize).clamp(self.min_length, self.max_length)
    }
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        DatabaseBuilder::new()
    }
}

fn random_residues(rng: &mut Xoshiro256, cdf: &[f64], len: usize) -> Vec<AminoAcid> {
    (0..len)
        .map(|_| sample_residue(cdf, rng.next_f64()))
        .collect()
}

/// Produces a mutated copy of `template`: each position keeps its residue
/// with probability `identity`, otherwise it is resampled from the
/// background; short indels (1–3 residues) are introduced at a low rate
/// so gapped-alignment paths are exercised.
fn mutate(
    rng: &mut Xoshiro256,
    cdf: &[f64],
    template: &[AminoAcid],
    identity: f64,
    indel_rate: f64,
) -> Vec<AminoAcid> {
    let mut out = Vec::with_capacity(template.len() + 8);
    let mut i = 0;
    while i < template.len() {
        let u = rng.next_f64();
        if u < indel_rate {
            let len = 1 + rng.next_below(3) as usize;
            if rng.next_f64() < 0.5 {
                // deletion: skip `len` template residues
                i += len;
            } else {
                // insertion: add `len` background residues
                for _ in 0..len {
                    out.push(sample_residue(cdf, rng.next_f64()));
                }
            }
            continue;
        }
        if rng.next_f64() < identity {
            out.push(template[i]);
        } else {
            out.push(sample_residue(cdf, rng.next_f64()));
        }
        i += 1;
    }
    if out.is_empty() {
        out.push(template[0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = DatabaseBuilder::new().seed(9).sequences(30).build();
        let b = DatabaseBuilder::new().seed(9).sequences(30).build();
        assert_eq!(a, b);
        let c = DatabaseBuilder::new().seed(10).sequences(30).build();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_length_bounds() {
        // Homolog lengths follow the template, so disable planting when
        // asserting bounds on background sequences.
        let db = DatabaseBuilder::new()
            .seed(3)
            .sequences(200)
            .homolog_fraction(0.0)
            .length_bounds(50, 100)
            .build();
        for s in &db {
            assert!((50..=100).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn median_length_roughly_holds() {
        let db = DatabaseBuilder::new()
            .seed(4)
            .sequences(500)
            .median_length(360.0)
            .build();
        let mut lens: Vec<usize> = db.iter().map(Sequence::len).collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2] as f64;
        assert!((250.0..500.0).contains(&median), "median {median}");
    }

    #[test]
    fn homologs_resemble_template() {
        let template = Sequence::from_str("q", &"ACDEFGHIKLMNPQRSTVWY".repeat(10)).unwrap();
        let db = DatabaseBuilder::new()
            .seed(5)
            .sequences(100)
            .homolog_fraction(1.0)
            .homolog_identity(0.9)
            .homolog_indel_rate(0.0)
            .homolog_template(template.clone())
            .build();
        // With 90% identity and no indels, positional identity should be
        // near 0.9 for every planted homolog.
        for s in &db {
            assert_eq!(s.len(), template.len());
            let same = (0..s.len())
                .filter(|&i| s.residues()[i] == template.residues()[i])
                .count();
            let frac = same as f64 / s.len() as f64;
            assert!(frac > 0.8, "identity only {frac}");
        }
    }

    #[test]
    fn zero_homolog_fraction_generates_background_only() {
        let db = DatabaseBuilder::new()
            .seed(6)
            .sequences(20)
            .homolog_fraction(0.0)
            .build();
        for s in &db {
            assert!(s.description().contains("random"));
        }
    }

    #[test]
    fn total_residues_matches_sum() {
        let db = DatabaseBuilder::new().seed(7).sequences(40).build();
        let sum: usize = db.iter().map(Sequence::len).sum();
        assert_eq!(db.total_residues(), sum);
    }

    #[test]
    fn composition_tracks_background() {
        let db = DatabaseBuilder::new().seed(8).sequences(300).build();
        let mut counts = [0usize; AminoAcid::COUNT];
        for s in &db {
            for aa in s {
                counts[aa.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let leu = counts[AminoAcid::Leu.index()] as f64 / total as f64;
        let trp = counts[AminoAcid::Trp.index()] as f64 / total as f64;
        assert!((0.07..0.13).contains(&leu), "Leu {leu}");
        assert!((0.005..0.02).contains(&trp), "Trp {trp}");
    }
}
