//! Figure 10: issue-queue and in-flight occupancy histograms for FASTA
//! and SW_vmx128 on the 4-way / 32K/32K/1M configuration.

use crate::context::Context;
use crate::format::{f2, heading, Table};
use sapa_cpu::config::UnitClass;
use sapa_workloads::Workload;

/// Renders Figure 10 (a: FASTA queues, b: SW_vmx128 queues,
/// c/d: in-flight and retire-queue occupancy).
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 10 — queue and in-flight occupancy (4-way, 32K/32K/1M)");
    let baseline = sapa_cpu::SimConfig::four_way();
    ctx.sim_batch(&[
        (Workload::Fasta34, baseline.clone()),
        (Workload::SwVmx128, baseline),
    ]);
    for (w, queues) in [
        (
            Workload::Fasta34,
            vec![UnitClass::Fix, UnitClass::Mem, UnitClass::Br],
        ),
        (
            Workload::SwVmx128,
            vec![
                UnitClass::Fix,
                UnitClass::Mem,
                UnitClass::Br,
                UnitClass::Vi,
                UnitClass::Vper,
            ],
        ),
    ] {
        let report = ctx.baseline(w).clone();
        out.push_str(&format!("\nISSUE QUEUE UTILIZATION — {}:\n", w.label()));
        let mut t = Table::new(&[
            "queue",
            "mean occupancy",
            "cycles@0",
            "cycles@4+",
            "cycles@12+",
        ]);
        for q in &queues {
            let hist = report.queue(*q);
            let slice = hist.as_slice();
            let at0 = hist.cycles_at(0);
            let ge4: u64 = slice.iter().skip(4).sum();
            let ge12: u64 = slice.iter().skip(12).sum();
            t.row_owned(vec![
                q.label().to_string(),
                f2(hist.mean()),
                at0.to_string(),
                ge4.to_string(),
                ge12.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "IN-FLIGHT mean {:.1}, RETIRE-QUEUE mean {:.1} (of {} cycles)\n",
            report.inflight_occupancy.mean(),
            report.retireq_occupancy.mean(),
            report.cycles,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn simd_fills_queues_fasta_leaves_them_empty() {
        let mut ctx = Context::new(Scale::Tiny);
        let fasta = ctx.baseline(Workload::Fasta34).clone();
        let simd = ctx.baseline(Workload::SwVmx128).clone();
        // The paper: FASTA's queues mostly empty (pipeline flushes);
        // SW_vmx128 keeps the VI queue busy and many instructions in
        // flight.
        let fasta_fix = fasta.queue(UnitClass::Fix).mean();
        let simd_vi = simd.queue(UnitClass::Vi).mean();
        assert!(simd_vi > fasta_fix, "vi {simd_vi} vs fix {fasta_fix}");
        assert!(
            simd.inflight_occupancy.mean() > fasta.inflight_occupancy.mean(),
            "inflight {} vs {}",
            simd.inflight_occupancy.mean(),
            fasta.inflight_occupancy.mean()
        );
    }
}
