//! Cost-based admission control.
//!
//! Every search is priced *before* it runs, in the same deterministic
//! unit the engine layer budgets with: DP cells, via
//! [`Engine::scan_cost`] over the corpus length table. The gate keeps
//! the sum of queued plus in-flight cost under a fixed budget, so an
//! overload turns into fast typed `overloaded` rejections instead of
//! unbounded queueing and collapse. Two consequences worth stating:
//!
//! * A request carrying `deadline_cells` is priced at
//!   `min(full scan, budgeted cells)` — a deadline is a *promise* the
//!   engine enforces ([`sapa_align::engine::Deadline::Cells`] admits a
//!   subject prefix within the budget), so clients can always buy
//!   admission for a huge query by bounding it.
//! * A request whose price exceeds the whole budget can never be
//!   admitted, idle or not; the rejection detail says so explicitly so
//!   the client knows to shrink the request rather than retry.

use sapa_align::engine::Engine;

/// Prices one search: the engine's full scan cost over the corpus
/// lengths, capped by the client's `deadline_cells` bound, floored at
/// one cell so no request is free.
pub fn price(
    engine: Engine,
    query_len: usize,
    subject_lens: impl IntoIterator<Item = usize>,
    deadline_cells: Option<u64>,
) -> u64 {
    let full = engine.scan_cost(query_len, subject_lens);
    deadline_cells.map_or(full, |b| full.min(b)).max(1)
}

/// The admission gate: a cell budget and a queue-depth cap.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Maximum total cost (queued + in-flight) the server will hold.
    pub budget_cells: u64,
    /// Maximum queued (not yet running) requests, a backstop against
    /// many tiny requests hiding behind a large cell budget.
    pub max_queued: usize,
}

impl Gate {
    /// Decides admission for a request of `cost` cells given the
    /// currently `queued` request count and `committed_cells`
    /// (queued + in-flight cost).
    ///
    /// # Errors
    ///
    /// Returns the human-readable rejection detail for the
    /// `overloaded` error when the request does not fit.
    pub fn check(&self, queued: usize, committed_cells: u64, cost: u64) -> Result<(), String> {
        if queued >= self.max_queued {
            return Err(format!(
                "queue full: {queued} requests waiting (max {})",
                self.max_queued
            ));
        }
        if cost > self.budget_cells {
            return Err(format!(
                "request cost {cost} cells exceeds the whole {}-cell budget; \
                 bound it with deadline_cells or shrink the query",
                self.budget_cells
            ));
        }
        if committed_cells.saturating_add(cost) > self.budget_cells {
            return Err(format!(
                "cell budget exhausted: {committed_cells} committed + {cost} requested \
                 > {} budget",
                self.budget_cells
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_is_scan_cost_capped_by_deadline() {
        let lens = [100usize, 200, 300];
        let q = 50;
        let full: u64 = lens.iter().map(|&l| (q * l) as u64).sum();
        assert_eq!(price(Engine::Sw, q, lens, None), full);
        assert_eq!(price(Engine::Sw, q, lens, Some(1_000)), 1_000);
        assert_eq!(price(Engine::Sw, q, lens, Some(full * 2)), full);
        // Zero-cell deadlines still cost one cell: no free requests.
        assert_eq!(price(Engine::Sw, q, lens, Some(0)), 1);
        // Heuristics are subject-scan priced, far below DP cost.
        assert_eq!(price(Engine::Blast, q, lens, None), 600);
    }

    #[test]
    fn gate_enforces_budget_and_depth() {
        let gate = Gate {
            budget_cells: 1_000,
            max_queued: 2,
        };
        assert!(gate.check(0, 0, 400).is_ok());
        assert!(gate.check(1, 900, 100).is_ok(), "exactly filling fits");
        let over = gate.check(1, 900, 101).unwrap_err();
        assert!(over.contains("budget exhausted"), "{over}");
        let deep = gate.check(2, 0, 1).unwrap_err();
        assert!(deep.contains("queue full"), "{deep}");
        let huge = gate.check(0, 0, 1_001).unwrap_err();
        assert!(
            huge.contains("whole"),
            "inadmissible-ever is called out: {huge}"
        );
    }
}
