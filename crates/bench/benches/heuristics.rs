//! Heuristic database-search throughput (BLAST and FASTA end-to-end,
//! plus index construction). Complements Table III's BLAST/FASTA rows.

use sapa_bench::harness::{Criterion, Throughput};
use sapa_bench::{bench_db, bench_query, criterion_group, criterion_main, slices};
use sapa_core::align::{blast, fasta};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::SubstitutionMatrix;

fn index_construction(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let query = bench_query();

    let mut group = c.benchmark_group("index_build");
    group.bench_function("blast_word_index_t11", |b| {
        b.iter(|| blast::WordIndex::build(query.residues(), &matrix, 11))
    });
    group.bench_function("fasta_ktup2_index", |b| {
        b.iter(|| fasta::KtupIndex::build(query.residues(), 2))
    });
    group.finish();
}

fn database_search(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(100);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();

    let widx = blast::WordIndex::build(query.residues(), &matrix, 11);
    let kidx = fasta::KtupIndex::build(query.residues(), 2);

    let mut group = c.benchmark_group("database_search_100seqs");
    group.throughput(Throughput::Elements(residues));
    group.bench_function("blast", |b| {
        b.iter(|| {
            blast::search(
                &widx,
                slices(&db),
                &matrix,
                gaps,
                &blast::BlastParams::default(),
                500,
            )
        })
    });
    group.bench_function("fasta", |b| {
        b.iter(|| {
            fasta::search(
                &kidx,
                slices(&db),
                &matrix,
                gaps,
                &fasta::FastaParams::default(),
                500,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = index_construction, database_search
}
criterion_main!(benches);
