//! A realistic protein database search — the workload the paper's
//! introduction motivates: find everything in a (synthetic SwissProt-
//! like) database related to one query, comparing the sensitivity/speed
//! trade-off of every backend behind the unified engine layer.
//!
//! ```text
//! cargo run --release --example protein_search              # all engines
//! cargo run --release --example protein_search -- --engine striped
//! cargo run --release --example protein_search -- --engine blast --threads 2
//! cargo run --release --example protein_search -- --engine striped --cigar
//! cargo run --release --example protein_search -- --db big.sapadb --prefilter
//! ```
//!
//! `--cigar` turns on the three-pass striped traceback: each reported
//! hit carries alignment coordinates and a CIGAR string, verified here
//! by replaying it to the reported score.
//!
//! `--db <path>` searches a prebuilt on-disk index (see the `dbbuild`
//! example) via the streaming shard reader instead of the in-memory
//! database; `--prefilter` additionally turns on k-mer seed
//! prefiltering so subjects sharing no word with the query are skipped
//! before any dynamic programming. The indexed path is score-only, so
//! `--cigar` is rejected alongside `--db`.

use std::time::Instant;

use sapa_core::align::engine::{Engine, Prefilter, SearchRequest, SearchResponse};
use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::index::IndexReader;
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::{AminoAcid, SubstitutionMatrix};

struct Args {
    engine: Option<Engine>,
    threads: usize,
    cigar: bool,
    db: Option<String>,
    prefilter: bool,
}

fn parse_args() -> Args {
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut args = Args {
        engine: None,
        threads: default_threads,
        cigar: false,
        db: None,
        prefilter: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                let name = it.next().unwrap_or_else(|| usage("--engine needs a name"));
                args.engine = Some(Engine::from_name(&name).unwrap_or_else(|| {
                    usage(&format!("unknown engine '{name}'"));
                }));
            }
            "--threads" => {
                let n = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a number"));
                args.threads = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage(&format!("bad thread count '{n}'")));
            }
            "--cigar" => args.cigar = true,
            "--db" => args.db = Some(it.next().unwrap_or_else(|| usage("--db needs a path"))),
            "--prefilter" => args.prefilter = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if args.cigar && args.db.is_some() {
        usage("--cigar is unavailable with --db (indexed search is score-only)");
    }
    if args.prefilter && args.db.is_none() {
        usage("--prefilter requires --db (the in-memory path is always exhaustive)");
    }
    args
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}\n");
    eprintln!(
        "usage: protein_search [--engine <name>] [--threads <n>] [--cigar] \
         [--db <path> [--prefilter]]\n"
    );
    eprintln!("engines:");
    for e in Engine::ALL {
        eprintln!("  {:<8} {}", e.name(), e.description());
    }
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();

    // The paper's reporting query: Glutathione S-transferase, 222 aa.
    let queries = QuerySet::paper();
    let query = queries.default_query();

    if let Some(path) = &args.db {
        run_indexed(path, &args, query.residues(), &matrix, gaps);
        return;
    }

    // A database with planted homologs of the query at ~55% identity,
    // so the sensitivity comparison is meaningful.
    let db = DatabaseBuilder::new()
        .seed(7)
        .sequences(600)
        .homolog_fraction(0.03)
        .homolog_template(query.clone())
        .build();
    let truth: Vec<usize> = db
        .iter()
        .enumerate()
        .filter(|(_, s)| s.description().contains("homolog"))
        .map(|(i, _)| i)
        .collect();
    println!(
        "database: {} sequences, {} residues, {} planted homologs",
        db.len(),
        db.total_residues(),
        truth.len()
    );

    let slices: Vec<&[AminoAcid]> = db.iter().map(|s| s.residues()).collect();
    let req = SearchRequest {
        query: query.residues(),
        matrix: &matrix,
        gaps,
        top_k: 500,
        min_score: 50,
        deadline: None,
        report_alignments: args.cigar,
        prefilter: Prefilter::Off,
    };

    match args.engine {
        Some(engine) => run_one(engine, &req, &slices, args.threads, &db),
        None => run_all(&req, &slices, args.threads, &truth),
    }
}

/// Single-engine mode: ranked hits with significance statistics.
fn run_one(
    engine: Engine,
    req: &SearchRequest<'_>,
    slices: &[&[AminoAcid]],
    threads: usize,
    db: &sapa_core::bioseq::db::Database,
) {
    println!("engine: {} ({})\n", engine.name(), engine.description());
    let t0 = Instant::now();
    let resp = engine.search(req, slices, threads);
    let elapsed = t0.elapsed();

    println!(
        "{} hits in {:.1?} on {} threads ({} subjects, {} rescored)\n",
        resp.hits.len(),
        elapsed,
        resp.stats.threads,
        resp.stats.subjects,
        resp.stats.rescored
    );
    println!("rank  sequence           score   bits    E-value");
    println!("------------------------------------------------");
    for (rank, h) in resp.hits.iter().take(10).enumerate() {
        println!(
            "{:<4}  {:<18} {:<7} {:<7.1} {:.2e}",
            rank + 1,
            db.sequences()[h.seq_index].id(),
            h.score,
            h.bits,
            h.evalue
        );
        if let Some(al) = &h.alignment {
            // Replay the CIGAR against the sequences: the traceback
            // contract is that it scores exactly what was reported.
            let replayed = al.replay_score(
                req.query,
                db.sequences()[h.seq_index].residues(),
                req.matrix,
                req.gaps,
            );
            assert_eq!(replayed, Some(h.score), "CIGAR replay mismatch");
            println!(
                "      q[{}..{}] s[{}..{}]  {}",
                al.query_start, al.query_end, al.subject_start, al.subject_end, al.cigar
            );
        }
    }
}

/// `--db` mode: stream a prebuilt on-disk index through
/// `Engine::search_indexed`, optionally with the k-mer seed prefilter.
fn run_indexed(
    path: &str,
    args: &Args,
    query: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) {
    let mut reader = IndexReader::open(path).unwrap_or_else(|e| {
        eprintln!("error: opening {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "database: {path} ({} sequences, {} residues, word length {})",
        reader.seq_count(),
        reader.total_residues(),
        reader.word_len()
    );
    let req = SearchRequest {
        query,
        matrix,
        gaps,
        top_k: 500,
        min_score: 50,
        deadline: None,
        report_alignments: false,
        prefilter: if args.prefilter {
            Prefilter::DEFAULT_SEED
        } else {
            Prefilter::Off
        },
    };
    let engines: Vec<Engine> = match args.engine {
        Some(e) => vec![e],
        None => Engine::ALL.to_vec(),
    };

    println!(
        "threads: {}, prefilter: {}\n",
        args.threads,
        if args.prefilter { "seed" } else { "off" }
    );
    println!("engine    time        hits   rescored  pruned");
    println!("----------------------------------------------");
    let mut last: Option<SearchResponse> = None;
    for engine in &engines {
        let t0 = Instant::now();
        let resp = engine
            .search_indexed(&req, &mut reader, args.threads)
            .unwrap_or_else(|e| {
                eprintln!("error: searching {path}: {e}");
                std::process::exit(1);
            });
        let elapsed = t0.elapsed();
        println!(
            "{:<8}  {:<10.1?}  {:<5}  {:<8}  {}",
            engine.name(),
            elapsed,
            resp.hits.len(),
            resp.stats.rescored,
            resp.stats.pruned
        );
        last = Some(resp);
    }

    let last = last.expect("at least one engine ran");
    println!("\ntop hits ({}):", engines.last().unwrap().name());
    for h in last.hits.iter().take(10) {
        println!(
            "  {:<18} score {:<4} ({:.1} bits, E = {:.2e})",
            reader.id(h.seq_index),
            h.score,
            h.bits,
            h.evalue
        );
    }
}

/// Default mode: the paper's comparison — every engine, same request.
fn run_all(req: &SearchRequest<'_>, slices: &[&[AminoAcid]], threads: usize, truth: &[usize]) {
    let recall = |resp: &SearchResponse| {
        let found: Vec<usize> = resp.hits.iter().map(|h| h.seq_index).collect();
        let n = truth.iter().filter(|t| found.contains(t)).count();
        format!("{n}/{}", truth.len())
    };

    println!("threads: {threads}\n");
    println!("engine    time        hits   homolog recall");
    println!("--------------------------------------------");
    let mut reference: Option<SearchResponse> = None;
    for engine in Engine::ALL {
        let t0 = Instant::now();
        let resp = engine.search(req, slices, threads);
        let elapsed = t0.elapsed();
        println!(
            "{:<8}  {:<10.1?}  {:<5}  {}",
            engine.name(),
            elapsed,
            resp.hits.len(),
            recall(&resp)
        );
        // Every exact engine must reproduce scalar SW bit-for-bit.
        match (&reference, engine.is_exact()) {
            (None, true) => reference = Some(resp),
            (Some(r), true) => assert_eq!(resp.hits, r.hits, "{} differs from sw", engine.name()),
            _ => {}
        }
    }

    let reference = reference.expect("sw engine ran");
    println!("\ntop Smith-Waterman hits:");
    for h in reference.hits.iter().take(5) {
        println!(
            "  subject {:<4} score {:<4} ({:.1} bits, E = {:.2e})",
            h.seq_index, h.score, h.bits, h.evalue
        );
    }
}
