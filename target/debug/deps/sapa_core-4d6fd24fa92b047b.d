/root/repo/target/debug/deps/sapa_core-4d6fd24fa92b047b.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libsapa_core-4d6fd24fa92b047b.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libsapa_core-4d6fd24fa92b047b.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
