//! Figure 5: DL1 miss rate and IPC vs DL1 cache size (1K … 2M),
//! 4-way core, 2M L2.

use crate::context::Context;
use crate::format::{f2, heading, pct, Table};
use sapa_cpu::config::CacheConfig;
use sapa_cpu::config::{BranchConfig, MemConfig, SimConfig};
use sapa_workloads::Workload;

/// The swept DL1 sizes in bytes (1K … 2M, powers of two).
pub const SIZES: [u64; 12] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
];

fn config_for(size: u64) -> SimConfig {
    let mut mem = MemConfig::me1();
    mem.name = format!("dl1-{size}");
    mem.dl1 = CacheConfig {
        size: Some(size),
        assoc: 2,
        line: 128,
        latency: 1,
    };
    mem.il1 = CacheConfig {
        size: Some(32 << 10),
        assoc: 1,
        line: 128,
        latency: 1,
    };
    mem.l2.size = Some(2 << 20);
    SimConfig {
        cpu: sapa_cpu::config::CpuConfig::four_way(),
        mem,
        branch: BranchConfig::table_vi(),
    }
}

/// One measured point of the sweep.
pub fn point(ctx: &mut Context, w: Workload, size: u64) -> (f64, f64) {
    let cfg = config_for(size);
    let r = ctx.sim(w, &cfg);
    (r.dl1.miss_rate(), r.ipc())
}

/// Renders Figure 5 (miss rate and IPC vs DL1 size).
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 5 — DL1 miss rate and IPC vs cache size (4-way, 2M L2)");
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .flat_map(|w| SIZES.into_iter().map(move |size| (w, config_for(size))))
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["workload", "dl1 size", "miss rate", "IPC"]);
    for w in Workload::ALL {
        for size in SIZES {
            let (miss, ipc) = point(ctx, w, size);
            let label = if size >= 1 << 20 {
                format!("{}M", size >> 20)
            } else {
                format!("{}K", size >> 10)
            };
            t.row_owned(vec![w.label().to_string(), label, pct(miss), f2(ipc)]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn miss_rate_never_increases_with_size_for_blast() {
        let mut ctx = Context::new(Scale::Tiny);
        let small = point(&mut ctx, Workload::Blast, 4 << 10).0;
        let large = point(&mut ctx, Workload::Blast, 1 << 20).0;
        assert!(large <= small + 1e-9, "{large} > {small}");
    }

    #[test]
    fn ssearch_fits_small_caches() {
        let mut ctx = Context::new(Scale::Tiny);
        let (miss, _) = point(&mut ctx, Workload::Ssearch34, 4 << 10);
        assert!(miss < 0.05, "miss {miss}");
    }
}
