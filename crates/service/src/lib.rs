//! The SAPA alignment search service: a std-only TCP daemon over the
//! engine layer.
//!
//! The paper benchmarks sequence-alignment kernels; a production
//! deployment of those kernels is a *search service* — many clients,
//! mixed engines, tenants of very different sizes, and a hard
//! requirement that one bad request (or one kernel panic) never takes
//! the process down. This crate is that deployment story, built
//! entirely on `std` (`TcpListener` + a line-delimited JSON protocol,
//! no external dependencies):
//!
//! * [`server`] — the daemon: bounded request queue with cell-priced
//!   admission control, per-tenant token buckets and deficit-round-robin
//!   dispatch, per-request deadlines with graceful degradation, and
//!   two-level panic quarantine.
//! * [`protocol`] — the wire format and its typed error codes.
//! * [`json`] — the hardened, dependency-free JSON used by both sides.
//! * [`admission`], [`quota`], [`metrics`] — the policy pieces, each
//!   unit-tested deterministically.
//! * [`client`] — a small blocking client for harnesses and tests.
//!
//! # Quick start
//!
//! ```
//! use std::time::Duration;
//! use sapa_service::{serve, Client, SearchParams, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let cfg = ServiceConfig {
//!     db_seqs: 40,
//!     ..ServiceConfig::default()
//! };
//! let server = serve(cfg)?;
//! let mut client = Client::connect(server.addr(), Duration::from_secs(5))?;
//! let reply = client.search(&SearchParams {
//!     id: 1,
//!     tenant: "docs",
//!     engine: "striped",
//!     query: "MKWVTFISLLFLFSSAYSRGVFRRDAHKSE",
//!     top_k: 5,
//!     min_score: 1,
//!     deadline_cells: None,
//!     deadline_ms: None,
//! })?;
//! assert!(reply.contains("\"type\":\"result\""));
//! let stats = server.shutdown();
//! assert_eq!(stats.submitted, 1);
//! assert!(stats.balances());
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod quota;
pub mod server;

pub use client::{Client, SearchParams};
pub use metrics::Snapshot;
pub use protocol::{ErrorCode, Limits};
pub use server::{quiet_injected_panics, serve, QuotaConfig, ServiceConfig, ServiceHandle};
