//! A BLASTP-like heuristic database search.
//!
//! Implements the pipeline of the NCBI `blastp` program the paper
//! profiles (its `BlastNtWordFinder`-equivalent stage dominates
//! execution time):
//!
//! 1. **Neighborhood word index** — for every length-`w` word of the
//!    query, all words scoring ≥ `T` against it under the substitution
//!    matrix are inserted into a direct-mapped word table
//!    (`20^w` entries → query positions). This table is BLAST's large,
//!    randomly-accessed working set; the paper finds it is what makes
//!    BLAST memory-bound.
//! 2. **Scan + two-hit** — each database word is looked up; a hit on a
//!    diagonal within `two_hit_window` of a previous non-overlapping hit
//!    on the same diagonal triggers extension (Altschul 1997 two-hit
//!    strategy). The per-diagonal last-hit array is the second big data
//!    structure.
//! 3. **Ungapped X-drop extension** along the diagonal.
//! 4. **Gapped rescoring** with banded Smith-Waterman when the ungapped
//!    score reaches `gapped_trigger` (our stand-in for BLAST's X-drop
//!    gapped extension; see DESIGN.md).

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::banded;
use crate::result::{Hit, SearchResults, TopK};

/// Word length (`w`); BLASTP uses 3.
pub const WORD_LEN: usize = 3;

/// Number of distinct standard-residue words of length [`WORD_LEN`].
pub const WORD_TABLE_SIZE: usize = 20 * 20 * 20;

/// Tunable parameters of the BLASTP pipeline; defaults follow NCBI
/// blastp conventions (BLOSUM62, `T = 11`, two-hit window 40).
#[derive(Debug, Clone, PartialEq)]
pub struct BlastParams {
    /// Neighborhood threshold `T`: a word enters the index if it scores
    /// at least this against a query word.
    pub threshold: i32,
    /// Two-hit window `A`: max diagonal distance between paired hits.
    pub two_hit_window: usize,
    /// X-drop for the ungapped extension (raw score units).
    pub xdrop_ungapped: i32,
    /// Ungapped score that triggers gapped rescoring.
    pub gapped_trigger: i32,
    /// Half-width of the banded gapped rescoring.
    pub band_width: usize,
    /// Minimum reported score.
    pub min_report_score: i32,
    /// Use the one-hit seeding strategy instead of two-hit (NCBI's
    /// `-P 1`): every non-overlapping word hit triggers extension.
    /// Slower but slightly more sensitive.
    pub one_hit: bool,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            threshold: 11,
            two_hit_window: 40,
            xdrop_ungapped: 16,
            gapped_trigger: 38,
            band_width: 24,
            min_report_score: 25,
            one_hit: false,
        }
    }
}

/// The query word index (step 1).
///
/// `slots[word]` is a range into `positions`: the query offsets whose
/// neighborhood contains `word`.
#[derive(Debug, Clone)]
pub struct WordIndex {
    starts: Vec<u32>,
    positions: Vec<u32>,
    query: Vec<AminoAcid>,
}

impl WordIndex {
    /// Builds the neighborhood index of `query`.
    ///
    /// Complexity `O(len(query) · 20^w)` in the worst case, but the
    /// candidate enumeration prunes by best-remaining score, as real
    /// BLAST's DFA construction does.
    pub fn build(query: &[AminoAcid], matrix: &SubstitutionMatrix, threshold: i32) -> Self {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); WORD_TABLE_SIZE];
        if query.len() >= WORD_LEN {
            // Per-position max score rows, for pruning.
            let row_max: Vec<i32> = (0..AminoAcid::STANDARD_COUNT)
                .map(|q| {
                    (0..AminoAcid::STANDARD_COUNT)
                        .map(|c| matrix.score_by_index(q, c))
                        .max()
                        .expect("non-empty row")
                })
                .collect();

            for i in 0..=(query.len() - WORD_LEN) {
                let w = &query[i..i + WORD_LEN];
                if w.iter().any(|aa| !aa.is_standard()) {
                    continue;
                }
                let qi: [usize; WORD_LEN] = [w[0].index(), w[1].index(), w[2].index()];
                let best_tail2 = row_max[qi[1]] + row_max[qi[2]];
                let best_tail1 = row_max[qi[2]];
                // Enumerate candidate words with score-based pruning.
                for c0 in 0..AminoAcid::STANDARD_COUNT {
                    let s0 = matrix.score_by_index(qi[0], c0);
                    if s0 + best_tail2 < threshold {
                        continue;
                    }
                    for c1 in 0..AminoAcid::STANDARD_COUNT {
                        let s01 = s0 + matrix.score_by_index(qi[1], c1);
                        if s01 + best_tail1 < threshold {
                            continue;
                        }
                        for c2 in 0..AminoAcid::STANDARD_COUNT {
                            let s = s01 + matrix.score_by_index(qi[2], c2);
                            if s >= threshold {
                                let word = (c0 * 20 + c1) * 20 + c2;
                                buckets[word].push(i as u32);
                            }
                        }
                    }
                }
            }
        }

        // Flatten to CSR for compact, cache-realistic storage.
        let mut starts = Vec::with_capacity(WORD_TABLE_SIZE + 1);
        let mut positions = Vec::new();
        starts.push(0u32);
        for bucket in &buckets {
            positions.extend_from_slice(bucket);
            starts.push(positions.len() as u32);
        }
        WordIndex {
            starts,
            positions,
            query: query.to_vec(),
        }
    }

    /// Query positions whose neighborhood contains `word`.
    #[inline]
    pub fn lookup(&self, word: usize) -> &[u32] {
        let lo = self.starts[word] as usize;
        let hi = self.starts[word + 1] as usize;
        &self.positions[lo..hi]
    }

    /// Total number of (word → position) entries.
    pub fn entry_count(&self) -> usize {
        self.positions.len()
    }

    /// The indexed query.
    pub fn query(&self) -> &[AminoAcid] {
        &self.query
    }
}

/// Packs a standard-residue word starting at `s[i]`; `None` if any of
/// the `w` residues is non-standard.
#[inline]
pub fn pack_word(s: &[AminoAcid], i: usize) -> Option<usize> {
    if i + WORD_LEN > s.len() {
        return None;
    }
    let mut word = 0usize;
    for k in 0..WORD_LEN {
        let aa = s[i + k];
        if !aa.is_standard() {
            return None;
        }
        word = word * 20 + aa.index();
    }
    Some(word)
}

/// Ungapped X-drop extension of a seed word match at query offset `qi`,
/// subject offset `sj` (both word starts). Returns the best segment
/// score.
pub fn ungapped_extend(
    query: &[AminoAcid],
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    qi: usize,
    sj: usize,
    xdrop: i32,
) -> i32 {
    // Seed score.
    let mut score: i32 = (0..WORD_LEN)
        .map(|k| matrix.score(query[qi + k], subject[sj + k]))
        .sum();

    // Extend right.
    let mut best = score;
    let (mut i, mut j) = (qi + WORD_LEN, sj + WORD_LEN);
    while i < query.len() && j < subject.len() {
        score += matrix.score(query[i], subject[j]);
        if score > best {
            best = score;
        } else if best - score > xdrop {
            break;
        }
        i += 1;
        j += 1;
    }

    // Extend left.
    let mut score = best;
    let (mut i, mut j) = (qi, sj);
    while i > 0 && j > 0 {
        i -= 1;
        j -= 1;
        score += matrix.score(query[i], subject[j]);
        if score > best {
            best = score;
        } else if best - score > xdrop {
            break;
        }
    }
    best
}

/// Scores one subject against a prebuilt [`WordIndex`]: the scan /
/// two-hit / extension / gapped-rescore pipeline of [`search`] for a
/// single database entry. Returns the best alignment score found (0 if
/// no seed survived the pipeline).
pub fn score_subject(
    index: &WordIndex,
    subject: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &BlastParams,
) -> i32 {
    let query = index.query();
    let m = query.len();
    let n = subject.len();
    if n < WORD_LEN || m < WORD_LEN {
        return 0;
    }
    // Per-diagonal bookkeeping: last hit end and last extension end.
    // diag = j - i + m, in [0, m+n).
    let ndiag = m + n;
    let mut last_hit = vec![i32::MIN / 2; ndiag];
    let mut ext_end = vec![i32::MIN / 2; ndiag];

    let mut best_score = 0i32;

    for j in 0..=(n - WORD_LEN) {
        let Some(word) = pack_word(subject, j) else {
            continue;
        };
        for &qi in index.lookup(word) {
            let i = qi as usize;
            let diag = j + m - i;
            let jj = j as i32;

            // Skip hits inside an already-extended region.
            if jj <= ext_end[diag] {
                continue;
            }
            let prev = last_hit[diag];
            // Hits overlapping the previous one are ignored and do
            // not advance the stored hit (NCBI behaviour) — this is
            // what lets a run of consecutive word hits eventually
            // form a two-hit pair.
            if jj - prev < WORD_LEN as i32 {
                continue;
            }
            last_hit[diag] = jj;
            // Two-hit rule: the pair must fall within the window
            // (skipped entirely in one-hit mode).
            if !params.one_hit && jj - prev > params.two_hit_window as i32 {
                continue;
            }

            let ungapped = ungapped_extend(query, subject, matrix, i, j, params.xdrop_ungapped);
            ext_end[diag] = jj + WORD_LEN as i32; // coarse: block re-seeding here
            let score = if ungapped >= params.gapped_trigger {
                banded::score(
                    query,
                    subject,
                    matrix,
                    gaps,
                    j as isize - i as isize,
                    params.band_width,
                )
            } else {
                ungapped
            };
            if score > best_score {
                best_score = score;
            }
        }
    }
    best_score
}

/// A full BLASTP-style search of `db` with a prebuilt [`WordIndex`].
///
/// Returns the ranked hit list (best `keep` hits).
pub fn search<'a, I>(
    index: &WordIndex,
    db: I,
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &BlastParams,
    keep: usize,
) -> SearchResults
where
    I: IntoIterator<Item = &'a [AminoAcid]>,
{
    let mut results = TopK::new(keep);
    for (seq_index, subject) in db.into_iter().enumerate() {
        let best_score = score_subject(index, subject, matrix, gaps, params);
        if best_score >= params.min_report_score {
            results.push(Hit {
                seq_index,
                score: best_score,
            });
        }
    }
    results.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    #[test]
    fn one_hit_finds_at_least_what_two_hit_finds() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
        let m = bl62();
        let idx = WordIndex::build(&q, &m, 11);
        let subj = seq("AAAAMKWVTFISLLAAAA"); // one seed region only
        let db: Vec<&[AminoAcid]> = vec![&subj];
        let two = {
            let r = search(
                &idx,
                db.clone(),
                &m,
                GapPenalties::paper(),
                &BlastParams::default(),
                10,
            );
            r.best_score()
        };
        let one = {
            let p = BlastParams {
                one_hit: true,
                ..BlastParams::default()
            };
            let r = search(&idx, db, &m, GapPenalties::paper(), &p, 10);
            r.best_score()
        };
        assert!(one.unwrap_or(0) >= two.unwrap_or(0));
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // spelled-out base-20 packing
    fn pack_word_basics() {
        let s = seq("ARN");
        assert_eq!(pack_word(&s, 0), Some((0 * 20 + 1) * 20 + 2));
        let with_x = seq("AXA");
        assert_eq!(pack_word(&with_x, 0), None);
        assert_eq!(pack_word(&s, 1), None); // out of range
    }

    #[test]
    fn index_contains_exact_words() {
        // Every standard word of the query scores matrix-self ≥ T for
        // reasonable T, so exact words must be in their own bucket.
        let q = seq("MKWVTFISLL");
        let idx = WordIndex::build(&q, &bl62(), 11);
        for i in 0..=(q.len() - WORD_LEN) {
            let w = pack_word(&q, i).unwrap();
            assert!(
                idx.lookup(w).contains(&(i as u32)),
                "own word missing at {i}"
            );
        }
    }

    #[test]
    fn higher_threshold_shrinks_index() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let low = WordIndex::build(&q, &bl62(), 10);
        let high = WordIndex::build(&q, &bl62(), 13);
        assert!(high.entry_count() < low.entry_count());
        assert!(high.entry_count() > 0);
    }

    #[test]
    fn neighborhood_membership_is_exact() {
        // Brute-force check on a tiny query: every (word, pos) entry
        // must score ≥ T and every scoring pair must be present.
        let q = seq("WWH");
        let t = 11;
        let m = bl62();
        let idx = WordIndex::build(&q, &m, t);
        for word in 0..WORD_TABLE_SIZE {
            let c0 = word / 400;
            let c1 = (word / 20) % 20;
            let c2 = word % 20;
            let score = m.score_by_index(q[0].index(), c0)
                + m.score_by_index(q[1].index(), c1)
                + m.score_by_index(q[2].index(), c2);
            let present = idx.lookup(word).contains(&0u32);
            assert_eq!(present, score >= t, "word {word} score {score}");
        }
    }

    #[test]
    fn ungapped_extension_finds_planted_match() {
        let q = seq("AAAAMKWVTFISLLAAAA");
        let s = seq("GGGGMKWVTFISLLGGGG");
        let m = bl62();
        // Seed at the start of the common block.
        let score = ungapped_extend(&q, &s, &m, 4, 4, 16);
        let block = seq("MKWVTFISLL");
        let self_score: i32 = block.iter().map(|&x| m.score(x, x)).sum();
        assert!(score >= self_score, "{score} < {self_score}");
    }

    #[test]
    fn search_finds_planted_homolog() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
        let hom = seq("MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
        let junk1 = seq("PGPGPGPGPGPGPGPGPGPGPGPGPGPG");
        let junk2 = seq("NDNDNDNDNDNDNDNDNDNDNDNDNDND");
        let m = bl62();
        let idx = WordIndex::build(&q, &m, 11);
        let db: Vec<&[AminoAcid]> = vec![&junk1, &hom, &junk2];
        let res = search(
            &idx,
            db,
            &m,
            GapPenalties::paper(),
            &BlastParams::default(),
            10,
        );
        let hits = res.hits();
        assert!(!hits.is_empty(), "homolog not found");
        assert_eq!(hits[0].seq_index, 1);
    }

    #[test]
    fn search_ignores_everything_dissimilar() {
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let m = bl62();
        let idx = WordIndex::build(&q, &m, 11);
        let junk = seq("GGGGGGGGGGGGGGGGGGGGGGGGGG");
        let db: Vec<&[AminoAcid]> = vec![&junk];
        let res = search(
            &idx,
            db,
            &m,
            GapPenalties::paper(),
            &BlastParams::default(),
            10,
        );
        assert!(res.hits().is_empty());
    }

    #[test]
    fn empty_query_builds_empty_index() {
        let idx = WordIndex::build(&[], &bl62(), 11);
        assert_eq!(idx.entry_count(), 0);
    }
}
