/root/repo/target/debug/examples/microarch_study-9d50d3a4a1182ad7.d: crates/core/../../examples/microarch_study.rs

/root/repo/target/debug/examples/microarch_study-9d50d3a4a1182ad7: crates/core/../../examples/microarch_study.rs

crates/core/../../examples/microarch_study.rs:
