//! Per-unit-class reservation stations.
//!
//! Each functional-unit class has one station holding the sequence
//! numbers of dispatched-but-unissued instructions, kept in age order
//! so the issue stage's limited-window scan selects oldest-first. The
//! capacity check happens only at dispatch; a disambiguation replay
//! re-enters its station unconditionally (the squashed load's slot was
//! freed when it issued, so transient overflow is bounded by the
//! replay count in one cycle and resolves as the scan drains).

use std::collections::VecDeque;

use crate::config::UnitClass;

/// The stations, one age-ordered queue per unit class.
#[derive(Debug)]
pub(crate) struct Stations {
    queues: Vec<VecDeque<u64>>,
    caps: [u32; UnitClass::COUNT],
}

impl Stations {
    pub fn new(caps: [u32; UnitClass::COUNT]) -> Self {
        Stations {
            queues: vec![VecDeque::new(); UnitClass::COUNT],
            caps,
        }
    }

    /// Whether dispatch into `class` must stall.
    #[inline]
    pub fn is_full(&self, class: UnitClass) -> bool {
        self.queues[class.index()].len() >= self.caps[class.index()] as usize
    }

    #[inline]
    pub fn len(&self, class: UnitClass) -> usize {
        self.queues[class.index()].len()
    }

    #[inline]
    pub fn get(&self, class: UnitClass, idx: usize) -> u64 {
        self.queues[class.index()][idx]
    }

    /// Appends `seq` at dispatch (dispatch order is age order).
    #[inline]
    pub fn push(&mut self, class: UnitClass, seq: u64) {
        self.queues[class.index()].push_back(seq);
    }

    /// Removes the entry at `idx` (it issued).
    #[inline]
    pub fn remove(&mut self, class: UnitClass, idx: usize) {
        self.queues[class.index()].remove(idx);
    }

    /// Re-inserts a replayed instruction, preserving age order so the
    /// oldest-first scan stays correct.
    pub fn insert_sorted(&mut self, class: UnitClass, seq: u64) {
        let q = &mut self.queues[class.index()];
        let pos = q.partition_point(|&s| s < seq);
        q.insert(pos, seq);
    }
}
