//! Figure 8: SIMD speed-up vs pipeline width, with the "+1 cycle on
//! wide loads" ablation that equalizes load/store bandwidth between the
//! 128- and 256-bit machines.

use crate::context::Context;
use crate::format::{f2, heading, Table};
use sapa_cpu::config::{BranchConfig, MemConfig};
use sapa_workloads::Workload;

/// Swept widths (the paper's 4W/8W/12W/16W).
pub const WIDTHS: [&str; 4] = ["4-way", "8-way", "12-way", "16-way"];

fn config_for(width: &str, extra_wide_lat: u32) -> sapa_cpu::config::SimConfig {
    let mut cfg = Context::config(width, &MemConfig::me1(), BranchConfig::table_vi());
    cfg.cpu.wide_load_extra_latency = extra_wide_lat;
    cfg
}

fn cycles(ctx: &mut Context, w: Workload, width: &str, extra_wide_lat: u32) -> u64 {
    ctx.sim(w, &config_for(width, extra_wide_lat)).cycles
}

/// Speed-up of each variant relative to `SW_vmx128` at the same width.
pub fn speedups(ctx: &mut Context, width: &str) -> (f64, f64, f64) {
    let base = cycles(ctx, Workload::SwVmx128, width, 0) as f64;
    let v256 = cycles(ctx, Workload::SwVmx256, width, 0) as f64;
    let v256_lat = cycles(ctx, Workload::SwVmx256, width, 1) as f64;
    (1.0, base / v256, base / v256_lat)
}

/// Renders Figure 8.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 8 — SIMD speed-up vs width (relative to SW_vmx128)");
    let points: Vec<_> = WIDTHS
        .into_iter()
        .flat_map(|width| {
            [
                (Workload::SwVmx128, config_for(width, 0)),
                (Workload::SwVmx256, config_for(width, 0)),
                (Workload::SwVmx256, config_for(width, 1)),
            ]
        })
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["width", "SW_vmx128", "SW_vmx256", "SW_vmx256 + 1 lat"]);
    for width in WIDTHS {
        let (a, b, c) = speedups(ctx, width);
        t.row_owned(vec![width.to_string(), f2(a), f2(b), f2(c)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn vmx256_wins_and_extra_latency_shrinks_the_margin() {
        let mut ctx = Context::new(Scale::Tiny);
        let (_, v256, v256_lat) = speedups(&mut ctx, "4-way");
        assert!(v256 > 1.0, "vmx256 speedup {v256}");
        // Under speculative disambiguation, cycle counts are locally
        // non-monotonic in single-op latencies (a one-cycle shift can
        // turn a replay into a clean store forward), so the ablation's
        // margin-shrink holds to a small tolerance rather than exactly.
        assert!(v256_lat <= v256 * 1.01, "{v256_lat} > {v256}");
    }
}
